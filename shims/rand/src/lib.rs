//! Minimal, offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! exact API subset the workspace uses: [`rngs::StdRng`], [`SeedableRng`]
//! (via `seed_from_u64`), and [`Rng`] with `random_range` / `random_bool`.
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! high-quality, and unrelated to any cryptographic use.
//!
//! Stream values differ from the real `rand` crate; everything in this
//! workspace only relies on determinism and distribution shape, not on
//! specific draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive, int or float).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased-enough bounded sample via 128-bit multiply (Lemire reduction
/// without the rejection step; bias is < 2^-64 per draw).
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + bounded(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    pub use super::StdRng;
}

/// The workspace's standard generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as rand does for small seeds.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5..=9u32);
            assert!((5..=9).contains(&w));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0..8u32) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits {hits}");
    }
}
