//! Minimal, offline stand-in for the `proptest` crate.
//!
//! Implements exactly the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * strategies: integer ranges, `any::<T>()`, tuples,
//!   [`collection::vec`], and [`prop::sample::Index`].
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! its generated inputs via the assertion message), and a fixed per-test
//! deterministic seed derived from the test name, so failures reproduce
//! across runs. Case count defaults to 32 and can be overridden with
//! `ProptestConfig::with_cases` or the `PROPTEST_CASES` env variable.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count, honouring the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic per-test RNG.
pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Seeds a generator from the test name and case index (FNV-1a).
    pub fn rng_for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes().chain(case.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Types with a canonical "any value" strategy (subset of `Arbitrary`).
pub trait ArbitraryValue {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::{test_runner::TestRng, Strategy};
    use rand::Rng;

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len_range)` — vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace used inside test bodies.
pub mod prop {
    /// Sampling helpers (subset: [`Index`](sample::Index)).
    pub mod sample {
        use crate::{test_runner::TestRng, ArbitraryValue};
        use rand::RngCore;

        /// An index into a collection whose length is only known at use
        /// time; `any::<Index>()` then `idx.index(len)` yields `0..len`.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Projects the raw draw onto `0..len`. Panics if `len == 0`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                ((self.0 as u128 * len as u128) >> 64) as usize
            }
        }

        impl ArbitraryValue for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.effective_cases() {
                let mut __rng =
                    $crate::test_runner::rng_for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}
