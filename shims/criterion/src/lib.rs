//! Minimal, offline stand-in for the `criterion` crate.
//!
//! Provides the API subset `benches/micro.rs` uses — benchmark groups,
//! `bench_function` / `bench_with_input`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! calibrated wall-clock loop (warm-up, then enough iterations to fill a
//! measurement window; median-of-batches timing). No statistical analysis,
//! plots, or baselines: output is one line per benchmark with ns/iter and
//! derived throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Throughput annotation used to derive rate units from iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An ID rendered from a parameter value, e.g. an input size.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }

    /// An ID from a function name and a parameter.
    pub fn new(function: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{param}", function.into()),
        }
    }
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher {
    iters_per_batch: u64,
    batch_nanos: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~25 ms?
        let t = Instant::now();
        let mut calibration_iters = 0u64;
        while t.elapsed() < Duration::from_millis(25) {
            std::hint::black_box(routine());
            calibration_iters += 1;
        }
        let per_iter = t.elapsed().as_nanos() as f64 / calibration_iters.max(1) as f64;
        let batch = ((25_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);
        self.iters_per_batch = batch;
        // Measure 5 batches and keep each batch's per-iteration time.
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.batch_nanos
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn median_ns(&mut self) -> f64 {
        self.batch_nanos
            .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.batch_nanos
            .get(self.batch_nanos.len() / 2)
            .copied()
            .unwrap_or(f64::NAN)
    }
}

/// A named set of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used to report rates.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; the shim sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Benchmarks `f` under `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: R) {
        let mut b = Bencher {
            iters_per_batch: 0,
            batch_nanos: Vec::new(),
        };
        f(&mut b);
        self.report(&id.into_benchmark_id().name, &mut b);
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: R,
    ) {
        let mut b = Bencher {
            iters_per_batch: 0,
            batch_nanos: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id.name, &mut b);
    }

    fn report(&self, bench: &str, b: &mut Bencher) {
        let ns = b.median_ns();
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:>10.1} MiB/s",
                    n as f64 / ns * 1e9 / (1u64 << 20) as f64
                )
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.2} Melem/s", n as f64 / ns * 1e3)
            }
            None => String::new(),
        };
        println!(
            "{:<40} {:>14.1} ns/iter{rate}   ({} iters/batch)",
            format!("{}/{}", self.name, bench),
            ns,
            b.iters_per_batch
        );
    }

    /// Ends the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Names accepted as benchmark IDs.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, f: R) {
        let mut g = self.benchmark_group(id.to_string());
        g.bench_function("default", f);
        g.finish();
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
