//! End-to-end guard on the serving path: a real `rlz-serve` server on a
//! loopback socket, driven by concurrent protocol clients, with every
//! response checked byte-for-byte against direct `DocStore::get`. Every
//! scenario runs on **both event backends** (epoll and the portable
//! fallback) so the two stay interchangeable. Also covers the protocol's
//! failure surface (out-of-range, unknown opcode, malformed and oversized
//! frames), pipelined request bursts, the hot-document cache, and clean
//! shutdown semantics.

use rlz_repro::corpus::{access, generate_web, WebConfig};
use rlz_repro::rlz::{Dictionary, PairCoding, SampleStrategy};
use rlz_repro::serve::protocol::{
    self, STATUS_BAD_FRAME, STATUS_BAD_OPCODE, STATUS_CORRUPT, STATUS_OUT_OF_RANGE,
};
use rlz_repro::serve::{serve, Backend, Client, ClientError, ServeConfig};
use rlz_repro::store::{
    BlockCodec, BlockedStore, DocStore, FaultBackend, FaultPlan, FileBackend, RlzStore,
    RlzStoreBuilder, StorageBackend,
};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("rlz-serve-it-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Both event backends on Linux; just the portable fallback elsewhere.
fn backends() -> Vec<Backend> {
    if cfg!(target_os = "linux") {
        vec![Backend::Epoll, Backend::Portable]
    } else {
        vec![Backend::Portable]
    }
}

fn corpus_docs() -> Vec<Vec<u8>> {
    let collection = generate_web(&WebConfig::gov2(512 * 1024, 0x5E17E));
    collection.iter_docs().map(|d| d.to_vec()).collect()
}

fn build_rlz(dir: &std::path::Path, docs: &[Vec<u8>]) {
    let all: Vec<u8> = docs.concat();
    let dict = Dictionary::sample(&all, all.len() / 64, 512, SampleStrategy::Evenly);
    let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
    RlzStoreBuilder::new(dict, PairCoding::ZV)
        .threads(2)
        .build(dir, &slices)
        .unwrap();
}

fn start_cfg(store: Arc<dyn DocStore>, cfg: ServeConfig) -> rlz_repro::serve::ServerHandle {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    serve(store, listener, cfg).unwrap()
}

fn start_with(
    store: Arc<dyn DocStore>,
    threads: usize,
    backend: Backend,
    cache_bytes: usize,
) -> rlz_repro::serve::ServerHandle {
    start_cfg(
        store,
        ServeConfig {
            threads,
            batch_threads: 1,
            allow_shutdown: true,
            backend,
            cache_bytes,
            max_connections: 0,
            idle_timeout: None,
            shed_queue_depth: 0,
            writer: None,
            metrics: true,
            metrics_addr: None,
        },
    )
}

fn start(
    store: Arc<dyn DocStore>,
    threads: usize,
    backend: Backend,
) -> rlz_repro::serve::ServerHandle {
    start_with(store, threads, backend, 0)
}

#[test]
fn concurrent_clients_roundtrip_byte_identical() {
    let docs = corpus_docs();
    let dir = TempDir::new("roundtrip");
    build_rlz(dir.path(), &docs);
    let store = RlzStore::open(dir.path()).unwrap();
    for backend in backends() {
        let handle = start(Arc::new(store.clone()), 2, backend);
        let addr = handle.addr();

        const CLIENTS: usize = 4;
        let requests = access::query_log(docs.len(), CLIENTS * 300, 20, 0xFACE);
        let shards = access::shards(&requests, CLIENTS);
        std::thread::scope(|scope| {
            for (t, shard) in shards.iter().enumerate() {
                let docs = &docs;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut buf = Vec::new();
                    // Skewed single-GET stream, reusing the response buffer.
                    for &id in shard {
                        buf.clear();
                        client.get_into(id, &mut buf).unwrap();
                        assert_eq!(&buf[..], docs[id as usize], "doc {id} (client {t})");
                    }
                    // The same stream as MGET batches through the seek-aware
                    // batch path.
                    for batch in shard.chunks(17) {
                        let got = client.mget(batch).unwrap();
                        for (doc, &id) in got.iter().zip(batch) {
                            assert_eq!(doc, &docs[id as usize], "batched doc {id} (client {t})");
                        }
                    }
                });
            }
        });

        // STAT agrees with the store's own accounting and reports the
        // backend that is actually running.
        let mut client = Client::connect(addr).unwrap();
        let stats = client.server_stat().unwrap();
        assert_eq!(stats.store, store.stats());
        assert_eq!(stats.store.num_docs as usize, docs.len());
        assert!(stats.store.payload_bytes > 0);
        assert!(stats.store.max_record_len > 0);
        assert_eq!(stats.backend_name(), handle.backend().name());
        assert_eq!(stats.cache_budget_bytes, 0, "cache disabled by default");

        client.shutdown_server().unwrap();
        handle.join();
    }
}

#[test]
fn pipelined_bursts_answer_in_order() {
    let docs = corpus_docs();
    let dir = TempDir::new("pipeline");
    build_rlz(dir.path(), &docs);
    let store = RlzStore::open(dir.path()).unwrap();
    for backend in backends() {
        let handle = start(Arc::new(store.clone()), 2, backend);
        let mut client = Client::connect(handle.addr()).unwrap();
        // A burst of pipelined GETs — with repeats, so the server's
        // deduplicated batch path serves several positions from one
        // decode — must answer in request order, byte-identical.
        let ids: Vec<u32> = access::query_log(docs.len(), 600, 20, 0xBEEF);
        for &id in &ids {
            client.send_get(id).unwrap();
        }
        let mut buf = Vec::new();
        for &id in &ids {
            buf.clear();
            client.recv_get_into(&mut buf).unwrap();
            assert_eq!(&buf[..], docs[id as usize], "pipelined doc {id}");
        }
        // Mixed pipelining: GET, MGET, STAT interleaved in one burst.
        client.send_get(3).unwrap();
        client.send_mget(&[5, 5, 1]).unwrap();
        client.send_get(2).unwrap();
        buf.clear();
        client.recv_get_into(&mut buf).unwrap();
        assert_eq!(&buf[..], docs[3]);
        let got = client.recv_mget(3).unwrap();
        assert_eq!(got[0], docs[5]);
        assert_eq!(got[1], docs[5]);
        assert_eq!(got[2], docs[1]);
        buf.clear();
        client.recv_get_into(&mut buf).unwrap();
        assert_eq!(&buf[..], docs[2]);
        handle.shutdown();
    }
}

#[test]
fn hot_document_cache_is_byte_identical_and_counted() {
    let docs = corpus_docs();
    let dir = TempDir::new("hotcache");
    build_rlz(dir.path(), &docs);
    let store = RlzStore::open(dir.path()).unwrap();
    for backend in backends() {
        let handle = start_with(Arc::new(store.clone()), 2, backend, 4 << 20);
        let mut client = Client::connect(handle.addr()).unwrap();
        // Two passes over a skewed stream: pass 2 is served largely from
        // the cache and must stay byte-identical.
        let ids = access::query_log(docs.len(), 400, 20, 0xCAFE);
        let mut buf = Vec::new();
        for round in 0..2 {
            for &id in &ids {
                buf.clear();
                client.get_into(id, &mut buf).unwrap();
                assert_eq!(&buf[..], docs[id as usize], "doc {id} round {round}");
            }
        }
        let stats = client.server_stat().unwrap();
        assert_eq!(stats.cache_budget_bytes, 4 << 20);
        assert!(stats.cache_hits > 0, "repeated ids must hit the cache");
        assert!(stats.cache_misses > 0, "first touches must miss");
        assert!(stats.cache_resident_bytes > 0);
        assert!(stats.cache_resident_bytes <= stats.cache_budget_bytes);

        // An MGET with heavy duplication: the dedup path decodes each
        // unique id once. Lookups are counted per unique id, so the hit
        // delta across a fully-warm repeat equals the unique count.
        let unique: Vec<u32> = (0..8u32).collect();
        let mut dup = Vec::new();
        for _ in 0..5 {
            dup.extend_from_slice(&unique);
        }
        let _ = client.mget(&dup).unwrap(); // warm every unique id
        let before = client.server_stat().unwrap();
        let got = client.mget(&dup).unwrap();
        for (doc, &id) in got.iter().zip(&dup) {
            assert_eq!(doc, &docs[id as usize], "dup MGET doc {id}");
        }
        let after = client.server_stat().unwrap();
        assert_eq!(
            after.cache_hits - before.cache_hits,
            unique.len() as u64,
            "a warm 5x-duplicated MGET must look up each unique id exactly once"
        );
        assert_eq!(after.cache_misses, before.cache_misses);
        handle.shutdown();
    }
}

#[test]
fn blocked_store_serves_identically() {
    let docs = corpus_docs();
    let dir = TempDir::new("blocked");
    BlockedStore::build(
        dir.path(),
        docs.iter().map(|d| d.as_slice()),
        BlockCodec::Zlite(rlz_repro::zlite::Level::Default),
        64 * 1024,
        2,
    )
    .unwrap();
    let store = BlockedStore::open(dir.path()).unwrap();
    for backend in backends() {
        let handle = start(Arc::new(store.clone()), 1, backend);
        let mut client = Client::connect(handle.addr()).unwrap();
        // Same-block ids in one MGET exercise the coalesced decode path.
        let ids: Vec<u32> = (0..docs.len().min(40) as u32).collect();
        let got = client.mget(&ids).unwrap();
        for (doc, &id) in got.iter().zip(&ids) {
            assert_eq!(doc, &docs[id as usize], "doc {id}");
        }
        assert_eq!(client.stat().unwrap().num_docs as usize, docs.len());
        handle.shutdown();
    }
}

#[test]
fn error_frames_and_connection_policy() {
    let docs = corpus_docs();
    let dir = TempDir::new("errors");
    build_rlz(dir.path(), &docs);
    let store = Arc::new(RlzStore::open(dir.path()).unwrap());
    for backend in backends() {
        let handle = start(Arc::clone(&store) as Arc<dyn DocStore>, 1, backend);
        let addr = handle.addr();
        let n = docs.len() as u32;

        // Out-of-range GET: error frame, connection stays usable.
        let mut client = Client::connect(addr).unwrap();
        match client.get(n) {
            Err(ClientError::Server { status, message }) => {
                assert_eq!(status, STATUS_OUT_OF_RANGE);
                assert!(message.contains("out of range"), "{message}");
            }
            other => panic!("expected out-of-range error, got {other:?}"),
        }
        assert_eq!(client.get(0).unwrap(), docs[0], "connection must survive");

        // Out-of-range ids inside a pipelined GET burst answer per-request
        // error frames without disturbing neighbours.
        client.send_get(1).unwrap();
        client.send_get(n).unwrap();
        client.send_get(2).unwrap();
        let mut buf = Vec::new();
        client.recv_get_into(&mut buf).unwrap();
        assert_eq!(&buf[..], docs[1]);
        match client.recv_get_into(&mut Vec::new()) {
            Err(ClientError::Server { status, message }) => {
                assert_eq!(status, STATUS_OUT_OF_RANGE);
                assert!(message.contains("out of range"), "{message}");
            }
            other => panic!("pipelined out-of-range must error, got {other:?}"),
        }
        buf.clear();
        client.recv_get_into(&mut buf).unwrap();
        assert_eq!(&buf[..], docs[2]);

        // Out-of-range id inside an MGET fails the whole batch.
        match client.mget(&[0, 1, n]) {
            Err(ClientError::Server { status, .. }) => assert_eq!(status, STATUS_OUT_OF_RANGE),
            other => panic!("expected out-of-range error, got {other:?}"),
        }

        // Unknown opcode: error frame, connection stays open.
        let mut frame = 1u32.to_le_bytes().to_vec();
        frame.push(0x6E);
        let (status, _) = client.send_raw(&frame).unwrap();
        assert_eq!(status, STATUS_BAD_OPCODE);
        assert_eq!(client.get(1).unwrap(), docs[1]);

        // Oversized length prefix: BAD_FRAME answer, then the server closes
        // this connection.
        let mut client = Client::connect(addr).unwrap();
        let (status, _) = client.send_raw(&u32::MAX.to_le_bytes()).unwrap();
        assert_eq!(status, STATUS_BAD_FRAME);
        assert!(
            client.get(0).is_err(),
            "connection must be closed after a malformed frame"
        );

        // An MGET whose count field lies about the body also earns BAD_FRAME.
        let mut client = Client::connect(addr).unwrap();
        let mut frame = 13u32.to_le_bytes().to_vec(); // opcode + count + 2 ids
        frame.push(protocol::OP_MGET);
        frame.extend_from_slice(&9u32.to_le_bytes()); // claims 9 ids
        frame.extend_from_slice(&[0u8; 8]); // carries 2
        let (status, _) = client.send_raw(&frame).unwrap();
        assert_eq!(status, STATUS_BAD_FRAME);

        // A client vanishing mid-frame must not wedge the server.
        {
            let mut client = Client::connect(addr).unwrap();
            let mut partial = 5u32.to_le_bytes().to_vec();
            partial.push(protocol::OP_GET);
            // Two of the four id bytes, then drop the socket.
            partial.extend_from_slice(&[0u8; 2]);
            let _ = client.send_raw_no_response(&partial);
        }
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(
            client.get(2).unwrap(),
            docs[2],
            "server survives torn frame"
        );

        handle.shutdown();
    }
}

#[test]
fn corrupt_block_fails_only_its_mget_entries_over_the_wire() {
    let docs = corpus_docs();
    let dir = TempDir::new("corrupt-mget");
    BlockedStore::build(
        dir.path(),
        docs.iter().map(|d| d.as_slice()),
        BlockCodec::Zlite(rlz_repro::zlite::Level::Default),
        16 * 1024,
        2,
    )
    .unwrap();
    // A seeded single-byte flip in the middle of the compressed payload:
    // exactly one block's checksum breaks, and only that block's documents
    // may fail.
    let payload_len = std::fs::metadata(dir.path().join("blocks.bin"))
        .unwrap()
        .len();
    let fault = FaultBackend::new(Arc::new(
        FileBackend::open(&dir.path().join("blocks.bin")).unwrap(),
    ));
    let store =
        BlockedStore::open_with_backend(dir.path(), Arc::clone(&fault) as Arc<dyn StorageBackend>)
            .unwrap();
    fault.set_plan(FaultPlan {
        bit_flips: vec![(payload_len / 2, 0x10)],
        ..FaultPlan::default()
    });
    // Ground truth through the same faulted store: which ids must fail.
    let local = store.clone();
    let ids: Vec<u32> = (0..docs.len() as u32).collect();
    let expect: Vec<Result<Vec<u8>, _>> = ids.iter().map(|&id| local.get(id as usize)).collect();
    let corrupt: Vec<u32> = ids
        .iter()
        .zip(&expect)
        .filter_map(|(&id, r)| r.is_err().then_some(id))
        .collect();
    assert!(
        !corrupt.is_empty() && corrupt.len() < docs.len(),
        "the flip must break some but not all documents (broke {})",
        corrupt.len()
    );

    for backend in backends() {
        let handle = start(Arc::new(store.clone()), 1, backend);
        let mut client = Client::connect(handle.addr()).unwrap();

        // MGET across the whole store: per-entry containment. Corrupt ids
        // answer typed ERR_CORRUPT entries; every other entry is
        // byte-identical to the clean document.
        let got = client.mget_results(&ids).unwrap();
        assert_eq!(got.len(), ids.len());
        for ((&id, entry), want) in ids.iter().zip(&got).zip(&expect) {
            match (entry, want) {
                (Ok(doc), Ok(want)) => {
                    assert_eq!(doc, want, "doc {id}");
                    assert_eq!(doc, &docs[id as usize], "doc {id} vs source");
                }
                (Err((status, message)), Err(_)) => {
                    assert_eq!(*status, STATUS_CORRUPT, "doc {id}: {message}");
                }
                other => panic!("doc {id}: wire and local outcomes disagree: {other:?}"),
            }
        }

        // A single GET of a corrupt id earns the same typed status, and the
        // connection survives to serve clean documents afterwards.
        match client.get(corrupt[0]) {
            Err(ClientError::Server { status, .. }) => assert_eq!(status, STATUS_CORRUPT),
            other => panic!("GET of a corrupt doc must fail typed, got {other:?}"),
        }
        let clean = ids
            .iter()
            .find(|id| !corrupt.contains(id))
            .copied()
            .unwrap();
        assert_eq!(
            client.get(clean).unwrap(),
            docs[clean as usize],
            "connection must survive a corrupt response"
        );
        handle.shutdown();
    }
}

#[test]
fn connection_cap_rejects_with_busy_and_recovers() {
    let docs = corpus_docs();
    let dir = TempDir::new("conn-cap");
    build_rlz(dir.path(), &docs);
    let store = Arc::new(RlzStore::open(dir.path()).unwrap());
    for backend in backends() {
        let handle = start_cfg(
            Arc::clone(&store) as Arc<dyn DocStore>,
            ServeConfig {
                threads: 1,
                batch_threads: 1,
                allow_shutdown: true,
                backend,
                cache_bytes: 0,
                max_connections: 1,
                idle_timeout: None,
                shed_queue_depth: 0,
                writer: None,
                metrics: true,
                metrics_addr: None,
            },
        );
        let addr = handle.addr();

        // First connection occupies the only slot.
        let mut first = Client::connect(addr).unwrap();
        assert_eq!(first.get(0).unwrap(), docs[0]);

        // The second is accepted just long enough to hear ERR_BUSY.
        let mut second = Client::connect(addr).unwrap();
        match second.get(0) {
            Err(e) if e.is_busy() => {}
            other => panic!("over-cap connection must get ERR_BUSY, got {other:?}"),
        }

        // Once the slot frees, a retrying connect gets in and is served.
        drop(first);
        let mut retried = Client::connect_retry(addr, Duration::from_secs(10))
            .expect("capacity must free after the first client disconnects");
        assert_eq!(retried.get(1).unwrap(), docs[1]);
        retried.shutdown_server().unwrap();
        handle.join();
    }
}

#[test]
fn connect_retry_times_out_with_typed_error() {
    // A port that was listening and no longer is: every attempt fails fast,
    // and the retry loop must give up with the typed timeout error.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    match Client::connect_retry(addr, Duration::from_millis(300)) {
        Err(ClientError::ConnectTimedOut { attempts, .. }) => {
            assert!(attempts >= 2, "must retry before timing out ({attempts})")
        }
        other => panic!("expected ConnectTimedOut, got {other:?}"),
    }
}

#[test]
fn idle_timeout_reaps_silent_connections() {
    let docs = corpus_docs();
    let dir = TempDir::new("idle");
    build_rlz(dir.path(), &docs);
    let store = Arc::new(RlzStore::open(dir.path()).unwrap());
    for backend in backends() {
        let handle = start_cfg(
            Arc::clone(&store) as Arc<dyn DocStore>,
            ServeConfig {
                threads: 1,
                batch_threads: 1,
                allow_shutdown: true,
                backend,
                cache_bytes: 0,
                max_connections: 0,
                idle_timeout: Some(Duration::from_millis(150)),
                shed_queue_depth: 0,
                writer: None,
                metrics: true,
                metrics_addr: None,
            },
        );
        let addr = handle.addr();
        let mut idle = Client::connect(addr).unwrap();
        assert_eq!(idle.get(0).unwrap(), docs[0]);
        std::thread::sleep(Duration::from_millis(700));
        assert!(
            idle.get(0).is_err(),
            "a connection silent past the idle timeout must be dropped ({backend:?})"
        );
        // The server itself is healthy: fresh connections are served.
        let mut fresh = Client::connect(addr).unwrap();
        assert_eq!(fresh.get(0).unwrap(), docs[0]);
        fresh.shutdown_server().unwrap();
        handle.join();
    }
}

#[test]
fn overloaded_server_sheds_with_busy_instead_of_stalling() {
    let docs = corpus_docs();
    let dir = TempDir::new("shed");
    build_rlz(dir.path(), &docs);
    let store = RlzStore::open(dir.path()).unwrap();
    for backend in backends() {
        let handle = start_cfg(
            Arc::new(store.clone()),
            ServeConfig {
                threads: 1,
                batch_threads: 1,
                allow_shutdown: true,
                backend,
                cache_bytes: 0,
                max_connections: 0,
                idle_timeout: None,
                shed_queue_depth: 1,
                writer: None,
                metrics: true,
                metrics_addr: None,
            },
        );
        let addr = handle.addr();
        // Six connections hammer one worker with pipelined bursts: with a
        // queue budget of 1 the server must shed. Every response is either
        // the byte-correct document or a typed ERR_BUSY — never a stall,
        // never a wrong document.
        let (ok, busy) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6u64)
                .map(|t| {
                    let docs = &docs;
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        let ids = access::query_log(docs.len(), 150, 20, 0xD00D + t);
                        for &id in &ids {
                            client.send_get(id).unwrap();
                        }
                        let (mut ok, mut busy) = (0u64, 0u64);
                        let mut buf = Vec::new();
                        for &id in &ids {
                            buf.clear();
                            match client.recv_get_into(&mut buf) {
                                Ok(()) => {
                                    assert_eq!(&buf[..], docs[id as usize], "shed-run doc {id}");
                                    ok += 1;
                                }
                                Err(e) if e.is_busy() => busy += 1,
                                Err(e) => panic!("overload must answer, not fail: {e}"),
                            }
                        }
                        (ok, busy)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .fold((0u64, 0u64), |a, b| (a.0 + b.0, a.1 + b.1))
        });
        assert!(
            busy > 0,
            "a 1-worker server under 6-way pipelined load must shed \
             ({backend:?}: ok {ok}, busy {busy})"
        );
        handle.shutdown();
    }
}

#[test]
fn shutdown_opcode_stops_every_worker() {
    let docs = corpus_docs();
    let dir = TempDir::new("shutdown");
    build_rlz(dir.path(), &docs);
    let store = Arc::new(RlzStore::open(dir.path()).unwrap());
    for backend in backends() {
        let handle = start(Arc::clone(&store) as Arc<dyn DocStore>, 3, backend);
        let addr = handle.addr();
        let mut client = Client::connect(addr).unwrap();
        client.shutdown_server().unwrap();
        // join() returning proves all workers exited; afterwards fresh
        // connections must fail (nobody is accepting).
        handle.join();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let refused = Client::connect(addr)
            .and_then(|mut c| c.get(0).map_err(|_| std::io::Error::other("dead")));
        assert!(refused.is_err(), "server must stop serving after SHUTDOWN");
    }
}

// ---------------------------------------------------------------------------
// Write path: live stores over the wire.
// ---------------------------------------------------------------------------

use rlz_repro::serve::protocol::STATUS_READONLY;
use rlz_repro::store::{FsyncPolicy, LiveConfig, LiveStore};

fn create_live(dir: &std::path::Path, docs: &[Vec<u8>], cfg: LiveConfig) -> LiveStore {
    let all: Vec<u8> = docs.concat();
    let dict = Dictionary::sample(
        &all,
        (all.len() / 64).max(1024),
        256,
        SampleStrategy::Evenly,
    );
    LiveStore::create(dir, dict, PairCoding::ZV, cfg).unwrap()
}

fn start_live(live: &LiveStore, backend: Backend) -> rlz_repro::serve::ServerHandle {
    start_cfg(
        Arc::new(live.clone()),
        ServeConfig {
            threads: 2,
            batch_threads: 1,
            allow_shutdown: true,
            backend,
            cache_bytes: 0,
            max_connections: 0,
            idle_timeout: None,
            shed_queue_depth: 0,
            writer: Some(Arc::new(live.clone())),
            metrics: true,
            metrics_addr: None,
        },
    )
}

#[test]
fn live_writes_roundtrip_and_persist_across_reopen() {
    let docs = corpus_docs();
    let dir = TempDir::new("live-write");
    let cfg = LiveConfig {
        fsync: FsyncPolicy::Never, // durability is the crash suite's job
        ..LiveConfig::default()
    };
    let live = create_live(dir.path(), &docs, cfg);
    for backend in backends() {
        let handle = start_live(&live, backend);
        let mut client = Client::connect(handle.addr()).unwrap();

        let before = client.stat().unwrap().num_docs;
        let mut ids = Vec::new();
        for doc in docs.iter().take(24) {
            ids.push(client.put(doc).unwrap());
        }
        for (id, doc) in ids.iter().zip(&docs) {
            assert_eq!(&client.get(*id).unwrap(), doc, "doc {id} differs");
        }
        client.append(ids[0], b"--trailer--").unwrap();
        let mut want = docs[0].clone();
        want.extend_from_slice(b"--trailer--");
        assert_eq!(client.get(ids[0]).unwrap(), want);

        client.delete(ids[1]).unwrap();
        let err = client.get(ids[1]).unwrap_err();
        assert!(
            matches!(err, ClientError::Server { status, .. } if status == STATUS_OUT_OF_RANGE),
            "deleted doc must answer ERR_RANGE, got {err}"
        );
        assert_eq!(client.stat().unwrap().num_docs, before + 24);
        handle.shutdown();
    }
    // Everything acked over the wire must still be there after a clean
    // reopen (both backends wrote to the same store).
    drop(live);
    let reopened = LiveStore::open(dir.path(), LiveConfig::default()).unwrap();
    let mut want = docs[0].clone();
    want.extend_from_slice(b"--trailer--");
    assert_eq!(reopened.get(0).unwrap(), want);
    assert!(reopened.get(1).is_err(), "delete must survive reopen");
    assert_eq!(reopened.get(2).unwrap(), docs[2]);
    assert_eq!(reopened.num_docs(), 24 * backends().len());
}

#[test]
fn read_only_family_answers_writes_with_err_readonly() {
    let docs = corpus_docs();
    let dir = TempDir::new("readonly-writes");
    build_rlz(dir.path(), &docs);
    let store = Arc::new(RlzStore::open(dir.path()).unwrap());
    for backend in backends() {
        // `start` never sets a writer, so the server is read-only.
        let handle = start(Arc::clone(&store) as Arc<dyn DocStore>, 1, backend);
        let mut client = Client::connect(handle.addr()).unwrap();
        for result in [
            client.put(b"new doc").map(|_| ()),
            client.append(0, b"tail"),
            client.delete(0),
        ] {
            let err = result.unwrap_err();
            assert!(
                matches!(err, ClientError::Server { status, .. } if status == STATUS_READONLY),
                "read-only server must answer ERR_READONLY, got {err}"
            );
        }
        // Reads are untouched.
        assert_eq!(client.get(0).unwrap(), docs[0]);
        handle.shutdown();
    }
}

#[test]
fn wal_backlog_sheds_writes_while_reads_serve() {
    let docs = corpus_docs();
    let dir = TempDir::new("write-shed");
    let cfg = LiveConfig {
        fsync: FsyncPolicy::Never,
        seal_bytes: u64::MAX, // never seal: the backlog only grows
        wal_soft_bytes: 1,    // one put trips the pressure bound
        wal_max_bytes: 1 << 30,
    };
    let live = create_live(dir.path(), &docs, cfg);
    let handle = start_live(&live, backends()[0]);
    let mut client = Client::connect(handle.addr()).unwrap();

    let id = client.put(&docs[0]).unwrap();
    let err = client.put(&docs[1]).unwrap_err();
    assert!(
        err.is_busy(),
        "writes past the soft WAL bound must shed with ERR_BUSY, got {err}"
    );
    // Reads keep flowing while the write path sheds.
    assert_eq!(client.get(id).unwrap(), docs[0]);
    assert_eq!(client.mget(&[id]).unwrap()[0], docs[0]);
    // Draining the backlog (seal) reopens the write path.
    live.seal().unwrap();
    let id2 = client.put(&docs[1]).unwrap();
    assert_eq!(client.get(id2).unwrap(), docs[1]);
    handle.shutdown();
}
