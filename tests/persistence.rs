//! On-disk format stability: stores built by one "process" (builder scope)
//! must reopen cleanly and serve identical bytes; metadata corruption must
//! be detected.

use rlz_repro::corpus::{generate_web, WebConfig};
use rlz_repro::rlz::{Dictionary, PairCoding, SampleStrategy};
use rlz_repro::store::{AsciiStore, BlockCodec, BlockedStore, DocStore, RlzStore, RlzStoreBuilder};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("rlz-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn rlz_store_reopens_across_sessions() {
    let c = generate_web(&WebConfig::gov2(1 << 20, 99));
    let docs: Vec<&[u8]> = c.iter_docs().collect();
    let dir = TempDir::new("rlz-reopen");
    {
        let dict = Dictionary::sample(&c.data, 16 * 1024, 512, SampleStrategy::Evenly);
        RlzStoreBuilder::new(dict, PairCoding::ZV)
            .threads(4)
            .build(dir.path(), &docs)
            .unwrap();
    } // builder, dictionary, suffix array all dropped — "process exit"

    // First reader session.
    {
        let store = RlzStore::open(dir.path()).unwrap();
        assert_eq!(store.get(0).unwrap(), docs[0]);
    }
    // Second reader session sees the same bytes.
    let store = RlzStore::open(dir.path()).unwrap();
    for (i, doc) in docs.iter().enumerate() {
        assert_eq!(&store.get(i).unwrap(), doc, "doc {i}");
    }
}

#[test]
fn blocked_store_reopens_and_detects_meta_corruption() {
    let c = generate_web(&WebConfig::gov2(1 << 20, 98));
    let docs: Vec<&[u8]> = c.iter_docs().collect();
    let dir = TempDir::new("blocked-reopen");
    BlockedStore::build(
        dir.path(),
        docs.iter().copied(),
        BlockCodec::Zlite(rlz_repro::zlite::Level::Default),
        64 * 1024,
        4,
    )
    .unwrap();
    {
        let store = BlockedStore::open(dir.path()).unwrap();
        for (i, doc) in docs.iter().enumerate() {
            assert_eq!(&store.get(i).unwrap(), doc);
        }
    }
    // Truncate the metadata: open (or first access) must fail, not panic.
    let meta = dir.path().join("meta.bin");
    let bytes = std::fs::read(&meta).unwrap();
    std::fs::write(&meta, &bytes[..bytes.len() / 2]).unwrap();
    assert!(BlockedStore::open(dir.path()).is_err());
}

#[test]
fn ascii_store_detects_truncated_payload() {
    let dir = TempDir::new("ascii-trunc");
    let docs: Vec<&[u8]> = vec![b"first document", b"second document"];
    AsciiStore::build(dir.path(), docs.iter().copied()).unwrap();
    // Chop the data file: the doc map now points past EOF.
    let data = dir.path().join("data.bin");
    let bytes = std::fs::read(&data).unwrap();
    std::fs::write(&data, &bytes[..5]).unwrap();
    let store = AsciiStore::open(dir.path()).unwrap();
    assert!(store.get(1).is_err());
}

#[test]
fn rlz_store_detects_cross_coding_mismatch() {
    // A payload written as UV but labelled ZZ must error or mis-decode, not
    // panic, and a correct label round-trips.
    let c = generate_web(&WebConfig::gov2(256 * 1024, 97));
    let docs: Vec<&[u8]> = c.iter_docs().collect();
    let dir = TempDir::new("rlz-mislabel");
    let dict = Dictionary::sample(&c.data, 8 * 1024, 512, SampleStrategy::Evenly);
    RlzStoreBuilder::new(dict, PairCoding::UV)
        .build(dir.path(), &docs)
        .unwrap();
    std::fs::write(dir.path().join("meta.bin"), b"ZZ").unwrap();
    let store = RlzStore::open(dir.path()).unwrap();
    for (i, doc) in docs.iter().enumerate() {
        if let Ok(bytes) = store.get(i) {
            assert_ne!(&bytes, doc, "mislabelled store decoded correctly?!");
        }
    }
}
