//! Out-of-process crash recovery: a real `ingest_writer` child is
//! SIGKILLed mid-ingest at randomized (but seeded) points, then the
//! store directory is reopened through the normal recovery path. The
//! contract under `--fsync always`:
//!
//! * every write the child acked (printed a flushed `ACK` line for)
//!   survives, byte-identical to its deterministic content;
//! * whatever else survives is a clean prefix extension — documents the
//!   child had written but died before acking — never garbage, and
//!   recovery itself never panics or errors.
//!
//! Under `--fsync never` acked writes may legitimately be lost, but
//! recovery must still come up clean with some byte-identical prefix.
//! Each round restarts the writer on the same directory, so the
//! recover-then-continue path is exercised as hard as first recovery.

use rlz_repro::ingest;
use rlz_repro::store::{DocStore, FsyncPolicy, LiveStore};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Command, Stdio};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("rlz-crash-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Seeded xorshift for the kill points — reproducible from the constant.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Runs one writer on `dir`, killing it after observing `kill_after`
/// acks (or letting it finish if it acks fewer). Returns the highest
/// acked doc id + 1 — the durable watermark the parent observed.
fn run_and_kill(dir: &Path, seed: u64, fsync: &str, count: u32, kill_after: u64) -> u32 {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ingest_writer"))
        .args(["--dir"])
        .arg(dir)
        .args([
            "--seed",
            &seed.to_string(),
            "--count",
            &count.to_string(),
            "--fsync",
            fsync,
            "--seal-bytes",
            "8192", // small segments: kills land around seal boundaries
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn ingest_writer");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut acked_watermark = 0u32;
    let mut acks = 0u64;
    let mut killed = false;
    // Keep draining after the kill: lines already flushed before SIGKILL
    // landed are acks the store made durable, so they count.
    for line in BufReader::new(stdout).lines() {
        let Ok(line) = line else { break };
        if let Some(id) = line.strip_prefix("ACK ") {
            let id: u32 = id.parse().expect("ack line carries a doc id");
            acked_watermark = acked_watermark.max(id + 1);
            acks += 1;
            if acks == kill_after && !killed {
                child.kill().expect("SIGKILL the writer");
                killed = true;
            }
        }
    }
    let status = child.wait().expect("reap the writer");
    if !killed {
        assert!(status.success(), "uninterrupted writer must exit cleanly");
    }
    acked_watermark
}

/// Reopens `dir` and checks the recovery contract against the acked
/// watermark; returns the recovered doc count.
fn verify_recovery(dir: &Path, seed: u64, acked: u32, require_acked: bool) -> u32 {
    let store = ingest::open_or_create(dir, ingest::harness_config(FsyncPolicy::Always, 8192))
        .expect("recovery must succeed, never panic or refuse");
    let recovered = store.num_docs() as u32;
    if require_acked {
        assert!(
            recovered >= acked,
            "recovery lost acked writes: acked {acked}, recovered {recovered}"
        );
    }
    // Whatever survived must be the deterministic content, bit for bit —
    // recovery never resurrects a garbled document.
    for id in 0..recovered {
        assert_eq!(
            store.get(id as usize).expect("recovered doc readable"),
            ingest::doc_bytes(seed, id),
            "doc {id} corrupted across the crash"
        );
    }
    recovered
}

#[test]
fn sigkill_mid_ingest_preserves_every_acked_doc() {
    let seed = 0xD15A57E5u64;
    let dir = TempDir::new("always");
    let mut rng = seed | 1;
    let mut watermark = 0u32;
    // Several crash/restart rounds over the same directory: each round
    // resumes from the recovered state and dies somewhere new.
    for round in 0..4 {
        let kill_after = xorshift(&mut rng) % 120 + 5;
        let acked = run_and_kill(dir.path(), seed, "always", 400, kill_after);
        assert!(
            acked >= watermark,
            "round {round}: acked watermark went backwards"
        );
        watermark = watermark.max(acked);
        let recovered = verify_recovery(dir.path(), seed, watermark, true);
        watermark = watermark.max(recovered);
    }
    // A final uninterrupted run must complete and keep the whole prefix.
    let acked = run_and_kill(dir.path(), seed, "always", 50, u64::MAX);
    assert_eq!(acked, watermark + 50);
    verify_recovery(dir.path(), seed, acked, true);
}

#[test]
fn sigkill_with_fsync_never_still_recovers_a_clean_prefix() {
    let seed = 0x0FF5E7u64;
    let dir = TempDir::new("never");
    let mut rng = seed | 1;
    for _ in 0..3 {
        let kill_after = xorshift(&mut rng) % 150 + 10;
        run_and_kill(dir.path(), seed, "never", 400, kill_after);
        // Acked writes may be gone (no fsync), but recovery must come up
        // clean and byte-identical for whatever did land.
        verify_recovery(dir.path(), seed, 0, false);
    }
}

#[test]
fn recovered_store_opens_read_only_through_the_standard_path() {
    // After a crash + recovery, the directory must still open through
    // the plain LiveStore::open used by rlz-serve's autodetection.
    let seed = 0xBEEFu64;
    let dir = TempDir::new("reopen");
    run_and_kill(dir.path(), seed, "always", 200, 60);
    let store = LiveStore::open(
        dir.path(),
        ingest::harness_config(FsyncPolicy::Always, 8192),
    )
    .expect("standard open path");
    let r = store.recovery();
    // The kill landed mid-run, so recovery had real work to do in at
    // least one of its dimensions (WAL replay or sealed segments).
    let docs = store.num_docs();
    assert!(docs >= 60, "watermark of 60 acked docs must survive");
    assert!(
        r.replayed_frames > 0 || docs > 0,
        "recovery accounting must be populated"
    );
}
