//! End-to-end integration: synthetic crawl → every store type → retrieval
//! equality, plus the compression-ordering claims of the paper's discussion
//! section at miniature scale.

use rlz_repro::corpus::{self, access, generate_web, WebConfig};
use rlz_repro::rlz::{Dictionary, PairCoding, SampleStrategy};
use rlz_repro::store::{AsciiStore, BlockCodec, BlockedStore, DocStore, RlzStore, RlzStoreBuilder};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("rlz-it-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn crawl() -> &'static corpus::Collection {
    use std::sync::OnceLock;
    static CRAWL: OnceLock<corpus::Collection> = OnceLock::new();
    CRAWL.get_or_init(|| generate_web(&WebConfig::gov2(6 * 1024 * 1024, 0xFEED)))
}

#[test]
fn every_store_returns_identical_documents() {
    let c = crawl();
    let docs: Vec<&[u8]> = c.iter_docs().collect();

    let ascii_dir = TempDir::new("ascii");
    AsciiStore::build(ascii_dir.path(), docs.iter().copied()).unwrap();
    let ascii = AsciiStore::open(ascii_dir.path()).unwrap();

    let zl_dir = TempDir::new("zl");
    BlockedStore::build(
        zl_dir.path(),
        docs.iter().copied(),
        BlockCodec::Zlite(rlz_repro::zlite::Level::Default),
        64 * 1024,
        8,
    )
    .unwrap();
    let zl = BlockedStore::open(zl_dir.path()).unwrap();

    let lz_dir = TempDir::new("lz");
    BlockedStore::build(
        lz_dir.path(),
        docs.iter().copied(),
        BlockCodec::Lzlite(rlz_repro::lzlite::Level::Fast),
        128 * 1024,
        8,
    )
    .unwrap();
    let lz = BlockedStore::open(lz_dir.path()).unwrap();

    let dict = Dictionary::sample(&c.data, c.data.len() / 200, 1024, SampleStrategy::Evenly);
    let rlz_dir = TempDir::new("rlz");
    RlzStoreBuilder::new(dict, PairCoding::ZV)
        .threads(8)
        .build(rlz_dir.path(), &docs)
        .unwrap();
    let rlz = RlzStore::open(rlz_dir.path()).unwrap();

    assert_eq!(ascii.num_docs(), docs.len());
    assert_eq!(zl.num_docs(), docs.len());
    assert_eq!(lz.num_docs(), docs.len());
    assert_eq!(rlz.num_docs(), docs.len());

    // Query-log access pattern over all four stores.
    let requests = access::query_log(docs.len(), 500, 20, 7);
    for &id in &requests {
        let expect = docs[id as usize];
        assert_eq!(ascii.get(id as usize).unwrap(), expect);
        assert_eq!(zl.get(id as usize).unwrap(), expect);
        assert_eq!(lz.get(id as usize).unwrap(), expect);
        assert_eq!(rlz.get(id as usize).unwrap(), expect);
    }
}

#[test]
fn rlz_compresses_better_than_small_block_zlib() {
    // The paper's headline space claim at miniature scale: RLZ with a ~1%
    // dictionary beats blocked zlib.
    let c = crawl();
    let docs: Vec<&[u8]> = c.iter_docs().collect();

    let zl_dir = TempDir::new("ratio-zl");
    BlockedStore::build(
        zl_dir.path(),
        docs.iter().copied(),
        BlockCodec::Zlite(rlz_repro::zlite::Level::Best),
        100 * 1024,
        8,
    )
    .unwrap();
    let zl = BlockedStore::open(zl_dir.path()).unwrap();

    let dict = Dictionary::sample(&c.data, c.data.len() / 50, 1024, SampleStrategy::Evenly);
    let rlz_dir = TempDir::new("ratio-rlz");
    RlzStoreBuilder::new(dict, PairCoding::ZZ)
        .threads(8)
        .build(rlz_dir.path(), &docs)
        .unwrap();
    let rlz = RlzStore::open(rlz_dir.path()).unwrap();

    let zl_pct = zl.stored_bytes() as f64 * 100.0 / c.total_bytes() as f64;
    let rlz_pct = rlz.total_stored_bytes() as f64 * 100.0 / c.total_bytes() as f64;
    assert!(
        rlz_pct < zl_pct,
        "rlz {rlz_pct:.2}% should beat blocked zlib {zl_pct:.2}%"
    );
}

#[test]
fn url_sorting_helps_blocked_but_not_rlz() {
    let c = crawl();
    let sorted = c.url_sorted();

    let build_zl = |col: &corpus::Collection, tag: &str| {
        let docs: Vec<&[u8]> = col.iter_docs().collect();
        let dir = TempDir::new(tag);
        BlockedStore::build(
            dir.path(),
            docs.iter().copied(),
            BlockCodec::Zlite(rlz_repro::zlite::Level::Default),
            100 * 1024,
            8,
        )
        .unwrap();
        let s = BlockedStore::open(dir.path()).unwrap().stored_bytes();
        s
    };
    let crawl_size = build_zl(c, "url-zl-crawl");
    let sorted_size = build_zl(&sorted, "url-zl-sorted");
    assert!(
        (sorted_size as f64) < crawl_size as f64 * 0.98,
        "URL sorting should help blocked zlib: {sorted_size} vs {crawl_size}"
    );

    let build_rlz = |col: &corpus::Collection, tag: &str| {
        let docs: Vec<&[u8]> = col.iter_docs().collect();
        let dict = Dictionary::sample(
            &col.data,
            col.data.len() / 150,
            1024,
            SampleStrategy::Evenly,
        );
        let dir = TempDir::new(tag);
        RlzStoreBuilder::new(dict, PairCoding::ZV)
            .threads(8)
            .build(dir.path(), &docs)
            .unwrap();
        RlzStore::open(dir.path()).unwrap().total_stored_bytes()
    };
    let rlz_crawl = build_rlz(c, "url-rlz-crawl") as f64;
    let rlz_sorted = build_rlz(&sorted, "url-rlz-sorted") as f64;
    // The paper's claim (§5): reordering moves RLZ "by a fraction of a
    // percent" while blocked compressors improve substantially. At this
    // miniature scale, sampling variance adds noise to RLZ's delta, so
    // assert the *relative* claim: RLZ is much less order-sensitive than
    // the blocked baseline. (The 32 MiB benchmark reproduces the ~0.5-point
    // absolute figure; see EXPERIMENTS.md, Tables 4/5.)
    let rlz_rel = (rlz_sorted - rlz_crawl).abs() / rlz_crawl;
    let blocked_rel = (crawl_size as f64 - sorted_size as f64).abs() / crawl_size as f64;
    assert!(
        rlz_rel < blocked_rel,
        "RLZ order-sensitivity ({rlz_rel:.4}) should be below blocked zlib's ({blocked_rel:.4})"
    );
    assert!(rlz_rel < 0.2, "RLZ moved implausibly much: {rlz_rel:.4}");
}

#[test]
fn dictionary_size_trades_compression() {
    let c = crawl();
    let docs: Vec<&[u8]> = c.iter_docs().collect();
    let mut sizes = Vec::new();
    for (i, frac) in [800usize, 200, 50].into_iter().enumerate() {
        let dict = Dictionary::sample(&c.data, c.data.len() / frac, 1024, SampleStrategy::Evenly);
        let dir = TempDir::new(&format!("dictsize-{i}"));
        RlzStoreBuilder::new(dict, PairCoding::ZV)
            .threads(8)
            .build(dir.path(), &docs)
            .unwrap();
        sizes.push(RlzStore::open(dir.path()).unwrap().total_stored_bytes());
    }
    assert!(
        sizes[0] > sizes[1] && sizes[1] > sizes[2],
        "larger dictionaries must compress better: {sizes:?}"
    );
}
