//! Chunked/parallel construction must be byte-identical to the serial
//! batch oracle — for every store family, across random corpora, master
//! block sizes, storage block sizes and thread counts, including the
//! edges the pipeline has to get right: a document larger than the block
//! budget (one block of its own, never split), zero-length documents, and
//! trailing zero-length documents (which in the blocked format get docmap
//! entries but no storage block of their own).

use proptest::prelude::*;
use rlz_repro::ingest::doc_bytes;
use rlz_repro::rlz::{Dictionary, PairCoding, SampleStrategy};
use rlz_repro::store::{
    build_ascii_chunked, build_blocked_chunked, build_rlz_chunked, AsciiStore, BlockCodec,
    BlockedStore, BuildConfig, DocStore, RlzStore, RlzStoreBuilder,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("rlz-buildstream-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Every file a build emitted, by name — the identity being asserted.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        out.insert(
            entry.file_name().to_string_lossy().into_owned(),
            std::fs::read(entry.path()).unwrap(),
        );
    }
    out
}

/// A corpus with the awkward shapes mixed in: generator documents, some
/// zero-length documents scattered through, optionally one document far
/// larger than any block budget, optionally trailing zero-length docs.
fn make_docs(seed: u64, n: usize, oversized: bool, trailing_empties: usize) -> Vec<Vec<u8>> {
    let mut docs: Vec<Vec<u8>> = (0..n as u32).map(|id| doc_bytes(seed, id)).collect();
    for i in (0..n).step_by(7) {
        docs[i].clear();
    }
    if oversized {
        let at = n / 2;
        let big = doc_bytes(seed, u32::MAX)
            .iter()
            .cycle()
            .take(64 * 1024)
            .copied()
            .collect();
        docs.insert(at.min(docs.len()), big);
    }
    docs.extend(std::iter::repeat_n(Vec::new(), trailing_empties));
    docs
}

fn dict_for(docs: &[Vec<u8>]) -> Dictionary {
    let all: Vec<u8> = docs.concat();
    Dictionary::sample(&all, (all.len() / 32).max(64), 128, SampleStrategy::Evenly)
}

/// Builds serial + chunked for one family and asserts file-level identity
/// plus `get` round-trips on the chunked store.
fn check_family(
    family: &str,
    docs: &[Vec<u8>],
    cfg: &BuildConfig,
    storage_block: usize,
    tag: &str,
) {
    let serial = TempDir::new(&format!("{family}-serial-{tag}"));
    let chunked = TempDir::new(&format!("{family}-chunked-{tag}"));
    let reopened: Box<dyn DocStore> = match family {
        "ascii" => {
            AsciiStore::build(serial.path(), docs.iter().map(|d| d.as_slice())).unwrap();
            build_ascii_chunked(chunked.path(), docs.iter().cloned(), cfg).unwrap();
            Box::new(AsciiStore::open(chunked.path()).unwrap())
        }
        "blocked" => {
            let codec = BlockCodec::Zlite(rlz_repro::zlite::Level::Default);
            BlockedStore::build(
                serial.path(),
                docs.iter().map(|d| d.as_slice()),
                codec,
                storage_block,
                2,
            )
            .unwrap();
            build_blocked_chunked(
                chunked.path(),
                codec,
                storage_block,
                docs.iter().cloned(),
                cfg,
            )
            .unwrap();
            Box::new(BlockedStore::open(chunked.path()).unwrap())
        }
        "rlz" => {
            let builder = RlzStoreBuilder::new(dict_for(docs), PairCoding::ZV).threads(2);
            let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
            builder.build(serial.path(), &slices).unwrap();
            build_rlz_chunked(
                chunked.path(),
                builder.compressor(),
                docs.iter().cloned(),
                cfg,
            )
            .unwrap();
            Box::new(RlzStore::open(chunked.path()).unwrap())
        }
        other => panic!("unknown family {other}"),
    };
    assert_eq!(
        dir_bytes(serial.path()),
        dir_bytes(chunked.path()),
        "{family} ({tag}): chunked build diverged from the serial oracle"
    );
    assert_eq!(reopened.num_docs(), docs.len(), "{family} ({tag})");
    for (i, doc) in docs.iter().enumerate() {
        assert_eq!(&reopened.get(i).unwrap(), doc, "{family} ({tag}): doc {i}");
    }
}

const FAMILIES: [&str; 3] = ["ascii", "blocked", "rlz"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn chunked_build_equals_serial_build(
        seed in 0u64..u32::MAX as u64,
        n in 0usize..90,
        threads in 1usize..5,
        block_bytes in 1usize..4096,
        storage_block in 0usize..8192,
        oversized in any::<bool>(),
        trailing_empties in 0usize..4,
    ) {
        let docs = make_docs(seed, n, oversized, trailing_empties);
        let cfg = BuildConfig { threads, block_bytes, queued_blocks: 2 };
        let tag = format!("{seed}-{n}-{threads}-{block_bytes}");
        for family in FAMILIES {
            check_family(family, &docs, &cfg, storage_block, &tag);
        }
    }
}

/// The named edge from the issue: one document larger than the master
/// block budget must still round-trip byte-identically (it forms a block
/// of its own; documents are never split).
#[test]
fn one_doc_larger_than_block() {
    let docs = make_docs(0xB16, 12, true, 0);
    let cfg = BuildConfig {
        threads: 3,
        block_bytes: 512,
        queued_blocks: 2,
    };
    for family in FAMILIES {
        check_family(family, &docs, &cfg, 1024, "oversized");
    }
}

/// Trailing zero-length documents: the blocked format gives them docmap
/// entries but no storage block; the streamed packer must reproduce that
/// exactly.
#[test]
fn trailing_empty_docs_match_serial() {
    let docs = make_docs(0xE0F, 9, false, 3);
    let cfg = BuildConfig {
        threads: 2,
        block_bytes: 777,
        queued_blocks: 1,
    };
    for family in FAMILIES {
        check_family(family, &docs, &cfg, 512, "trailing");
    }
}
