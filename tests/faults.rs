//! Fault-injection harness: deterministic corruption through
//! [`FaultBackend`] must be *contained* — a broken block fails exactly the
//! documents living in it, typed as `StoreError::Corrupt`, while every
//! other document decodes byte-identically — and arbitrary on-disk damage
//! (bit rot, truncation, zero-extension of any store file) must never
//! panic, only error.

use proptest::prelude::*;
use rlz_repro::corpus::{generate_web, WebConfig};
use rlz_repro::rlz::{Dictionary, PairCoding, SampleStrategy};
use rlz_repro::store::{
    AsciiStore, BlockCodec, BlockedStore, DocStore, FaultBackend, FaultPlan, FileBackend, RlzStore,
    RlzStoreBuilder, StorageBackend, StoreError,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("rlz-faults-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn corpus_docs() -> Vec<Vec<u8>> {
    let collection = generate_web(&WebConfig::gov2(256 * 1024, 0xFA17));
    collection.iter_docs().map(|d| d.to_vec()).collect()
}

/// The three store families, built into `dir` and reopened over a
/// [`FaultBackend`] wrapping the payload file, so tests can arm faults
/// mid-flight.
fn build_faulted(
    family: &str,
    dir: &Path,
    docs: &[Vec<u8>],
) -> (Box<dyn DocStore>, Arc<FaultBackend>, u64) {
    let payload_file = match family {
        "ascii" => {
            AsciiStore::build(dir, docs.iter().map(|d| d.as_slice())).unwrap();
            "data.bin"
        }
        "blocked" => {
            BlockedStore::build(
                dir,
                docs.iter().map(|d| d.as_slice()),
                BlockCodec::Zlite(rlz_repro::zlite::Level::Default),
                16 * 1024,
                2,
            )
            .unwrap();
            "blocks.bin"
        }
        "rlz" => {
            let all: Vec<u8> = docs.concat();
            let dict = Dictionary::sample(&all, all.len() / 64, 512, SampleStrategy::Evenly);
            let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
            RlzStoreBuilder::new(dict, PairCoding::ZV)
                .threads(2)
                .build(dir, &slices)
                .unwrap();
            "payload.bin"
        }
        other => panic!("unknown family {other}"),
    };
    let payload_len = std::fs::metadata(dir.join(payload_file)).unwrap().len();
    let fault = FaultBackend::new(Arc::new(
        FileBackend::open(&dir.join(payload_file)).unwrap(),
    ));
    let backend = Arc::clone(&fault) as Arc<dyn StorageBackend>;
    let store: Box<dyn DocStore> = match family {
        "ascii" => Box::new(AsciiStore::open_with_backend(dir, backend).unwrap()),
        "blocked" => Box::new(BlockedStore::open_with_backend(dir, backend).unwrap()),
        "rlz" => Box::new(RlzStore::open_with_backend(dir, backend).unwrap()),
        _ => unreachable!(),
    };
    (store, fault, payload_len)
}

const FAMILIES: [&str; 3] = ["ascii", "blocked", "rlz"];

#[test]
fn seeded_corruption_is_contained_and_typed() {
    let docs = corpus_docs();
    for family in FAMILIES {
        let dir = TempDir::new(&format!("contain-{family}"));
        let (store, fault, payload_len) = build_faulted(family, dir.path(), &docs);
        let ids: Vec<u32> = (0..docs.len() as u32).collect();

        // Clean pass: everything decodes byte-identically.
        for r in store.get_batch_results(&ids, 2) {
            r.unwrap_or_else(|e| panic!("{family}: clean store failed: {e}"));
        }

        // One flipped bit in the payload: at least one document fails with
        // the *typed* corruption error, every other one is byte-identical.
        fault.set_plan(FaultPlan::seeded_bit_flips(7, 1, payload_len));
        let results = store.get_batch_results(&ids, 2);
        let mut failed = Vec::new();
        for (id, r) in ids.iter().zip(&results) {
            match r {
                Ok(doc) => assert_eq!(
                    doc, &docs[*id as usize],
                    "{family}: doc {id} must be unaffected by a fault in another unit"
                ),
                Err(e) => {
                    assert!(
                        matches!(e, StoreError::Corrupt { .. }),
                        "{family}: doc {id} failed untyped: {e}"
                    );
                    failed.push(*id);
                }
            }
        }
        assert!(
            !failed.is_empty(),
            "{family}: a payload bit flip must be detected by the checksums"
        );
        assert!(
            failed.len() < docs.len(),
            "{family}: one flipped bit must not take down the whole store"
        );

        // Single-document gets agree with the batch verdicts.
        for &id in failed.iter().take(3) {
            assert!(
                matches!(store.get(id as usize), Err(StoreError::Corrupt { .. })),
                "{family}: doc {id} must fail typed on a direct get too"
            );
        }

        // The scrub walks the same checksums: its quarantine list is
        // exactly the set of unreadable documents.
        let report = match family {
            "ascii" => AsciiStore::open_with_backend(
                dir.path(),
                Arc::clone(&fault) as Arc<dyn StorageBackend>,
            )
            .unwrap()
            .scrub(),
            "blocked" => BlockedStore::open_with_backend(
                dir.path(),
                Arc::clone(&fault) as Arc<dyn StorageBackend>,
            )
            .unwrap()
            .scrub(),
            "rlz" => RlzStore::open_with_backend(
                dir.path(),
                Arc::clone(&fault) as Arc<dyn StorageBackend>,
            )
            .unwrap()
            .scrub(),
            _ => unreachable!(),
        };
        assert_eq!(
            report.bad_doc_ids(),
            failed,
            "{family}: scrub and retrieval must agree on the failure set"
        );

        // Disarming the fault restores every byte — containment did not
        // poison any cached state.
        fault.clear();
        for (id, r) in ids.iter().zip(store.get_batch_results(&ids, 2)) {
            assert_eq!(
                r.unwrap_or_else(|e| panic!("{family}: doc {id} after clear: {e}")),
                docs[*id as usize]
            );
        }
    }
}

#[test]
fn injected_io_errors_fail_only_overlapping_reads() {
    let docs = corpus_docs();
    let dir = TempDir::new("eio");
    let (store, fault, payload_len) = build_faulted("blocked", dir.path(), &docs);
    // A "bad sector" covering a small window in the middle of the payload.
    let mid = payload_len / 2;
    fault.set_plan(FaultPlan {
        eio_ranges: vec![(mid, mid + 64)],
        ..FaultPlan::default()
    });
    let ids: Vec<u32> = (0..docs.len() as u32).collect();
    let results = store.get_batch_results(&ids, 2);
    let failed = results.iter().filter(|r| r.is_err()).count();
    assert!(failed > 0, "reads over the bad sector must fail");
    assert!(failed < docs.len(), "reads elsewhere must succeed");
    for (id, r) in ids.iter().zip(&results) {
        if let Ok(doc) = r {
            assert_eq!(doc, &docs[*id as usize], "doc {id}");
        }
    }
}

#[test]
fn truncated_backend_errors_without_panicking() {
    let docs = corpus_docs();
    for family in FAMILIES {
        let dir = TempDir::new(&format!("trunc-{family}"));
        let (store, fault, payload_len) = build_faulted(family, dir.path(), &docs);
        fault.set_plan(FaultPlan {
            truncate_at: Some(payload_len / 3),
            ..FaultPlan::default()
        });
        let ids: Vec<u32> = (0..docs.len() as u32).collect();
        let results = store.get_batch_results(&ids, 2);
        assert!(
            results.iter().any(|r| r.is_err()),
            "{family}: documents past the truncation point must fail"
        );
        for (id, r) in ids.iter().zip(&results) {
            if let Ok(doc) = r {
                assert_eq!(doc, &docs[*id as usize], "{family}: doc {id}");
            }
        }
    }
}

/// Tiny per-family stores whose on-disk files the property tests mutate.
/// Built once; each case copies the directory and damages the copy.
fn tiny_store(family: &'static str) -> &'static (PathBuf, usize) {
    use std::sync::OnceLock;
    static STORES: OnceLock<Vec<(&'static str, (PathBuf, usize))>> = OnceLock::new();
    let stores = STORES.get_or_init(|| {
        let docs: Vec<Vec<u8>> = (0..24)
            .map(|i| {
                format!(
                    "<doc id={i}>{}</doc>",
                    "common web boilerplate ".repeat(3 + i % 5)
                )
                .into_bytes()
            })
            .collect();
        FAMILIES
            .iter()
            .map(|&family| {
                let dir = std::env::temp_dir()
                    .join(format!("rlz-faults-tiny-{family}-{}", std::process::id()));
                let _ = std::fs::remove_dir_all(&dir);
                std::fs::create_dir_all(&dir).unwrap();
                match family {
                    "ascii" => AsciiStore::build(&dir, docs.iter().map(|d| d.as_slice())).unwrap(),
                    "blocked" => BlockedStore::build(
                        &dir,
                        docs.iter().map(|d| d.as_slice()),
                        BlockCodec::Zlite(rlz_repro::zlite::Level::Default),
                        1024,
                        1,
                    )
                    .unwrap(),
                    "rlz" => {
                        let all: Vec<u8> = docs.concat();
                        let dict = Dictionary::sample(&all, 1024, 128, SampleStrategy::Evenly);
                        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
                        RlzStoreBuilder::new(dict, PairCoding::ZV)
                            .build(&dir, &slices)
                            .unwrap();
                    }
                    _ => unreachable!(),
                }
                (family, (dir, docs.len()))
            })
            .collect()
    });
    &stores.iter().find(|(f, _)| *f == family).unwrap().1
}

/// Opens whatever is at `dir` as `family` and drains every access path:
/// open, stats, every get, a batch, and a scrub. Any outcome is fine —
/// except a panic.
fn open_and_drain(family: &str, dir: &Path, num_docs: usize) {
    let ids: Vec<u32> = (0..num_docs as u32).collect();
    match family {
        "ascii" => {
            if let Ok(store) = AsciiStore::open(dir) {
                let _ = store.stats();
                for id in 0..num_docs {
                    let _ = store.get(id);
                }
                let _ = store.get_batch_results(&ids, 2);
                let _ = store.scrub();
            }
        }
        "blocked" => {
            if let Ok(store) = BlockedStore::open(dir) {
                let _ = store.stats();
                for id in 0..num_docs {
                    let _ = store.get(id);
                }
                let _ = store.get_batch_results(&ids, 2);
                let _ = store.scrub();
            }
        }
        "rlz" => {
            if let Ok(store) = RlzStore::open(dir) {
                let _ = store.stats();
                for id in 0..num_docs {
                    let _ = store.get(id);
                }
                let _ = store.get_batch_results(&ids, 2);
                let _ = store.scrub();
            }
        }
        _ => unreachable!(),
    }
}

/// Copies the pristine store, applies `damage` to the file picked by
/// `file_pick`, and drains it. The scratch directory name carries the case
/// inputs so failures identify themselves.
fn damage_case(
    family: &'static str,
    file_pick: usize,
    case_tag: &str,
    damage: impl FnOnce(&mut Vec<u8>),
) {
    let (src, num_docs) = tiny_store(family);
    let mut files: Vec<PathBuf> = std::fs::read_dir(src)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    let target = &files[file_pick % files.len()];
    let scratch = std::env::temp_dir().join(format!(
        "rlz-faults-case-{family}-{case_tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    for f in &files {
        std::fs::copy(f, scratch.join(f.file_name().unwrap())).unwrap();
    }
    let damaged = scratch.join(target.file_name().unwrap());
    let mut bytes = std::fs::read(&damaged).unwrap();
    damage(&mut bytes);
    std::fs::write(&damaged, &bytes).unwrap();
    open_and_drain(family, &scratch, *num_docs);
    let _ = std::fs::remove_dir_all(&scratch);
}

proptest! {
    #[test]
    fn bit_flipped_files_never_panic(
        file_pick in 0usize..16,
        frac in 0u16..=u16::MAX,
        mask in 1u8..=255,
    ) {
        for family in FAMILIES {
            damage_case(family, file_pick, "flip", |bytes| {
                if !bytes.is_empty() {
                    let at = (frac as usize * (bytes.len() - 1)) / u16::MAX as usize;
                    bytes[at] ^= mask;
                }
            });
        }
    }

    #[test]
    fn truncated_files_never_panic(file_pick in 0usize..16, frac in 0u16..=u16::MAX) {
        for family in FAMILIES {
            damage_case(family, file_pick, "trunc", |bytes| {
                let keep = (frac as usize * bytes.len()) / (u16::MAX as usize + 1);
                bytes.truncate(keep);
            });
        }
    }

    #[test]
    fn zero_extended_files_never_panic(file_pick in 0usize..16, extra in 1usize..256) {
        for family in FAMILIES {
            damage_case(family, file_pick, "zext", |bytes| {
                bytes.extend(std::iter::repeat_n(0u8, extra));
            });
        }
    }
}
