//! Concurrency stress: every store family is opened ONCE and hammered from
//! many threads through `&self`, asserting that every document round-trips
//! byte-identical under contention. This is the contract the shared-reader
//! refactor introduces: one resident store, N parallel readers, no locks on
//! the RLZ/ascii read path.

use rlz_repro::corpus::{access, generate_web, WebConfig};
use rlz_repro::rlz::{Dictionary, PairCoding, SampleStrategy};
use rlz_repro::store::{AsciiStore, BlockCodec, BlockedStore, DocStore, RlzStore, RlzStoreBuilder};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("rlz-conc-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn crawl() -> &'static rlz_repro::corpus::Collection {
    use std::sync::OnceLock;
    static CRAWL: OnceLock<rlz_repro::corpus::Collection> = OnceLock::new();
    CRAWL.get_or_init(|| generate_web(&WebConfig::gov2(2 * 1024 * 1024, 0xC0C0)))
}

const THREADS: usize = 8;

/// Opens the store once, then replays a skewed query-log shard per thread
/// plus a full sweep, comparing every byte against the source documents.
fn hammer(store: &dyn DocStore, docs: &[&[u8]]) {
    assert_eq!(store.num_docs(), docs.len());
    let requests = access::query_log(docs.len(), THREADS * 400, 20, 0xBEEF);
    let shards = access::shards(&requests, THREADS);
    std::thread::scope(|scope| {
        for (t, shard) in shards.iter().enumerate() {
            scope.spawn(move || {
                let mut buf = Vec::new();
                // Skewed shard: contended hot documents.
                for &id in shard {
                    buf.clear();
                    store.get_into(id as usize, &mut buf).unwrap();
                    assert_eq!(&buf[..], docs[id as usize], "doc {id} (thread {t})");
                }
                // Full sweep from a different starting point per thread:
                // every document is read by every thread.
                for i in 0..docs.len() {
                    let id = (i + t * docs.len() / THREADS) % docs.len();
                    buf.clear();
                    store.get_into(id, &mut buf).unwrap();
                    assert_eq!(&buf[..], docs[id], "doc {id} (thread {t} sweep)");
                }
            });
        }
    });
}

#[test]
fn ascii_store_serves_concurrent_readers() {
    let c = crawl();
    let docs: Vec<&[u8]> = c.iter_docs().collect();
    let dir = TempDir::new("ascii");
    AsciiStore::build(dir.path(), docs.iter().copied()).unwrap();
    hammer(&AsciiStore::open(dir.path()).unwrap(), &docs);
    hammer(&AsciiStore::open_resident(dir.path()).unwrap(), &docs);
}

#[test]
fn blocked_store_serves_concurrent_readers() {
    let c = crawl();
    let docs: Vec<&[u8]> = c.iter_docs().collect();
    let dir = TempDir::new("blocked");
    BlockedStore::build(
        dir.path(),
        docs.iter().copied(),
        BlockCodec::Zlite(rlz_repro::zlite::Level::Fast),
        64 * 1024,
        THREADS,
    )
    .unwrap();
    // Without cache: every get decompresses privately.
    hammer(&BlockedStore::open(dir.path()).unwrap(), &docs);
    // With the shared sharded LRU: threads race on insert/evict.
    let mut cached = BlockedStore::open(dir.path()).unwrap();
    cached.set_block_cache_capacity(8);
    hammer(&cached, &docs);
}

#[test]
fn rlz_store_serves_concurrent_readers() {
    let c = crawl();
    let docs: Vec<&[u8]> = c.iter_docs().collect();
    let dict = Dictionary::sample(&c.data, c.data.len() / 100, 1024, SampleStrategy::Evenly);
    let dir = TempDir::new("rlz");
    RlzStoreBuilder::new(dict, PairCoding::ZV)
        .threads(THREADS)
        .build(dir.path(), &docs)
        .unwrap();
    hammer(&RlzStore::open(dir.path()).unwrap(), &docs);
    hammer(&RlzStore::open_resident(dir.path()).unwrap(), &docs);
}

#[test]
fn clones_are_cheap_per_thread_handles() {
    let c = crawl();
    let docs: Vec<&[u8]> = c.iter_docs().collect();
    let dict = Dictionary::sample(&c.data, c.data.len() / 100, 1024, SampleStrategy::Evenly);
    let dir = TempDir::new("rlz-clones");
    RlzStoreBuilder::new(dict, PairCoding::UV)
        .threads(THREADS)
        .build(dir.path(), &docs)
        .unwrap();
    let store = RlzStore::open(dir.path()).unwrap();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let handle = store.clone(); // Arc bumps, no dictionary copy
            let docs = &docs;
            scope.spawn(move || {
                let mut buf = Vec::new();
                for i in (t..docs.len()).step_by(THREADS) {
                    buf.clear();
                    handle.get_into(i, &mut buf).unwrap();
                    assert_eq!(&buf[..], docs[i]);
                }
            });
        }
    });
}

#[test]
fn get_batch_round_trips_across_store_families() {
    let c = crawl();
    let docs: Vec<&[u8]> = c.iter_docs().collect();
    let ids: Vec<u32> = access::query_log(docs.len(), 2000, 20, 0xF00D);

    let ascii_dir = TempDir::new("batch-ascii");
    AsciiStore::build(ascii_dir.path(), docs.iter().copied()).unwrap();
    let zl_dir = TempDir::new("batch-zl");
    BlockedStore::build(
        zl_dir.path(),
        docs.iter().copied(),
        BlockCodec::Zlite(rlz_repro::zlite::Level::Fast),
        32 * 1024,
        THREADS,
    )
    .unwrap();
    let rlz_dir = TempDir::new("batch-rlz");
    let dict = Dictionary::sample(&c.data, c.data.len() / 100, 1024, SampleStrategy::Evenly);
    RlzStoreBuilder::new(dict, PairCoding::ZZ)
        .threads(THREADS)
        .build(rlz_dir.path(), &docs)
        .unwrap();

    let stores: Vec<Box<dyn DocStore>> = vec![
        Box::new(AsciiStore::open(ascii_dir.path()).unwrap()),
        Box::new(BlockedStore::open(zl_dir.path()).unwrap()),
        Box::new(RlzStore::open(rlz_dir.path()).unwrap()),
    ];
    for store in &stores {
        for threads in [1, 3, THREADS] {
            let batch = store.get_batch(&ids, threads).unwrap();
            assert_eq!(batch.len(), ids.len());
            for (got, &id) in batch.iter().zip(&ids) {
                assert_eq!(got, docs[id as usize], "doc {id} at {threads} threads");
            }
        }
    }
}

/// Builds one store of each family over the shared crawl and runs `check`
/// on it (file-backed variants; the seek-aware batch path is aimed at
/// exactly these).
fn for_each_store_family(check: impl Fn(&str, &dyn DocStore)) {
    let c = crawl();
    let docs: Vec<&[u8]> = c.iter_docs().collect();

    let ascii_dir = TempDir::new("fam-ascii");
    AsciiStore::build(ascii_dir.path(), docs.iter().copied()).unwrap();
    check("ascii", &AsciiStore::open(ascii_dir.path()).unwrap());

    let zl_dir = TempDir::new("fam-zl");
    BlockedStore::build(
        zl_dir.path(),
        docs.iter().copied(),
        BlockCodec::Zlite(rlz_repro::zlite::Level::Fast),
        16 * 1024,
        THREADS,
    )
    .unwrap();
    check("blocked", &BlockedStore::open(zl_dir.path()).unwrap());
    let mut cached = BlockedStore::open(zl_dir.path()).unwrap();
    cached.set_block_cache_capacity(4);
    check("blocked+cache", &cached);

    let rlz_dir = TempDir::new("fam-rlz");
    let dict = Dictionary::sample(&c.data, c.data.len() / 100, 1024, SampleStrategy::Evenly);
    RlzStoreBuilder::new(dict, PairCoding::UV)
        .threads(THREADS)
        .build(rlz_dir.path(), &docs)
        .unwrap();
    check("rlz", &RlzStore::open(rlz_dir.path()).unwrap());
}

/// Seek-ordered + coalesced batches must be byte-identical to sequential
/// gets — in request order — including heavy duplication and ids that hit
/// every corner of the block layout.
#[test]
fn get_batch_ordering_and_coalescing_match_sequential_gets() {
    let c = crawl();
    let n = c.num_docs();
    // Shuffled-ish ids with duplicates: reversed stride walk interleaved
    // with a hot id repeated throughout, plus boundary ids.
    let mut ids: Vec<u32> = Vec::new();
    for i in 0..(2 * n) {
        ids.push(((i * 7919) % n) as u32);
        if i % 3 == 0 {
            ids.push((n / 2) as u32); // duplicate hot document
        }
    }
    ids.push(0);
    ids.push((n - 1) as u32);

    for_each_store_family(|family, store| {
        let sequential: Vec<Vec<u8>> = ids
            .iter()
            .map(|&id| store.get(id as usize).unwrap())
            .collect();
        for threads in [1, 2, THREADS] {
            let batch = store.get_batch(&ids, threads).unwrap();
            assert_eq!(batch, sequential, "{family} at {threads} threads");
            let unordered = rlz_repro::store::get_batch_unordered(store, &ids, threads).unwrap();
            assert_eq!(
                unordered, sequential,
                "{family} unordered at {threads} threads"
            );
        }
    });
}

/// An out-of-range id anywhere in a batch fails the whole batch on every
/// store family and at every thread count.
#[test]
fn get_batch_rejects_out_of_range_ids() {
    let c = crawl();
    let n = c.num_docs() as u32;
    for_each_store_family(|family, store| {
        for threads in [1, THREADS] {
            for bad_ids in [
                vec![n],                 // lone out-of-range
                vec![0, 1, n, 2],        // mid-batch
                vec![n + 1000, 0],       // far out of range, first
                vec![0, 1, 2, u32::MAX], // extreme id
            ] {
                assert!(
                    store.get_batch(&bad_ids, threads).is_err(),
                    "{family} accepted {bad_ids:?} at {threads} threads"
                );
            }
        }
    });
}

/// Empty batches are valid and return nothing.
#[test]
fn get_batch_empty_is_ok() {
    for_each_store_family(|family, store| {
        assert!(
            store.get_batch(&[], THREADS).unwrap().is_empty(),
            "{family}"
        );
    });
}
