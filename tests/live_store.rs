//! Epoch-swap consistency for the live store: a reader that clones a
//! snapshot at **any** point in a put/append/delete/seal schedule must
//! keep seeing exactly the state from its epoch — no doc vanishing
//! mid-batch while the writer seals the tail into a segment and swaps
//! the published snapshot underneath it.
//!
//! Two angles: a proptest drives randomized single-threaded schedules
//! and pins snapshots at random epochs, diffing each against a shadow
//! model of the state at capture time; a threaded stress test hammers
//! `snapshot()` from reader threads while the writer auto-seals, so the
//! capture itself races the swap.

use proptest::prelude::*;
use rlz_repro::rlz::{Dictionary, PairCoding, SampleStrategy};
use rlz_repro::store::{DocStore, FsyncPolicy, LiveConfig, LiveStore, WriteStore};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let p =
            std::env::temp_dir().join(format!("rlz-live-it-{name}-{}-{seq}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic document content: the id and salt pin the bytes, the
/// repeated tail gives the factorizer something to bite on.
fn doc_bytes(id: u32, salt: u64) -> Vec<u8> {
    let mut doc = format!("<doc id={id} salt={salt:016x}>").into_bytes();
    for k in 0..(id % 7 + 2) {
        doc.extend_from_slice(format!("<p>shared live boilerplate {k}</p>").as_bytes());
    }
    doc.extend_from_slice(b"</doc>");
    doc
}

fn create_store(dir: &std::path::Path, seal_bytes: u64) -> LiveStore {
    let seed: Vec<u8> = (0..64u32).flat_map(|i| doc_bytes(i, 0)).collect();
    let dict = Dictionary::sample(&seed, 2048, 256, SampleStrategy::Evenly);
    LiveStore::create(
        dir,
        dict,
        PairCoding::ZV,
        LiveConfig {
            fsync: FsyncPolicy::Never,
            seal_bytes,
            wal_soft_bytes: u64::MAX,
            wal_max_bytes: u64::MAX,
        },
    )
    .unwrap()
}

proptest! {
    /// Randomized schedules of put / append / delete / seal, with
    /// snapshots pinned at random epochs. After the run (which ends in
    /// one final seal, so every pinned epoch has been swapped past),
    /// each snapshot must still serve exactly its epoch's state.
    #[test]
    fn snapshot_pinned_at_any_epoch_survives_later_seals(
        n_ops in 1usize..32,
        op_mask in any::<u64>(),
        seal_mask in any::<u64>(),
        snap_mask in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let dir = TempDir::new("prop-epoch");
        let store = create_store(dir.path(), u64::MAX);
        // Shadow model: index = doc id, None = deleted.
        let mut model: Vec<Option<Vec<u8>>> = Vec::new();
        let mut pinned: Vec<(rlz_repro::store::LiveSnapshot, Vec<Option<Vec<u8>>>)> = Vec::new();
        for i in 0..n_ops {
            let bit = |mask: u64| mask >> (i % 64) & 1 == 1;
            let live_ids: Vec<u32> = (0..model.len() as u32)
                .filter(|&id| model[id as usize].is_some())
                .collect();
            match (bit(op_mask), bit(op_mask.rotate_left(17)), live_ids.len()) {
                // Delete the oldest live doc.
                (true, _, 1..) => {
                    let id = live_ids[0];
                    store.delete(id).unwrap();
                    model[id as usize] = None;
                }
                // Append to the newest live doc.
                (false, true, 1..) => {
                    let id = *live_ids.last().unwrap();
                    let tail = format!("<appended op={i}/>").into_bytes();
                    store.append(id, &tail).unwrap();
                    model[id as usize].as_mut().unwrap().extend_from_slice(&tail);
                }
                _ => {
                    let doc = doc_bytes(model.len() as u32, salt);
                    let id = store.put(&doc).unwrap();
                    prop_assert_eq!(id as usize, model.len());
                    model.push(Some(doc));
                }
            }
            if bit(seal_mask) {
                store.seal().unwrap();
            }
            if bit(snap_mask) {
                pinned.push((store.snapshot(), model.clone()));
            }
        }
        // Swap one more epoch past every pinned snapshot.
        store.put(&doc_bytes(model.len() as u32, salt)).unwrap();
        store.seal().unwrap();

        for (snap, state) in &pinned {
            prop_assert_eq!(snap.num_docs(), state.len());
            let live: Vec<u32> = (0..state.len() as u32)
                .filter(|&id| state[id as usize].is_some())
                .collect();
            // Individual reads: present docs byte-identical, deleted gone.
            for (id, want) in state.iter().enumerate() {
                match want {
                    Some(bytes) => prop_assert_eq!(&snap.get(id).unwrap(), bytes),
                    None => prop_assert!(snap.get(id).is_err()),
                }
            }
            // One batch over every live id — the "no doc vanishes
            // mid-batch" clause, exercised through the batch path.
            if !live.is_empty() {
                let got = snap.get_batch(&live, 2).unwrap();
                for (slot, &id) in got.iter().zip(&live) {
                    prop_assert_eq!(slot, state[id as usize].as_ref().unwrap());
                }
            }
        }
    }
}

/// Reader threads race `snapshot()` against a writer that auto-seals
/// every few KiB: every observed prefix must be fully readable and
/// byte-identical, however the capture interleaves with the swap.
#[test]
fn concurrent_readers_see_full_prefixes_across_auto_seals() {
    const DOCS: u32 = 300;
    const SALT: u64 = 0xC0FFEE;
    let dir = TempDir::new("race-seal");
    let store = create_store(dir.path(), 4 << 10);
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let reader_store = &store;
        let done_flag = &done;
        let mut readers = Vec::new();
        for _ in 0..2 {
            readers.push(scope.spawn(move || {
                let mut batches = 0u64;
                while !done_flag.load(std::sync::atomic::Ordering::Acquire) {
                    let snap = reader_store.snapshot();
                    let n = snap.num_docs() as u32;
                    if n == 0 {
                        continue;
                    }
                    let ids: Vec<u32> = (0..n).collect();
                    let got = snap.get_batch(&ids, 1).expect("pinned prefix readable");
                    for (id, doc) in got.iter().enumerate() {
                        assert_eq!(
                            doc,
                            &doc_bytes(id as u32, SALT),
                            "doc {id} changed under a pinned snapshot"
                        );
                    }
                    batches += 1;
                }
                batches
            }));
        }
        for id in 0..DOCS {
            assert_eq!(store.put(&doc_bytes(id, SALT)).unwrap(), id);
        }
        done.store(true, std::sync::atomic::Ordering::Release);
        for r in readers {
            assert!(r.join().unwrap() > 0, "readers must observe some epochs");
        }
    });
    // The writer auto-sealed along the way; everything must have landed.
    assert_eq!(store.num_docs() as u32, DOCS);
    let ids: Vec<u32> = (0..DOCS).collect();
    let got = store.get_batch(&ids, 2).unwrap();
    for (id, doc) in got.iter().enumerate() {
        assert_eq!(doc, &doc_bytes(id as u32, SALT));
    }
}
