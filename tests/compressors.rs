//! Cross-codec properties the evaluation depends on: the lzma-class codec
//! must out-compress the zlib-class codec on redundancy beyond a 32 KB
//! window, and decode slower; both must round-trip the synthetic corpora.

use rlz_repro::corpus::{generate_web, CollectionStyle, WebConfig};
use rlz_repro::{lzlite, zlite};

#[test]
fn lzlite_beats_zlite_on_cross_window_redundancy() {
    // Same-site boilerplate recurs far apart in crawl order; only the
    // large-window codec can reach it.
    let c = generate_web(&WebConfig::gov2(3 * 1024 * 1024, 11));
    let z = zlite::compress(&c.data, zlite::Level::Best).len();
    let lz = lzlite::compress(&c.data, lzlite::Level::Default).len();
    assert!(
        (lz as f64) < z as f64 * 0.9,
        "lzlite {lz} should clearly beat zlite {z}"
    );
}

#[test]
fn both_roundtrip_both_corpus_styles() {
    for style in [CollectionStyle::Gov2, CollectionStyle::Wikipedia] {
        let cfg = WebConfig {
            style,
            ..WebConfig::gov2(512 * 1024, 3)
        };
        let c = generate_web(&cfg);
        let z = zlite::compress(&c.data, zlite::Level::Default);
        assert_eq!(zlite::decompress(&z).unwrap(), c.data, "{style:?} zlite");
        let lz = lzlite::compress(&c.data, lzlite::Level::Fast);
        assert_eq!(lzlite::decompress(&lz).unwrap(), c.data, "{style:?} lzlite");
    }
}

#[test]
fn lzlite_decodes_slower_than_zlite() {
    // The speed ordering behind Tables 6/7/9: lzma-class decode is the
    // slowest. Measured coarsely (3x margin demanded is far below the real
    // gap, so this is not flaky).
    let c = generate_web(&WebConfig::gov2(2 * 1024 * 1024, 5));
    let z = zlite::compress(&c.data, zlite::Level::Default);
    let lz = lzlite::compress(&c.data, lzlite::Level::Default);

    let time = |f: &dyn Fn() -> usize| {
        let t = std::time::Instant::now();
        let n = f();
        assert_eq!(n, c.data.len());
        t.elapsed()
    };
    // Warm up, then measure best-of-3 to shed scheduler noise.
    let zt = (0..3)
        .map(|_| time(&|| zlite::decompress(&z).unwrap().len()))
        .min()
        .unwrap();
    let lzt = (0..3)
        .map(|_| time(&|| lzlite::decompress(&lz).unwrap().len()))
        .min()
        .unwrap();
    assert!(
        lzt > zt,
        "lzlite decode ({lzt:?}) should be slower than zlite ({zt:?})"
    );
}

#[test]
fn genome_collection_compresses_against_reference_dictionary() {
    use rlz_repro::corpus::genome::{self, GenomeConfig};
    use rlz_repro::rlz::{Dictionary, PairCoding, RlzCompressor};

    let cfg = GenomeConfig {
        individuals: 8,
        reference_len: 60_000,
        snp_rate: 0.001,
        indel_rate: 0.0001,
        seed: 77,
    };
    let reference = genome::reference(&cfg);
    let c = genome::generate(&cfg);
    // Dictionary = the reference genome (the SPIRE'10 RLZ setting).
    let rlz = RlzCompressor::new(Dictionary::from_bytes(reference), PairCoding::ZV);
    let mut total_enc = 0usize;
    for doc in c.iter_docs() {
        let enc = rlz.compress(doc);
        assert_eq!(rlz.decompress(&enc).unwrap(), doc);
        total_enc += enc.len();
    }
    let ratio = total_enc as f64 / c.total_bytes() as f64;
    assert!(
        ratio < 0.05,
        "resequenced genomes must compress below 5% against the reference, got {:.2}%",
        ratio * 100.0
    );
}
