//! Property test pinning the exposition-format emitter and parser to each
//! other: any scrape built from generated names, labels (including every
//! escapable character), and values must survive
//! `Scrape::parse(scrape.to_text())` byte-for-semantics.

use proptest::prelude::*;
use rlz_bench::promtext::{Sample, Scrape};

/// Metric/label name from a generated seed: always starts with a letter,
/// body drawn from the legal name alphabet.
fn name_from(seed: &[u8]) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz_";
    const BODY: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let mut out = String::new();
    out.push(FIRST[seed.first().copied().unwrap_or(0) as usize % FIRST.len()] as char);
    for &b in seed.iter().skip(1) {
        out.push(BODY[b as usize % BODY.len()] as char);
    }
    out
}

/// Label value from a generated seed: biased toward the characters the
/// escaper must handle (`\`, `"`, newline) plus unicode.
fn value_from(seed: &[u8]) -> String {
    const PALETTE: [&str; 12] = [
        "a", "B", "7", " ", ",", "{", "}", "=", "\\", "\"", "\n", "µ",
    ];
    seed.iter()
        .map(|&b| PALETTE[b as usize % PALETTE.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn emitted_scrapes_reparse_identically(
        specs in collection::vec(
            (
                collection::vec(any::<u8>(), 1..12),          // metric name seed
                collection::vec(
                    (collection::vec(any::<u8>(), 1..8),      // label name seed
                     collection::vec(any::<u8>(), 0..10)),    // label value seed
                    0..4,
                ),
                any::<u64>(),                                  // value bits
                any::<bool>(),                                 // +Inf marker
            ),
            0..20,
        ),
    ) {
        let samples: Vec<Sample> = specs
            .iter()
            .map(|(name_seed, labels, raw, inf)| {
                let mut labels: Vec<(String, String)> = labels
                    .iter()
                    .map(|(k, v)| (name_from(k), value_from(v)))
                    .collect();
                // Duplicate label names would be ambiguous to compare
                // back; keep the first of each.
                labels.sort_by(|a, b| a.0.cmp(&b.0));
                labels.dedup_by(|a, b| a.0 == b.0);
                let value = if *inf {
                    f64::INFINITY
                } else {
                    // Finite values with a fractional part; `{}` Display
                    // is shortest-roundtrip so parse() recovers the bits.
                    (*raw >> 12) as f64 / 1024.0
                };
                Sample {
                    name: name_from(name_seed),
                    labels,
                    value,
                }
            })
            .collect();
        let scrape = Scrape { samples };
        let reparsed = Scrape::parse(&scrape.to_text()).unwrap();
        prop_assert_eq!(reparsed, scrape);
    }
}
