//! Criterion micro-benchmarks for the core primitives: suffix array
//! construction, factorization, factor-stream codecs, the two
//! general-purpose compressors, and store retrieval.
//!
//! `cargo bench --workspace` — complements the table harness binaries,
//! which regenerate the paper's tables at collection scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rlz_core::{Dictionary, PairCoding, RlzCompressor, SampleStrategy};
use rlz_corpus::{generate_web, WebConfig};
use std::hint::black_box;

fn corpus_1m() -> rlz_corpus::Collection {
    generate_web(&WebConfig::gov2(1 << 20, 0xBE7C))
}

fn bench_suffix_array(c: &mut Criterion) {
    let col = corpus_1m();
    let mut group = c.benchmark_group("suffix_array_build");
    for size in [64 * 1024, 256 * 1024] {
        let text = &col.data[..size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), text, |b, t| {
            b.iter(|| rlz_suffix::SuffixArray::build(black_box(t)));
        });
    }
    group.finish();
}

fn bench_factorize(c: &mut Criterion) {
    let col = corpus_1m();
    let dict = Dictionary::sample(&col.data, 64 * 1024, 1024, SampleStrategy::Evenly);
    let doc = col.doc(3);
    let mut group = c.benchmark_group("factorize");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.bench_function("qgram_indexed", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            rlz_core::factorize(&dict, black_box(doc), &mut out);
        });
    });
    group.bench_function("plain_refine", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            rlz_core::factorize_plain(&dict, black_box(doc), &mut out);
        });
    });
    group.finish();
}

fn bench_pair_codings(c: &mut Criterion) {
    let col = corpus_1m();
    let dict = Dictionary::sample(&col.data, 64 * 1024, 1024, SampleStrategy::Evenly);
    let doc = col.doc(1);
    let mut group = c.benchmark_group("rlz_decode_doc");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    for coding in PairCoding::PAPER_SET {
        let rlz = RlzCompressor::new(dict.clone(), coding);
        let enc = rlz.compress(doc);
        group.bench_with_input(BenchmarkId::from_parameter(coding.name()), &enc, |b, e| {
            let mut out = Vec::with_capacity(doc.len());
            b.iter(|| {
                out.clear();
                rlz.decompress_into(black_box(e), &mut out).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_int_codecs(c: &mut Criterion) {
    let values: Vec<u32> = (0..10_000u32)
        .map(|i| i.wrapping_mul(2654435761) % 100_000)
        .collect();
    let mut group = c.benchmark_group("int_codecs_decode");
    group.throughput(Throughput::Elements(values.len() as u64));
    for codec in rlz_codecs::all_codecs() {
        let enc = codec.encode_to_vec(&values);
        group.bench_with_input(BenchmarkId::from_parameter(codec.name()), &enc, |b, e| {
            let mut out = Vec::with_capacity(values.len());
            b.iter(|| {
                out.clear();
                codec.decode(black_box(e), values.len(), &mut out).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_general_codecs(c: &mut Criterion) {
    let col = corpus_1m();
    let data = &col.data[..512 * 1024];
    let mut group = c.benchmark_group("general_compressors");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    group.bench_function("zlite_compress_default", |b| {
        b.iter(|| rlz_zlite::compress(black_box(data), rlz_zlite::Level::Default));
    });
    group.bench_function("lzlite_compress_default", |b| {
        b.iter(|| rlz_lzlite::compress(black_box(data), rlz_lzlite::Level::Default));
    });
    let z = rlz_zlite::compress(data, rlz_zlite::Level::Default);
    let lz = rlz_lzlite::compress(data, rlz_lzlite::Level::Default);
    group.bench_function("zlite_decompress", |b| {
        b.iter(|| rlz_zlite::decompress(black_box(&z)).unwrap());
    });
    group.bench_function("lzlite_decompress", |b| {
        b.iter(|| rlz_lzlite::decompress(black_box(&lz)).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_suffix_array,
    bench_factorize,
    bench_pair_codings,
    bench_int_codecs,
    bench_general_codecs
);
criterion_main!(benches);
