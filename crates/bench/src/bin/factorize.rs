//! Build-path throughput benchmark: RLZ factorization MB/s with the q-gram
//! prefix-index fast path vs the paper's plain matcher, across dictionary
//! sizes. Writes the machine-readable `BENCH_factorize.json` artifact.
//!
//! `cargo run --release -p rlz-bench --bin factorize [-- --size-mb N]`

use rlz_bench::{gov2_collection, ScaledConfig};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ScaledConfig::from_args(&args);
    let gov2 = gov2_collection(&cfg);
    let report = rlz_bench::tables::factorize_table(
        "Factorization throughput — q-gram indexed vs plain matcher",
        &gov2,
        &cfg,
    );
    report
        .write(Path::new("BENCH_factorize.json"))
        .expect("write BENCH_factorize.json");
}
