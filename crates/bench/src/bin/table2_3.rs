//! Tables 2 & 3: avg factor length + % unused dictionary bytes, for the
//! GOV2-like and Wikipedia-like corpora. `-- --corpus gov2|wiki|both`
use rlz_bench::{gov2_collection, wikipedia_collection, ScaledConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ScaledConfig::from_args(&args);
    let which = args
        .iter()
        .position(|a| a == "--corpus")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "both".into());
    if which == "gov2" || which == "both" {
        let c = gov2_collection(&cfg);
        rlz_bench::tables::factor_stats_table(
            "Table 2 — RLZ dictionary statistics, GOV2-like corpus",
            &c,
            &cfg,
        );
    }
    if which == "wiki" || which == "both" {
        let c = wikipedia_collection(&cfg);
        rlz_bench::tables::factor_stats_table(
            "Table 3 — RLZ dictionary statistics, Wikipedia-like corpus",
            &c,
            &cfg,
        );
    }
}
