//! Concurrent-retrieval benchmark (extension beyond the paper): docs/second
//! for every store family at 1/2/4/8 reader threads sharing one opened
//! store. Demonstrates that the `&self` read path scales with threads for
//! RLZ while blocked baselines stay decompression-bound.
//!
//! `cargo run --release -p rlz-bench --bin concurrent [-- --size-mb N]`

use rlz_bench::{gov2_collection, ScaledConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ScaledConfig::from_args(&args);
    let gov2 = gov2_collection(&cfg);
    rlz_bench::tables::concurrent_retrieval_table(
        &format!(
            "Concurrent retrieval — GOV2-like corpus ({} MiB)",
            cfg.collection_bytes >> 20
        ),
        &gov2,
        &cfg,
    );
}
