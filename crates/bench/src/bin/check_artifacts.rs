//! `check_artifacts` — schema validator and trend reporter for the
//! machine-readable `BENCH_*.json` benchmark artifacts.
//!
//! ```text
//! check_artifacts [--compare PREV_DIR] [FILES...]
//! ```
//!
//! With no files, validates every `BENCH_*.json` in the current directory.
//! Validation failures exit nonzero; CI runs this in place of any ad-hoc
//! python, and local runs use the exact same binary.
//!
//! `--compare PREV_DIR` additionally prints a before/after table against
//! artifacts of the same name in `PREV_DIR` (e.g. restored from the
//! previous CI run). The trend is informational only — shared-runner noise
//! makes hard thresholds useless — so comparison never affects the exit
//! code.

use rlz_bench::json::{self, Value};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Per-row numeric measures worth trending, by field name.
const MEASURES: [&str; 5] = ["mb_per_s", "docs_per_s", "p50_us", "p95_us", "p99_us"];

fn fail(file: &Path, what: &str) -> String {
    format!("{}: {what}", file.display())
}

fn load(file: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(file).map_err(|e| fail(file, &e.to_string()))?;
    json::parse(&text).map_err(|e| fail(file, &e))
}

/// Generic shape shared by every artifact: `bench` name, schema version 1,
/// and a non-empty `rows` array of objects. Returns (bench, rows).
fn check_shape<'v>(file: &Path, v: &'v Value) -> Result<(String, &'v [Value]), String> {
    let bench = v
        .get("bench")
        .and_then(Value::as_str)
        .ok_or_else(|| fail(file, "missing string field \"bench\""))?
        .to_string();
    match v.get("schema_version").and_then(Value::as_f64) {
        Some(1.0) => {}
        other => {
            return Err(fail(
                file,
                &format!("schema_version must be 1, got {other:?}"),
            ))
        }
    }
    let rows = v
        .get("rows")
        .and_then(Value::as_arr)
        .ok_or_else(|| fail(file, "missing array field \"rows\""))?;
    if rows.is_empty() {
        return Err(fail(file, "no measurement rows"));
    }
    for (i, row) in rows.iter().enumerate() {
        if !matches!(row, Value::Obj(_)) {
            return Err(fail(file, &format!("row {i} is not an object")));
        }
    }
    Ok((bench, rows))
}

fn num_field(file: &Path, row: &Value, i: usize, key: &str) -> Result<f64, String> {
    row.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| fail(file, &format!("row {i}: missing numeric field {key:?}")))
}

fn nonneg(file: &Path, row: &Value, i: usize, key: &str) -> Result<f64, String> {
    let v = num_field(file, row, i, key)?;
    if v < 0.0 {
        return Err(fail(file, &format!("row {i}: {key} is negative ({v})")));
    }
    Ok(v)
}

fn str_set(rows: &[Value], key: &str) -> Vec<String> {
    let mut values: Vec<String> = rows
        .iter()
        .filter_map(|r| r.get(key).and_then(Value::as_str).map(str::to_string))
        .collect();
    values.sort();
    values.dedup();
    values
}

/// Bench-specific schema checks, keyed by the artifact's `bench` field.
fn check_bench(file: &Path, bench: &str, rows: &[Value]) -> Result<(), String> {
    match bench {
        "factorize" | "batch" | "decode" => {
            for (i, row) in rows.iter().enumerate() {
                nonneg(file, row, i, "corpus_bytes")?;
                nonneg(file, row, i, "mb_per_s")?;
            }
            if bench == "decode" {
                let pipelines = str_set(rows, "pipeline");
                if pipelines != ["fused", "two-step"] {
                    return Err(fail(file, &format!("pipelines {pipelines:?}")));
                }
                // The full matrix: paper-era codings plus the entropy-coded
                // (F*) and fast-literal (L*) families.
                let codings = str_set(rows, "coding");
                if codings != ["FF", "FV", "LL", "LV", "UV", "UZ", "ZV", "ZZ"] {
                    return Err(fail(file, &format!("codings {codings:?}")));
                }
                for (i, row) in rows.iter().enumerate() {
                    let docs_per_s = nonneg(file, row, i, "docs_per_s")?;
                    if docs_per_s == 0.0 {
                        return Err(fail(file, &format!("row {i}: docs_per_s is zero")));
                    }
                    // Encoded share of the corpus (encoded streams + dict):
                    // must be a ratio, not a byte count.
                    let enc_pct = nonneg(file, row, i, "enc_pct")?;
                    if enc_pct == 0.0 || enc_pct > 100.0 {
                        return Err(fail(
                            file,
                            &format!("row {i}: enc_pct out of range ({enc_pct})"),
                        ));
                    }
                }
            }
        }
        "serve" => {
            // A single row is a schema regression: the serving matrix
            // sweeps at least two configurations (backends, pipeline
            // depths, cache on/off), so one row means the sweep was lost.
            if rows.len() < 2 {
                return Err(fail(
                    file,
                    "serve artifact has a single row; the matrix needs at least two \
                     (sweep backends / pipeline depths / cache on+off, or --append)",
                ));
            }
            for (i, row) in rows.iter().enumerate() {
                for key in ["connections", "batch", "pipeline", "requests"] {
                    let v = nonneg(file, row, i, key)?;
                    if v < 1.0 {
                        return Err(fail(file, &format!("row {i}: {key} must be >= 1")));
                    }
                }
                nonneg(file, row, i, "payload_bytes")?;
                let docs_per_s = nonneg(file, row, i, "docs_per_s")?;
                if docs_per_s == 0.0 {
                    return Err(fail(file, &format!("row {i}: docs_per_s is zero")));
                }
                nonneg(file, row, i, "mb_per_s")?;
                let p50 = nonneg(file, row, i, "p50_us")?;
                let p95 = nonneg(file, row, i, "p95_us")?;
                let p99 = nonneg(file, row, i, "p99_us")?;
                if !(p50 <= p95 && p95 <= p99) {
                    return Err(fail(
                        file,
                        &format!("row {i}: percentiles not monotone ({p50} / {p95} / {p99})"),
                    ));
                }
                for key in ["workload", "dist"] {
                    row.get(key)
                        .and_then(Value::as_str)
                        .ok_or_else(|| fail(file, &format!("row {i}: missing string {key:?}")))?;
                }
                let cache = row
                    .get("cache")
                    .and_then(Value::as_str)
                    .ok_or_else(|| fail(file, &format!("row {i}: missing string \"cache\"")))?;
                if !matches!(cache, "on" | "off") {
                    return Err(fail(file, &format!("row {i}: cache must be on/off")));
                }
                let backend = row
                    .get("backend")
                    .and_then(Value::as_str)
                    .ok_or_else(|| fail(file, &format!("row {i}: missing string \"backend\"")))?;
                if !matches!(backend, "epoll" | "portable") {
                    return Err(fail(
                        file,
                        &format!("row {i}: backend must be epoll/portable, got {backend:?}"),
                    ));
                }
                // Optional while older artifacts linger; when present it is
                // the instrumentation-ablation axis and must be on/off.
                if let Some(metrics) = row.get("metrics").and_then(Value::as_str) {
                    if !matches!(metrics, "on" | "off") {
                        return Err(fail(file, &format!("row {i}: metrics must be on/off")));
                    }
                }
            }
        }
        "faults" => {
            // Three row groups, all required: a run that lost its scrub,
            // integrity-tax or overload section is a harness regression.
            let ops = str_set(rows, "op");
            if ops != ["overload", "scrub", "warm_get"] {
                return Err(fail(file, &format!("ops {ops:?}")));
            }
            for (i, row) in rows.iter().enumerate() {
                let op = row
                    .get("op")
                    .and_then(Value::as_str)
                    .ok_or_else(|| fail(file, &format!("row {i}: missing string \"op\"")))?;
                match op {
                    "scrub" => {
                        nonneg(file, row, i, "payload_bytes")?;
                        if nonneg(file, row, i, "mb_per_s")? == 0.0 {
                            return Err(fail(file, &format!("row {i}: scrub rate is zero")));
                        }
                        let integrity = row.get("integrity").and_then(Value::as_str);
                        if integrity != Some("crc32c") {
                            return Err(fail(
                                file,
                                &format!("row {i}: scrubbed stores must report crc32c"),
                            ));
                        }
                    }
                    "warm_get" => {
                        if nonneg(file, row, i, "docs_per_s")? == 0.0 {
                            return Err(fail(file, &format!("row {i}: warm_get rate is zero")));
                        }
                        let integrity = row.get("integrity").and_then(Value::as_str);
                        if !matches!(integrity, Some("crc32c" | "none")) {
                            return Err(fail(
                                file,
                                &format!("row {i}: integrity must be crc32c/none"),
                            ));
                        }
                    }
                    "overload" => {
                        let shedding = row.get("shedding").and_then(Value::as_str);
                        let shed = nonneg(file, row, i, "shed")?;
                        match shedding {
                            Some("off") if shed != 0.0 => {
                                return Err(fail(
                                    file,
                                    &format!("row {i}: shed {shed} with shedding off"),
                                ))
                            }
                            Some("off" | "on") => {}
                            _ => {
                                return Err(fail(
                                    file,
                                    &format!("row {i}: shedding must be on/off"),
                                ))
                            }
                        }
                        let p50 = nonneg(file, row, i, "p50_us")?;
                        let p95 = nonneg(file, row, i, "p95_us")?;
                        let p99 = nonneg(file, row, i, "p99_us")?;
                        if !(p50 <= p95 && p95 <= p99) {
                            return Err(fail(
                                file,
                                &format!(
                                    "row {i}: percentiles not monotone ({p50} / {p95} / {p99})"
                                ),
                            ));
                        }
                    }
                    other => {
                        return Err(fail(file, &format!("row {i}: unknown op {other:?}")));
                    }
                }
            }
        }
        "ingest" => {
            // Three row groups, all required: acked-write rates per fsync
            // policy, recovery time against WAL length, and the read tail
            // with the write path idle vs under a concurrent writer.
            let ops = str_set(rows, "op");
            if ops != ["ingest", "mixed", "recovery"] {
                return Err(fail(file, &format!("ops {ops:?}")));
            }
            let fsyncs = str_set(rows, "fsync");
            if fsyncs != ["always", "interval", "never"] {
                return Err(fail(file, &format!("fsync policies {fsyncs:?}")));
            }
            let mut p99_baseline = None;
            let mut p99_ingest = None;
            for (i, row) in rows.iter().enumerate() {
                let op = row
                    .get("op")
                    .and_then(Value::as_str)
                    .ok_or_else(|| fail(file, &format!("row {i}: missing string \"op\"")))?;
                match op {
                    "ingest" => {
                        if nonneg(file, row, i, "docs_per_s")? == 0.0 {
                            return Err(fail(file, &format!("row {i}: ingest rate is zero")));
                        }
                        nonneg(file, row, i, "mb_per_s")?;
                    }
                    "recovery" => {
                        // The acceptance bar: recovery time is measured
                        // and tied to the WAL length it replayed.
                        if nonneg(file, row, i, "wal_frames")? == 0.0 {
                            return Err(fail(
                                file,
                                &format!("row {i}: recovery replayed an empty WAL"),
                            ));
                        }
                        nonneg(file, row, i, "wal_bytes")?;
                        if nonneg(file, row, i, "recover_ms")? == 0.0 {
                            return Err(fail(file, &format!("row {i}: recover_ms is zero")));
                        }
                    }
                    "mixed" => {
                        let p50 = nonneg(file, row, i, "p50_us")?;
                        let p95 = nonneg(file, row, i, "p95_us")?;
                        let p99 = nonneg(file, row, i, "p99_us")?;
                        if !(p50 <= p95 && p95 <= p99) {
                            return Err(fail(
                                file,
                                &format!(
                                    "row {i}: percentiles not monotone ({p50} / {p95} / {p99})"
                                ),
                            ));
                        }
                        match row.get("phase").and_then(Value::as_str) {
                            Some("baseline") => p99_baseline = Some(p99),
                            Some("ingest") => p99_ingest = Some(p99),
                            _ => {
                                return Err(fail(
                                    file,
                                    &format!("row {i}: phase must be baseline/ingest"),
                                ))
                            }
                        }
                    }
                    other => {
                        return Err(fail(file, &format!("row {i}: unknown op {other:?}")));
                    }
                }
            }
            // Read tail under trickle ingest stays within 2x of idle
            // (same small absolute floor as the bench, for loopback
            // microsecond noise).
            match (p99_baseline, p99_ingest) {
                (Some(base), Some(under)) => {
                    let allowed = (2.0 * base).max(base + 500.0);
                    if under > allowed {
                        return Err(fail(
                            file,
                            &format!(
                                "read p99 under ingest ({under} us) exceeds 2x idle ({base} us)"
                            ),
                        ));
                    }
                }
                _ => return Err(fail(file, "mixed rows must cover baseline and ingest")),
            }
        }
        "build" => {
            // Three row groups, all required: the generator-only RSS
            // floor, the batch (materialized) oracle, and the chunked
            // streaming pipeline's thread sweep.
            let modes = str_set(rows, "mode");
            if modes != ["baseline", "chunked", "serial"] {
                return Err(fail(file, &format!("modes {modes:?}")));
            }
            let mut chunked_rows = 0usize;
            for (i, row) in rows.iter().enumerate() {
                let mode = row
                    .get("mode")
                    .and_then(Value::as_str)
                    .ok_or_else(|| fail(file, &format!("row {i}: missing string \"mode\"")))?;
                if nonneg(file, row, i, "peak_rss_kb")? == 0.0 {
                    return Err(fail(file, &format!("row {i}: peak_rss_kb is zero")));
                }
                nonneg(file, row, i, "corpus_bytes")?;
                match mode {
                    "baseline" => {}
                    "serial" => {
                        if nonneg(file, row, i, "mb_per_s")? == 0.0 {
                            return Err(fail(file, &format!("row {i}: serial rate is zero")));
                        }
                    }
                    "chunked" => {
                        chunked_rows += 1;
                        if nonneg(file, row, i, "mb_per_s")? == 0.0 {
                            return Err(fail(file, &format!("row {i}: chunked rate is zero")));
                        }
                        if nonneg(file, row, i, "threads")? < 1.0 {
                            return Err(fail(file, &format!("row {i}: threads must be >= 1")));
                        }
                        // The PR's acceptance bar, re-checked from the
                        // artifact: byte-identity with the serial oracle...
                        if row.get("identical").and_then(Value::as_str) != Some("yes") {
                            return Err(fail(
                                file,
                                &format!("row {i}: chunked store not byte-identical to serial"),
                            ));
                        }
                        // ...and the memory bound: peak RSS within the
                        // O(dict + constant x block) budget, on a corpus
                        // at least 4x the in-flight block budget (so the
                        // bound is demonstrated, not vacuous).
                        let rss = nonneg(file, row, i, "peak_rss_kb")?;
                        let budget = nonneg(file, row, i, "rss_budget_kb")?;
                        if rss > budget {
                            return Err(fail(
                                file,
                                &format!("row {i}: peak RSS {rss} KiB over budget {budget} KiB"),
                            ));
                        }
                        let corpus = nonneg(file, row, i, "corpus_bytes")?;
                        let block_budget = nonneg(file, row, i, "block_budget_kb")? * 1024.0;
                        if corpus < 4.0 * block_budget {
                            return Err(fail(
                                file,
                                &format!(
                                    "row {i}: corpus ({corpus} B) under 4x the block budget \
                                     ({block_budget} B) — RSS bound not demonstrated"
                                ),
                            ));
                        }
                    }
                    other => {
                        return Err(fail(file, &format!("row {i}: unknown mode {other:?}")));
                    }
                }
            }
            if chunked_rows == 0 {
                return Err(fail(file, "no chunked rows"));
            }
        }
        other => {
            // Unknown artifacts still had the generic shape checked; say so
            // rather than silently passing.
            println!("  note: no bench-specific schema for {other:?}, generic checks only");
        }
    }
    Ok(())
}

fn validate(file: &Path) -> Result<(), String> {
    let v = load(file)?;
    let (bench, rows) = check_shape(file, &v)?;
    check_bench(file, &bench, rows)?;
    println!(
        "{} ok: bench {bench:?}, {} rows",
        file.display(),
        rows.len()
    );
    Ok(())
}

/// A row's identity: every field that is not a trended measure, rendered
/// `key=value` and joined. Rows match across runs when identities match.
fn row_identity(row: &Value) -> String {
    let Value::Obj(fields) = row else {
        return String::new();
    };
    fields
        .iter()
        .filter(|(k, _)| !MEASURES.contains(&k.as_str()))
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Prints the before/after trend for one artifact pair. Informational
/// only; never fails.
fn compare(file: &Path, prev_dir: &Path) {
    let name = file.file_name().map(Path::new).unwrap_or(file);
    let prev_file = prev_dir.join(name);
    if !prev_file.exists() {
        println!("  (no previous {} to compare against)", name.display());
        return;
    }
    let (Ok(curr), Ok(prev)) = (load(file), load(&prev_file)) else {
        println!("  (previous {} unreadable; skipping trend)", name.display());
        return;
    };
    let (Some(curr_rows), Some(prev_rows)) = (
        curr.get("rows").and_then(Value::as_arr),
        prev.get("rows").and_then(Value::as_arr),
    ) else {
        return;
    };
    println!("  trend vs previous run ({}):", name.display());
    let mut matched = 0usize;
    for row in curr_rows {
        let identity = row_identity(row);
        let Some(prev_row) = prev_rows.iter().find(|r| row_identity(r) == identity) else {
            continue;
        };
        for measure in MEASURES {
            let (Some(now), Some(before)) = (
                row.get(measure).and_then(Value::as_f64),
                prev_row.get(measure).and_then(Value::as_f64),
            ) else {
                continue;
            };
            if before == 0.0 {
                continue;
            }
            matched += 1;
            let delta = (now - before) / before * 100.0;
            let marker = if delta.abs() >= 10.0 {
                "  <-- note"
            } else {
                ""
            };
            println!("    {identity} {measure}: {before:.1} -> {now:.1} ({delta:+.1}%){marker}");
        }
    }
    if matched == 0 {
        println!("    (no matching rows between runs)");
    } else {
        println!(
            "    ({} measures compared; informational only — shared-runner noise \
             makes hard thresholds meaningless)",
            matched
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut compare_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--compare" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--compare needs a directory");
                    return ExitCode::from(2);
                };
                compare_dir = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                eprintln!("usage: check_artifacts [--compare PREV_DIR] [FILES...]");
                return ExitCode::from(2);
            }
            other => files.push(PathBuf::from(other)),
        }
        i += 1;
    }
    if files.is_empty() {
        // Default: every BENCH_*.json in the working directory.
        if let Ok(entries) = std::fs::read_dir(".") {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("BENCH_") && name.ends_with(".json") {
                    files.push(entry.path());
                }
            }
        }
        files.sort();
    }
    if files.is_empty() {
        eprintln!("check_artifacts: no BENCH_*.json artifacts found");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for file in &files {
        if let Err(e) = validate(file) {
            eprintln!("check_artifacts: FAIL {e}");
            failed = true;
        }
        if let Some(dir) = &compare_dir {
            compare(file, dir);
        }
    }
    // A benchmark that silently stops emitting its artifact is a
    // regression the trend table cannot see (it only walks current
    // files) — warn loudly instead of passing in silence.
    if let Some(dir) = &compare_dir {
        let current: Vec<String> = files
            .iter()
            .filter_map(|f| f.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        if let Ok(entries) = std::fs::read_dir(dir) {
            let mut missing: Vec<String> = entries
                .flatten()
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                .filter(|n| !current.iter().any(|c| c == n))
                .collect();
            missing.sort();
            for name in missing {
                eprintln!(
                    "check_artifacts: WARNING: {name} existed in the previous run \
                     ({}) but is missing from this one — did its benchmark stop \
                     emitting it?",
                    dir.display()
                );
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("check_artifacts: all {} artifact(s) valid", files.len());
        ExitCode::SUCCESS
    }
}
