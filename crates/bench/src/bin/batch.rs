//! Read-path batch benchmark: query-log batches served by the naive
//! request-order fan-out vs the seek-aware offset-ordered default vs
//! block-coalesced decoding, per store family. Writes the machine-readable
//! `BENCH_batch.json` artifact.
//!
//! `cargo run --release -p rlz-bench --bin batch [-- --size-mb N]`

use rlz_bench::{gov2_collection, ScaledConfig};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ScaledConfig::from_args(&args);
    let gov2 = gov2_collection(&cfg);
    let report = rlz_bench::tables::batch_table(
        "Batch retrieval — unordered vs offset-ordered vs coalesced",
        &gov2,
        &cfg,
    );
    report
        .write(Path::new("BENCH_batch.json"))
        .expect("write BENCH_batch.json");
}
