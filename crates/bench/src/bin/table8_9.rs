//! Tables 8 & 9: RLZ and baselines on the Wikipedia-like corpus.
//! `-- --which rlz|baselines|both`
use rlz_bench::{wikipedia_collection, ScaledConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ScaledConfig::from_args(&args);
    let which = args
        .iter()
        .position(|a| a == "--which")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "both".into());
    let c = wikipedia_collection(&cfg);
    if which == "rlz" || which == "both" {
        rlz_bench::tables::rlz_retrieval_table("Table 8 — RLZ on Wikipedia-like corpus", &c, &cfg);
    }
    if which == "baselines" || which == "both" {
        rlz_bench::tables::baseline_retrieval_table(
            "Table 9 — baselines on Wikipedia-like corpus",
            &c,
            &cfg,
        );
    }
}
