//! Table 10: prefix-dictionary sweep on the Wikipedia-like corpus (§3.6).
use rlz_bench::{wikipedia_collection, ScaledConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ScaledConfig::from_args(&args);
    let c = wikipedia_collection(&cfg);
    rlz_bench::tables::table10(&c, &cfg);
}
