//! Ablation: the paper's binary-search Refine vs a galloping variant, as
//! factorization (compression-side) throughput.
use rlz_bench::{gov2_collection, ScaledConfig};
use rlz_core::{Dictionary, SampleStrategy};
use rlz_suffix::Matcher;
use std::time::Instant;

#[derive(Clone, Copy)]
enum Strategy {
    Binary,
    Galloping,
    Indexed,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ScaledConfig::from_args(&args);
    if !args.iter().any(|a| a == "--size-mb") {
        cfg.collection_bytes = 8 << 20;
    }
    let c = gov2_collection(&cfg);
    println!(
        "Ablation — Refine search strategy, factorization throughput ({} MiB corpus)\n",
        cfg.collection_bytes >> 20
    );
    println!(
        "{:>10} {:>12} {:>14} {:>12}",
        "dict", "strategy", "MiB/s", "factors"
    );
    for dict_size in cfg.dict_sizes() {
        let dict = Dictionary::sample(&c.data, dict_size, cfg.sample_len, SampleStrategy::Evenly);
        let matcher = Matcher::new(dict.bytes(), dict.suffix_array());
        let index = dict.prefix_index();
        for (label, strategy) in [
            ("binary", Strategy::Binary),
            ("galloping", Strategy::Galloping),
            ("indexed", Strategy::Indexed),
        ] {
            let t = Instant::now();
            let mut factors = 0u64;
            for doc in c.iter_docs() {
                let mut i = 0usize;
                while i < doc.len() {
                    let (_, len) = match strategy {
                        Strategy::Binary => matcher.longest_match(&doc[i..]),
                        Strategy::Galloping => matcher.longest_match_galloping(&doc[i..]),
                        Strategy::Indexed => matcher.longest_match_indexed(index, &doc[i..]),
                    };
                    i += (len as usize).max(1);
                    factors += 1;
                }
            }
            let rate = c.total_bytes() as f64 / t.elapsed().as_secs_f64() / (1 << 20) as f64;
            println!(
                "{:>10} {:>12} {:>14.1} {:>12}",
                format!("{:.2}MiB", dict_size as f64 / (1 << 20) as f64),
                label,
                rate,
                factors
            );
        }
    }
}
