//! Ablation: the paper's binary-search Refine vs a galloping variant (and
//! the q-gram indexed fast path), as factorization (compression-side)
//! throughput — plus the decode-side ablation, fused zero-allocation
//! pipeline vs the two-step oracle, so both hot-path speedups stay
//! recorded side by side.
use rlz_bench::{gov2_collection, ScaledConfig};
use rlz_core::{Coder, Dictionary, PairCoding, SampleStrategy};
use rlz_suffix::Matcher;
use std::time::Instant;

#[derive(Clone, Copy)]
enum Strategy {
    Binary,
    Galloping,
    Indexed,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ScaledConfig::from_args(&args);
    if !args.iter().any(|a| a == "--size-mb") {
        cfg.collection_bytes = 8 << 20;
    }
    let c = gov2_collection(&cfg);
    println!(
        "Ablation — Refine search strategy, factorization throughput ({} MiB corpus)\n",
        cfg.collection_bytes >> 20
    );
    println!(
        "{:>10} {:>12} {:>14} {:>12}",
        "dict", "strategy", "MiB/s", "factors"
    );
    for dict_size in cfg.dict_sizes() {
        let dict = Dictionary::sample(&c.data, dict_size, cfg.sample_len, SampleStrategy::Evenly);
        let matcher = Matcher::new(dict.bytes(), dict.suffix_array());
        let index = dict.prefix_index();
        for (label, strategy) in [
            ("binary", Strategy::Binary),
            ("galloping", Strategy::Galloping),
            ("indexed", Strategy::Indexed),
        ] {
            let t = Instant::now();
            let mut factors = 0u64;
            for doc in c.iter_docs() {
                let mut i = 0usize;
                while i < doc.len() {
                    let (_, len) = match strategy {
                        Strategy::Binary => matcher.longest_match(&doc[i..]),
                        Strategy::Galloping => matcher.longest_match_galloping(&doc[i..]),
                        Strategy::Indexed => matcher.longest_match_indexed(index, &doc[i..]),
                    };
                    i += (len as usize).max(1);
                    factors += 1;
                }
            }
            let rate = c.total_bytes() as f64 / t.elapsed().as_secs_f64() / (1 << 20) as f64;
            println!(
                "{:>10} {:>12} {:>14.1} {:>12}",
                format!("{:.2}MiB", dict_size as f64 / (1 << 20) as f64),
                label,
                rate,
                factors
            );
        }
    }

    // Decode-side ablation (PR 3): the fused zero-allocation pipeline vs
    // the two-step decode_document + expand oracle, on the paper's fastest
    // (UV) and densest (ZZ) codings.
    println!("\nAblation — decode pipeline, retrieval-side throughput\n");
    println!(
        "{:>10} {:>8} {:>12} {:>14} {:>9}",
        "dict", "coding", "pipeline", "MiB/s", "speedup"
    );
    let dict_size = cfg.dict_sizes()[1];
    let dict = Dictionary::sample(&c.data, dict_size, cfg.sample_len, SampleStrategy::Evenly);
    for coding in [PairCoding::UV, PairCoding::ZZ] {
        let encoded: Vec<Vec<u8>> = c
            .iter_docs()
            .map(|doc| {
                rlz_core::coding::encode_document(&rlz_core::factorize_to_vec(&dict, doc), coding)
            })
            .collect();
        let mut two_step_rate = 0.0f64;
        for fused in [false, true] {
            let m = rlz_bench::tables::decode_rate(
                &encoded,
                coding,
                dict.bytes(),
                fused,
                std::time::Duration::from_secs(2),
            );
            let speedup = if fused {
                format!("{:.2}x", m.mb_per_s / two_step_rate)
            } else {
                two_step_rate = m.mb_per_s;
                "1.00x".to_string()
            };
            println!(
                "{:>10} {:>8} {:>12} {:>14.1} {:>9}",
                format!("{:.2}MiB", dict_size as f64 / (1 << 20) as f64),
                coding.name(),
                if fused { "fused" } else { "two-step" },
                m.mb_per_s,
                speedup
            );
        }
    }

    // Entropy-stage ablation (PR 6): the same factor position and length
    // streams pushed through each whole-stream codec in isolation —
    // dictionary-backed zlib (Z) vs order-0 tANS (F) vs the LZ4-style
    // fast-literal coder (L). Bytes/value shows where each family pays:
    // zlib's LZ layer catches repeated dictionary offsets in the position
    // stream, which order-0 entropy coding cannot.
    println!("\nAblation — entropy stage, per-stream size and decode speed\n");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>14}",
        "stream", "coder", "bytes", "bytes/val", "Mvals/s"
    );
    let mut positions: Vec<u32> = Vec::new();
    let mut lengths: Vec<u32> = Vec::new();
    for doc in c.iter_docs() {
        for f in rlz_core::factorize_to_vec(&dict, doc) {
            positions.push(f.pos);
            lengths.push(f.len);
        }
    }
    for (stream_name, values) in [("pos", &positions), ("len", &lengths)] {
        for coder in [Coder::Zlib, Coder::Fse, Coder::Lz4] {
            let mut enc = Vec::new();
            coder.encode_stream(values, &mut enc);
            let t = Instant::now();
            let mut rounds = 0u32;
            while t.elapsed() < std::time::Duration::from_millis(500) {
                let decoded = coder.decode_stream(&enc, values.len()).unwrap();
                assert_eq!(decoded.len(), values.len());
                rounds += 1;
            }
            let mvals_per_s =
                (values.len() as u64 * u64::from(rounds)) as f64 / t.elapsed().as_secs_f64() / 1e6;
            println!(
                "{:>8} {:>8} {:>12} {:>12.3} {:>14.1}",
                stream_name,
                coder.letter(),
                enc.len(),
                enc.len() as f64 / values.len() as f64,
                mvals_per_s
            );
        }
    }
}
