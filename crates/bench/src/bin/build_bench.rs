//! Construction benchmark: batch (materialize-everything) vs the chunked
//! streaming pipeline, with peak RSS measured per run. Writes
//! `BENCH_build.json`.
//!
//! Peak RSS is `VmHWM` from `/proc/self/status` — a process-wide
//! high-water mark, so every measurement runs in a fresh child process
//! (this binary re-execs itself with `--child`) and cannot be polluted by
//! the runs before it. Rows:
//!
//! * `mode=baseline` — a child that only streams the document generator:
//!   the RSS floor of runtime + generator, subtracted into the budget.
//! * `mode=serial` — the batch oracle: corpus materialized, dictionary
//!   sampled from the concatenation, `RlzStoreBuilder::build` over slices.
//!   Peak RSS grows with the corpus; this is the line the pipeline beats.
//! * `mode=chunked` — one row per thread count: dictionary sampled via
//!   `Dictionary::sample_streamed` (two passes over the generator, never
//!   the corpus in RAM), then `build_rlz_chunked`. Each row asserts the
//!   emitted store directory is **byte-identical** to the serial oracle's
//!   (`identical=yes`, so the compression-ratio delta is exactly zero) and
//!   carries `rss_budget_kb` — the O(dictionary + constant × block) bound
//!   CI enforces: `peak_rss_kb <= rss_budget_kb` regardless of corpus
//!   size.
//!
//! On the 1-core dev container the thread sweep cannot show >1× scaling
//! (standing ROADMAP caveat) — the headline here is the memory bound:
//! the chunked build's VmHWM stays put while the corpus (and the serial
//! build's VmHWM) grows several times past it.
//!
//! ```text
//! build [--size-mb N] [--threads N] [--block-kb N] [--dict-kb N] [--seed N]
//! ```

use rlz_bench::report::{Report, Row};
use rlz_bench::ScaledConfig;
use rlz_repro::ingest::doc_bytes;
use rlz_repro::rlz::{Dictionary, PairCoding, RlzCompressor, SampleStrategy};
use rlz_repro::store::{build_rlz_chunked, BuildConfig, RlzStoreBuilder};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

const SAMPLE_LEN: usize = 1024;
const QUEUED_BLOCKS: usize = 2;

fn usage() -> ! {
    eprintln!("usage: build [--size-mb N] [--threads N] [--block-kb N] [--dict-kb N] [--seed N]");
    std::process::exit(2)
}

/// Peak resident set of this process in KiB (`VmHWM` from
/// `/proc/self/status`); 0 where procfs is unavailable.
fn vmhwm_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// The deterministic corpus: `docs` documents from the shared ingest
/// generator.
fn corpus_stream(seed: u64, docs: u32) -> impl Iterator<Item = Vec<u8>> + Send {
    (0..docs).map(move |id| doc_bytes(seed, id))
}

/// What one child run reports back to the parent on stdout.
#[derive(Debug, Default, Clone)]
struct ChildResult {
    vmhwm_kb: u64,
    dict_kb: u64,
    elapsed_s: f64,
    raw_bytes: u64,
    docs: u64,
}

impl ChildResult {
    fn print(&self) {
        println!(
            "CHILD_RESULT vmhwm_kb={} dict_kb={} elapsed_s={:.6} raw_bytes={} docs={}",
            self.vmhwm_kb, self.dict_kb, self.elapsed_s, self.raw_bytes, self.docs
        );
    }

    fn parse(stdout: &str) -> Option<ChildResult> {
        let line = stdout
            .lines()
            .find(|l| l.starts_with("CHILD_RESULT "))?
            .strip_prefix("CHILD_RESULT ")?;
        let mut r = ChildResult::default();
        for field in line.split_whitespace() {
            let (key, value) = field.split_once('=')?;
            match key {
                "vmhwm_kb" => r.vmhwm_kb = value.parse().ok()?,
                "dict_kb" => r.dict_kb = value.parse().ok()?,
                "elapsed_s" => r.elapsed_s = value.parse().ok()?,
                "raw_bytes" => r.raw_bytes = value.parse().ok()?,
                "docs" => r.docs = value.parse().ok()?,
                _ => {}
            }
        }
        Some(r)
    }
}

/// Child knobs, parsed from the re-exec command line.
struct ChildArgs {
    mode: String,
    dir: PathBuf,
    docs: u32,
    seed: u64,
    raw_bytes: u64,
    dict_bytes: usize,
    block_bytes: usize,
    threads: usize,
}

/// `--child MODE`: run one measurement and print `CHILD_RESULT`.
fn run_child(a: &ChildArgs) {
    let t = Instant::now();
    let mut out = ChildResult {
        raw_bytes: a.raw_bytes,
        docs: a.docs as u64,
        ..ChildResult::default()
    };
    match a.mode.as_str() {
        // RSS floor: stream the generator, keep nothing.
        "baseline" => {
            let mut total = 0u64;
            for doc in corpus_stream(a.seed, a.docs) {
                total += doc.len() as u64;
            }
            assert_eq!(total, a.raw_bytes, "generator disagrees with parent");
        }
        // Batch oracle: corpus fully materialized, then the existing
        // builder.
        "serial" => {
            let docs: Vec<Vec<u8>> = corpus_stream(a.seed, a.docs).collect();
            let all: Vec<u8> = docs.concat();
            let dict = Dictionary::sample(&all, a.dict_bytes, SAMPLE_LEN, SampleStrategy::Evenly);
            out.dict_kb = dict.heap_bytes() as u64 / 1024;
            drop(all);
            let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
            RlzStoreBuilder::new(dict, PairCoding::ZV)
                .threads(a.threads)
                .build(&a.dir, &slices)
                .expect("serial build");
        }
        // The pipeline under test: the corpus only ever streams.
        "chunked" => {
            let dict = Dictionary::sample_streamed(
                corpus_stream(a.seed, a.docs),
                a.raw_bytes as usize,
                a.dict_bytes,
                SAMPLE_LEN,
                SampleStrategy::Evenly,
            );
            out.dict_kb = dict.heap_bytes() as u64 / 1024;
            let compressor = RlzCompressor::new(dict, PairCoding::ZV);
            let cfg = BuildConfig {
                threads: a.threads,
                block_bytes: a.block_bytes,
                queued_blocks: QUEUED_BLOCKS,
            };
            let report =
                build_rlz_chunked(&a.dir, &compressor, corpus_stream(a.seed, a.docs), &cfg)
                    .expect("chunked build");
            assert_eq!(report.raw_bytes, a.raw_bytes);
            assert_eq!(report.docs, a.docs as u64);
        }
        _ => usage(),
    }
    out.elapsed_s = t.elapsed().as_secs_f64();
    out.vmhwm_kb = vmhwm_kb();
    out.print();
}

/// Re-execs this binary for one measurement and parses its result line.
fn spawn_child(a: &ChildArgs) -> ChildResult {
    let exe = std::env::current_exe().expect("current_exe");
    let output = Command::new(exe)
        .args([
            "--child",
            &a.mode,
            "--dir",
            a.dir.to_str().expect("utf8 dir"),
            "--docs",
            &a.docs.to_string(),
            "--seed",
            &a.seed.to_string(),
            "--raw-bytes",
            &a.raw_bytes.to_string(),
            "--dict-bytes",
            &a.dict_bytes.to_string(),
            "--block-bytes",
            &a.block_bytes.to_string(),
            "--child-threads",
            &a.threads.to_string(),
        ])
        .output()
        .expect("spawn child");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "{} child failed: {}\n{}",
        a.mode,
        stdout,
        String::from_utf8_lossy(&output.stderr)
    );
    ChildResult::parse(&stdout)
        .unwrap_or_else(|| panic!("{} child printed no CHILD_RESULT: {stdout}", a.mode))
}

/// Every file in `dir` by name — the byte-identity comparison input.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read store dir") {
        let entry = entry.expect("dir entry");
        out.insert(
            entry.file_name().to_string_lossy().into_owned(),
            std::fs::read(entry.path()).expect("read store file"),
        );
    }
    out
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(|s| s.as_str()) == Some("--child") {
        let mut a = ChildArgs {
            mode: raw.get(1).cloned().unwrap_or_else(|| usage()),
            dir: PathBuf::new(),
            docs: 0,
            seed: 0,
            raw_bytes: 0,
            dict_bytes: 0,
            block_bytes: 0,
            threads: 1,
        };
        let mut i = 2;
        while i < raw.len() {
            let value = |i: &mut usize| -> String {
                *i += 1;
                raw.get(*i).cloned().unwrap_or_else(|| usage())
            };
            match raw[i].as_str() {
                "--dir" => a.dir = PathBuf::from(value(&mut i)),
                "--docs" => a.docs = value(&mut i).parse().unwrap_or_else(|_| usage()),
                "--seed" => a.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
                "--raw-bytes" => a.raw_bytes = value(&mut i).parse().unwrap_or_else(|_| usage()),
                "--dict-bytes" => a.dict_bytes = value(&mut i).parse().unwrap_or_else(|_| usage()),
                "--block-bytes" => {
                    a.block_bytes = value(&mut i).parse().unwrap_or_else(|_| usage())
                }
                "--child-threads" => a.threads = value(&mut i).parse().unwrap_or_else(|_| usage()),
                _ => usage(),
            }
            i += 1;
        }
        return run_child(&a);
    }

    let mut cfg = ScaledConfig::from_args(&raw);
    if !raw.iter().any(|a| a == "--size-mb") {
        // Construction (serial oracle + thread sweep) factorizes the
        // corpus several times over; default smaller than the read-side
        // benches.
        cfg.collection_bytes = 16 << 20;
    }
    let mut block_kb = 64usize;
    let mut dict_kb = 256usize;
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--block-kb" => {
                i += 1;
                block_kb = raw
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--dict-kb" => {
                i += 1;
                dict_kb = raw
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => {}
        }
        i += 1;
    }
    let block_bytes = block_kb.max(1) * 1024;
    let dict_bytes = dict_kb.max(1) * 1024;
    let target_bytes = cfg.collection_bytes as u64;

    // Size the corpus: count generator output until the target is met, so
    // children can be told an exact (docs, raw_bytes) pair.
    let mut docs = 0u32;
    let mut raw_bytes = 0u64;
    while raw_bytes < target_bytes {
        raw_bytes += doc_bytes(cfg.seed, docs).len() as u64;
        docs += 1;
    }

    println!(
        "Bounded-memory build — {:.1} MiB corpus ({docs} docs), dict {dict_kb} KiB, \
         master blocks {block_kb} KiB\n",
        raw_bytes as f64 / (1 << 20) as f64
    );

    let scratch = std::env::temp_dir().join(format!("rlz-build-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    let mut report = Report::new("build");
    let child = |mode: &str, dir: PathBuf, threads: usize| ChildArgs {
        mode: mode.to_string(),
        dir,
        docs,
        seed: cfg.seed,
        raw_bytes,
        dict_bytes,
        block_bytes,
        threads,
    };

    let baseline = spawn_child(&child("baseline", scratch.join("baseline"), 1));
    println!(
        "  baseline (generator only)          peak RSS {:>8} KiB",
        baseline.vmhwm_kb
    );
    report.push(
        Row::new()
            .str("mode", "baseline")
            .int("corpus_bytes", raw_bytes)
            .int("docs", docs as u64)
            .int("peak_rss_kb", baseline.vmhwm_kb),
    );

    let serial_dir = scratch.join("serial");
    let serial = spawn_child(&child("serial", serial_dir.clone(), 1));
    let serial_mb_s = raw_bytes as f64 / (1 << 20) as f64 / serial.elapsed_s.max(1e-9);
    println!(
        "  serial  (batch, materialized)      peak RSS {:>8} KiB  {serial_mb_s:>6.1} MB/s",
        serial.vmhwm_kb
    );
    report.push(
        Row::new()
            .str("mode", "serial")
            .int("threads", 1)
            .int("corpus_bytes", raw_bytes)
            .int("docs", docs as u64)
            .num("elapsed_s", serial.elapsed_s)
            .num("mb_per_s", serial_mb_s)
            .int("peak_rss_kb", serial.vmhwm_kb)
            .int("dict_kb", serial.dict_kb),
    );
    let serial_files = dir_bytes(&serial_dir);

    // Thread sweep. On the 1-core container this cannot show >1× scaling
    // (the standing ROADMAP caveat); the RSS bound is the headline.
    let mut sweep: Vec<usize> = vec![1, 2, cfg.threads];
    sweep.sort_unstable();
    sweep.dedup();
    for threads in sweep {
        let cfgp = BuildConfig {
            threads,
            block_bytes,
            queued_blocks: QUEUED_BLOCKS,
        };
        let dir = scratch.join(format!("chunked-{threads}"));
        let r = spawn_child(&child("chunked", dir.clone(), threads));
        let identical = dir_bytes(&dir) == serial_files;
        // The enforced memory model: generator floor + dictionary (with
        // construction transient) + in-flight raw/encoded blocks + a
        // fixed allocator/runtime slack. Corpus size appears nowhere.
        let block_budget_bytes = (cfgp.max_inflight_blocks() * block_bytes) as u64;
        let rss_budget_kb =
            baseline.vmhwm_kb + 3 * r.dict_kb + 4 * block_budget_bytes / 1024 + 4 * 1024;
        let mb_s = raw_bytes as f64 / (1 << 20) as f64 / r.elapsed_s.max(1e-9);
        println!(
            "  chunked (streamed, {threads:>2} thread{}) peak RSS {:>8} KiB  {mb_s:>6.1} MB/s  \
             budget {rss_budget_kb} KiB  identical={}",
            if threads == 1 { " " } else { "s" },
            r.vmhwm_kb,
            if identical { "yes" } else { "NO" },
        );
        assert!(
            identical,
            "chunked store (threads={threads}) must be byte-identical to the serial oracle"
        );
        assert!(
            r.vmhwm_kb <= rss_budget_kb,
            "chunked peak RSS {} KiB exceeds its O(dict + blocks) budget {} KiB",
            r.vmhwm_kb,
            rss_budget_kb
        );
        report.push(
            Row::new()
                .str("mode", "chunked")
                .int("threads", threads as u64)
                .int("block_kb", block_kb as u64)
                .int("corpus_bytes", raw_bytes)
                .int("docs", docs as u64)
                .num("elapsed_s", r.elapsed_s)
                .num("mb_per_s", mb_s)
                .int("peak_rss_kb", r.vmhwm_kb)
                .int("dict_kb", r.dict_kb)
                .int("block_budget_kb", block_budget_bytes / 1024)
                .int("rss_budget_kb", rss_budget_kb)
                .num(
                    "rss_vs_serial",
                    r.vmhwm_kb as f64 / serial.vmhwm_kb.max(1) as f64,
                )
                .str("identical", if identical { "yes" } else { "no" }),
        );
    }

    let _ = std::fs::remove_dir_all(&scratch);
    report
        .write(Path::new("BENCH_build.json"))
        .expect("write BENCH_build.json");
    println!(
        "\nwrote BENCH_build.json ({} rows) — serial-vs-chunked ratio delta is 0 by \
         construction (stores byte-identical)",
        report.len()
    );
}
