//! Served-retrieval benchmark: rlz-serve over loopback TCP, closed-loop
//! and paced open-loop, with the hot-document cache and the metrics
//! instrumentation as ablation axes (the metrics-off leg exists to bound
//! the observability tax on tail latency). Writes the machine-readable
//! `BENCH_serve.json` artifact.
//!
//! `cargo run --release -p rlz-bench --bin serve [-- --size-mb N]`

use rlz_bench::{gov2_collection, ScaledConfig};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ScaledConfig::from_args(&args);
    let gov2 = gov2_collection(&cfg);
    let report = rlz_bench::serve::serve_table(
        "Served retrieval — rlz-serve over loopback TCP (extension)",
        &gov2,
        &cfg,
    );
    report
        .write(Path::new("BENCH_serve.json"))
        .expect("write BENCH_serve.json");
}
