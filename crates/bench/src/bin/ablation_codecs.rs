//! Ablation: factor-stream codecs beyond the paper's U/V/Z — Simple-9,
//! PForDelta, Elias γ/δ (the paper's future-work candidates). Reports
//! encoding % and single-thread decode throughput per pair coding.
use rlz_bench::{gov2_collection, ScaledConfig};
use rlz_core::{Dictionary, PairCoding, RlzCompressor, SampleStrategy};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ScaledConfig::from_args(&args);
    if !args.iter().any(|a| a == "--size-mb") {
        cfg.collection_bytes = 8 << 20;
    }
    let c = gov2_collection(&cfg);
    let dict_size = cfg.dict_sizes()[0];
    let dict = Dictionary::sample(&c.data, dict_size, cfg.sample_len, SampleStrategy::Evenly);
    println!(
        "Ablation — pair codings on GOV2-like corpus ({} MiB, dict {:.2} MiB)\n",
        cfg.collection_bytes >> 20,
        dict_size as f64 / (1 << 20) as f64
    );
    println!("{:>8} {:>9} {:>14}", "Pos-Len", "Enc.(%)", "decode MiB/s");
    for name in [
        "ZZ", "ZV", "UZ", "UV", "SV", "SS", "PV", "PP", "GV", "DV", "VV", "ZS", "ZP",
    ] {
        let coding = PairCoding::parse(name).expect("valid coding");
        let rlz = RlzCompressor::new(dict.clone(), coding);
        let encoded: Vec<Vec<u8>> = c.iter_docs().map(|d| rlz.compress(d)).collect();
        let enc_total: usize = encoded.iter().map(Vec::len).sum();
        let pct = (enc_total + dict_size) as f64 * 100.0 / c.total_bytes() as f64;
        // Decode throughput over the whole collection.
        let mut out = Vec::new();
        let t = Instant::now();
        for e in &encoded {
            out.clear();
            rlz.decompress_into(e, &mut out).expect("decode");
        }
        let rate = c.total_bytes() as f64 / t.elapsed().as_secs_f64() / (1 << 20) as f64;
        println!("{:>8} {:>9.2} {:>14.0}", name, pct, rate);
    }
}
