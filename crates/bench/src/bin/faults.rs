//! Fault-containment benchmark: what integrity protection and overload
//! control cost, and what they buy. Writes the machine-readable
//! `BENCH_faults.json` artifact with three row groups:
//!
//! * `op=scrub` — offline scrub (checksum walk) throughput per store
//!   family, the rate `rlz-verify` inspects a store at.
//! * `op=warm_get` — warm in-process `get_into` throughput with checksums
//!   verified on every read (`crc32c`) vs the same store opened without
//!   its sidecar (`none`): the integrity tax on the hot path.
//! * `op=overload` — open-loop served load at a multiple of measured
//!   capacity, with load shedding off vs on: shedding must keep the
//!   latency tail bounded (`p99` of served requests) where the unshielded
//!   server lets queueing delay grow with the backlog.
//!
//! `cargo run --release -p rlz-bench --bin faults [-- --size-mb N --requests N]`

use rlz_bench::report::{Report, Row};
use rlz_bench::serve::{run_load, Dist, LoadConfig};
use rlz_bench::{gov2_collection, ScaledConfig, WorkDir};
use rlz_corpus::access;
use rlz_store::{AsciiStore, BlockCodec, BlockedStore, DocStore, RlzStore};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Warm retrieval rates: one untimed pass grows every buffer, the timed
/// pass then measures the steady state (docs/s, payload MiB/s).
fn warm_rates(store: &dyn DocStore, ids: &[u32]) -> (f64, f64) {
    let mut buf = Vec::new();
    for &id in ids {
        buf.clear();
        store.get_into(id as usize, &mut buf).expect("warm pass");
    }
    let t = Instant::now();
    let mut bytes = 0u64;
    for &id in ids {
        buf.clear();
        store.get_into(id as usize, &mut buf).expect("timed pass");
        bytes += buf.len() as u64;
    }
    let s = t.elapsed().as_secs_f64().max(1e-9);
    (ids.len() as f64 / s, bytes as f64 / (1024.0 * 1024.0) / s)
}

fn scrub_row(
    family: &'static str,
    report: &mut Report,
    scrub: impl FnOnce() -> rlz_store::ScrubReport,
) {
    let t = Instant::now();
    let r = scrub();
    let s = t.elapsed().as_secs_f64().max(1e-9);
    let mb = r.bytes as f64 / (1024.0 * 1024.0);
    println!(
        "  scrub {family:<8} {:>8} units {:>9.2} MiB {:>9.1} MB/s  integrity {}",
        r.units,
        mb,
        mb / s,
        r.integrity.name()
    );
    assert!(r.is_clean(), "{family}: pristine store must scrub clean");
    report.push(
        Row::new()
            .str("op", "scrub")
            .str("family", family)
            .str("integrity", r.integrity.name())
            .int("units", r.units)
            .int("payload_bytes", r.bytes)
            .num("mb_per_s", mb / s),
    );
}

fn warm_get_row(
    family: &'static str,
    integrity: &str,
    store: &dyn DocStore,
    ids: &[u32],
    report: &mut Report,
) {
    let (docs_per_s, mb_per_s) = warm_rates(store, ids);
    println!(
        "  warm_get {family:<8} integrity {integrity:<6} {docs_per_s:>10.0} docs/s {mb_per_s:>9.1} MB/s"
    );
    report.push(
        Row::new()
            .str("op", "warm_get")
            .str("family", family)
            .str("integrity", integrity)
            .num("docs_per_s", docs_per_s)
            .num("mb_per_s", mb_per_s),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ScaledConfig::from_args(&args);
    let collection = gov2_collection(&cfg);
    let work = WorkDir::new("faults");
    let mut report = Report::new("faults");

    println!(
        "Fault containment — integrity cost and overload shedding \
         ({} MiB collection)\n",
        collection.total_bytes() >> 20
    );

    // Build one store per family from the same collection.
    let dict_size = cfg.dict_sizes()[0];
    let (rlz_dir, _) = rlz_bench::build_rlz_store(
        &work,
        "faults-rlz",
        &collection,
        dict_size,
        rlz_core::PairCoding::ZV,
        &cfg,
    );
    let (blocked_dir, _) = rlz_bench::build_blocked_store(
        &work,
        "faults-blocked",
        &collection,
        BlockCodec::Zlite(rlz_zlite::Level::Default),
        64 * 1024,
        &cfg,
    );
    let ascii_dir = rlz_bench::build_ascii_store(&work, "faults-ascii", &collection);

    // --- Scrub throughput: the offline `rlz-verify` walk. ---
    println!("scrub throughput (checksum walk over every stored unit):");
    let rlz = RlzStore::open(&rlz_dir).expect("open rlz");
    let blocked = BlockedStore::open(&blocked_dir).expect("open blocked");
    let ascii = AsciiStore::open(&ascii_dir).expect("open ascii");
    scrub_row("rlz", &mut report, || rlz.scrub());
    scrub_row("blocked", &mut report, || blocked.scrub());
    scrub_row("ascii", &mut report, || ascii.scrub());
    println!();

    // --- Integrity tax: warm get_into with and without checksums. ---
    // The `none` variants are the same bytes reopened as a legacy layout
    // (sidecar removed; for RLZ also a legacy metadata header), so the only
    // difference on the hot path is the CRC32C verify per record.
    println!("warm get_into, checksummed vs legacy (the integrity tax):");
    let num_docs = rlz_store::DocStore::num_docs(&rlz);
    let ids = access::query_log(
        num_docs,
        cfg.requests.clamp(1_000, 50_000),
        20,
        cfg.seed ^ 0xFA,
    );
    warm_get_row("rlz", "crc32c", &rlz, &ids, &mut report);
    warm_get_row("ascii", "crc32c", &ascii, &ids, &mut report);
    std::fs::remove_file(ascii_dir.join("sums.bin")).expect("drop ascii sidecar");
    let coding_name = rlz.coding().name();
    std::fs::remove_file(rlz_dir.join("sums.bin")).expect("drop rlz sidecar");
    std::fs::write(rlz_dir.join("meta.bin"), coding_name.as_bytes()).expect("legacy rlz meta");
    let rlz_legacy = RlzStore::open(&rlz_dir).expect("reopen rlz legacy");
    let ascii_legacy = AsciiStore::open(&ascii_dir).expect("reopen ascii legacy");
    assert_eq!(rlz_legacy.stats().integrity, rlz_store::Integrity::None);
    assert_eq!(ascii_legacy.stats().integrity, rlz_store::Integrity::None);
    warm_get_row("rlz", "none", &rlz_legacy, &ids, &mut report);
    warm_get_row("ascii", "none", &ascii_legacy, &ids, &mut report);
    println!();

    // --- Overload: open-loop past capacity, shedding off vs on. ---
    // Measure single-connection closed-loop capacity first, then offer a
    // fixed multiple of it to one worker. Without shedding the backlog's
    // queueing delay lands in every percentile (latency is measured from
    // the *scheduled* send time); with a one-deep queue budget the server
    // answers ERR_BUSY instead of queueing, so served requests keep a
    // bounded tail. The `shed` column counts the sacrificed requests.
    println!("open-loop overload, shedding off vs on (1 worker):");
    let store = Arc::new(rlz_legacy.clone());
    let frames = (cfg.requests / 4).clamp(200, 5_000);
    let probe = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe");
        let handle = rlz_serve::serve(
            Arc::clone(&store) as Arc<dyn DocStore>,
            listener,
            rlz_serve::ServeConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .expect("start probe server");
        let load = LoadConfig {
            connections: 1,
            batch: 1,
            pipeline: 1,
            frames,
            dist: Dist::QueryLog,
            rate: None,
            seed: cfg.seed ^ 0xCA9,
            verify: false,
        };
        let r = run_load(handle.addr(), None, num_docs, &load).expect("capacity probe");
        handle.shutdown();
        r.docs_per_s
    };
    println!("  measured 1-conn capacity: {probe:.0} docs/s");
    for (shedding, depth) in [("off", 0usize), ("on", 1)] {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let handle = rlz_serve::serve(
            Arc::clone(&store) as Arc<dyn DocStore>,
            listener,
            rlz_serve::ServeConfig {
                threads: 1,
                shed_queue_depth: depth,
                ..Default::default()
            },
        )
        .expect("start overload server");
        let rate = (probe * 2.5).max(200.0);
        let load = LoadConfig {
            connections: 8,
            batch: 1,
            pipeline: 1,
            frames,
            dist: Dist::QueryLog,
            rate: Some(rate),
            seed: cfg.seed ^ 0x0DD,
            verify: false,
        };
        let result = run_load(handle.addr(), None, num_docs, &load).expect("overload run");
        println!(
            "  shedding {shedding:<3} offered {rate:>8.0}/s served {:>8.0}/s \
             p50 {:>8} us p99 {:>8} us shed {:>6}",
            result.docs_per_s, result.p50_us, result.p99_us, result.shed
        );
        report.push(
            Row::new()
                .str("op", "overload")
                .str("shedding", shedding)
                .num("offered_per_s", rate)
                .int("served", result.frames as u64)
                .int("shed", result.shed)
                .num("docs_per_s", result.docs_per_s)
                .num("mb_per_s", result.mb_per_s)
                .int("p50_us", result.p50_us)
                .int("p95_us", result.p95_us)
                .int("p99_us", result.p99_us),
        );
        handle.shutdown();
    }

    report
        .write(Path::new("BENCH_faults.json"))
        .expect("write BENCH_faults.json");
    println!("\nwrote BENCH_faults.json ({} rows)", report.len());
}
