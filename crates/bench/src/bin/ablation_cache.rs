//! Ablation: a shared sharded-LRU block cache on the blocked baselines (an
//! extension the paper's baselines lack) — sequential access benefits
//! massively (the next request usually hits the previous block), and
//! query-log access benefits exactly as far as the Zipf head fits in the
//! cache, explaining why the paper's cache-less blocked systems are slow in
//! both regimes.
use rlz_bench::{
    build_blocked_store, docs_per_second_budgeted, gov2_collection, ScaledConfig, WorkDir,
};
use rlz_corpus::access;
use rlz_store::{BlockCodec, BlockedStore};
use std::time::Duration;

/// Cache capacity in blocks; stated explicitly so the printed title matches
/// the configured experiment.
const CACHE_BLOCKS: usize = 32;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ScaledConfig::from_args(&args);
    if !args.iter().any(|a| a == "--size-mb") {
        cfg.collection_bytes = 8 << 20;
    }
    let c = gov2_collection(&cfg);
    let work = WorkDir::new("ablation-cache");
    println!(
        "Ablation — {CACHE_BLOCKS}-block sharded LRU cache on blocked zlib store \
         ({} MiB corpus)\n",
        cfg.collection_bytes >> 20
    );
    println!(
        "{:>10} {:>7} {:>14} {:>13}",
        "block(MB)", "cache", "seq docs/s", "qlog docs/s"
    );
    for &block in &[100 * 1024usize, 1024 * 1024] {
        let (dir, _) = build_blocked_store(
            &work,
            &format!("zl-{block}"),
            &c,
            BlockCodec::Zlite(rlz_zlite::Level::Default),
            block,
            &cfg,
        );
        for cache in [false, true] {
            let mut store = BlockedStore::open(&dir).expect("open");
            store.set_block_cache_capacity(if cache { CACHE_BLOCKS } else { 0 });
            let n = c.num_docs();
            let seq = docs_per_second_budgeted(
                &store,
                &access::sequential(n, cfg.requests),
                Duration::from_secs(3),
            );
            let qlog = docs_per_second_budgeted(
                &store,
                &access::query_log(n, cfg.requests, 20, 5),
                Duration::from_secs(3),
            );
            println!(
                "{:>10.1} {:>7} {:>14.0} {:>13.0}",
                block as f64 / (1 << 20) as f64,
                if cache { "on" } else { "off" },
                seq,
                qlog
            );
        }
    }
}
