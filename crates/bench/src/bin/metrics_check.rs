//! `metrics_check` — CI validator for the `rlz-serve` metrics surfaces.
//!
//! ```text
//! metrics_check --addr HOST:PORT --drive [--http HOST:PORT]
//! metrics_check (--addr HOST:PORT | --http HOST:PORT)
//!               --expect-min 'SERIES=VALUE' [--expect-min ...]
//! ```
//!
//! `--drive` runs the smoke protocol against a **read-only** server: wait
//! for readiness, scrape, drive a scripted GET/MGET/STAT/error mix with
//! exact counts, scrape again, and assert the counter deltas match the
//! script exactly — plus exposition-format cleanliness and histogram
//! internal consistency (monotone cumulative buckets, `+Inf` == `_count`)
//! on every scrape. With `--http` the scrapes go through the HTTP listener
//! and the binary METRICS opcode is cross-checked against it; without,
//! the opcode alone is used.
//!
//! `--expect-min SERIES=VALUE` scrapes once and asserts each named series
//! (label syntax allowed: `rlz_requests_total{op="get"}=5`) is at least
//! VALUE — how the chaos and crash CI jobs assert shed/recovery counters
//! through the real scrape path instead of grepping server logs.

use rlz_bench::promtext::Scrape;
use rlz_serve::Client;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: metrics_check --addr HOST:PORT --drive [--http HOST:PORT]\n\
         \x20      metrics_check (--addr HOST:PORT | --http HOST:PORT) \
         --expect-min 'SERIES=VALUE' [--expect-min ...]"
    );
    std::process::exit(2)
}

/// Scrapes `GET /metrics` over HTTP/1.0 and returns the body.
fn scrape_http(addr: SocketAddr) -> Result<String, String> {
    let err = |e: std::io::Error| format!("http scrape {addr}: {e}");
    let mut stream = TcpStream::connect(addr).map_err(err)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(err)?;
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: metrics\r\n\r\n")
        .map_err(err)?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(err)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("http scrape {addr}: no header/body separator"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(format!("http scrape {addr}: {status}"));
    }
    if !head.contains("text/plain; version=0.0.4") {
        return Err(format!(
            "http scrape {addr}: missing exposition content type in {head:?}"
        ));
    }
    Ok(body.to_string())
}

/// Scrapes via whichever surface is configured (HTTP preferred) and
/// requires the text to parse cleanly.
fn scrape(client: &mut Option<Client>, http: Option<SocketAddr>) -> Result<Scrape, String> {
    let text = match (http, client) {
        (Some(addr), _) => scrape_http(addr)?,
        (None, Some(c)) => c.metrics().map_err(|e| format!("METRICS opcode: {e}"))?,
        (None, None) => return Err("no scrape surface: pass --addr or --http".into()),
    };
    Scrape::parse(&text)
}

/// Waits until the binary-protocol endpoint answers STAT.
fn wait_ready(addr: SocketAddr) -> Result<Client, String> {
    let deadline = Instant::now() + Duration::from_secs(15);
    let attempt = || -> Result<Client, String> {
        let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
        c.stat().map_err(|e| e.to_string())?;
        Ok(c)
    };
    loop {
        match attempt() {
            Ok(c) => return Ok(c),
            Err(e) if Instant::now() >= deadline => {
                return Err(format!("server at {addr} not ready after 15s: {e}"))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(200)),
        }
    }
}

/// Exact value of one series, defaulting to 0 when the scrape lacks it
/// (counters the server genuinely never touched).
fn series(scrape: &Scrape, name: &str, labels: &[(&str, &str)]) -> f64 {
    scrape.value(name, labels).unwrap_or(0.0)
}

fn delta_eq(
    before: &Scrape,
    after: &Scrape,
    name: &str,
    labels: &[(&str, &str)],
    want: f64,
) -> Result<(), String> {
    let b = series(before, name, labels);
    let a = series(after, name, labels);
    if a - b != want {
        return Err(format!(
            "{name}{labels:?}: delta {} (from {b} to {a}), want {want}",
            a - b
        ));
    }
    Ok(())
}

/// Histogram internal consistency for one opcode: cumulative `le` buckets
/// are monotone and the `+Inf` bucket equals `_count`.
fn check_histogram(scrape: &Scrape, op: &str) -> Result<(), String> {
    let name = "rlz_request_duration_seconds";
    let mut prev = 0.0f64;
    let mut inf = None;
    let mut buckets = 0;
    for s in &scrape.samples {
        if s.name == format!("{name}_bucket") && s.label("op") == Some(op) {
            let le = s
                .label("le")
                .ok_or_else(|| format!("{op}: bucket without le"))?;
            if s.value < prev {
                return Err(format!(
                    "{op}: cumulative bucket counts not monotone at le={le}"
                ));
            }
            prev = s.value;
            buckets += 1;
            if le == "+Inf" {
                inf = Some(s.value);
            }
        }
    }
    if buckets < 2 {
        return Err(format!("{op}: histogram has {buckets} bucket lines"));
    }
    let inf = inf.ok_or_else(|| format!("{op}: histogram lacks a +Inf bucket"))?;
    let count = series(scrape, &format!("{name}_count"), &[("op", op)]);
    if inf != count {
        return Err(format!("{op}: +Inf bucket {inf} != _count {count}"));
    }
    Ok(())
}

/// The scripted drive: exact op counts against a read-only store, scrape
/// before and after, assert every delta.
#[allow(clippy::type_complexity)]
fn drive(addr: SocketAddr, http: Option<SocketAddr>) -> Result<(), String> {
    let mut client = wait_ready(addr)?;
    let num_docs = client.stat().map_err(|e| format!("STAT: {e}"))?.num_docs as u32;
    if num_docs < 4 {
        return Err(format!("store too small to drive ({num_docs} docs)"));
    }
    // The scrape client is separate so opcode scrapes never interleave
    // with the driven connection's frames.
    let mut scraper = Some(Client::connect(addr).map_err(|e| format!("connect scraper: {e}"))?);
    let before = scrape(&mut scraper, http)?;
    if http.is_some() {
        // Cross-check: the binary opcode must serve the same registry.
        let opcode = scrape(&mut scraper, None)?;
        for name in ["rlz_requests_total", "rlz_store_docs"] {
            if !opcode.samples.iter().any(|s| s.name == name) {
                return Err(format!("opcode scrape lacks {name}"));
            }
        }
    }

    // The script. Every count here must be mirrored in the deltas below.
    for i in 0..10u32 {
        client.get(i % num_docs).map_err(|e| format!("GET: {e}"))?;
    }
    for _ in 0..2 {
        if client.get(num_docs + 7).is_ok() {
            return Err("out-of-range GET unexpectedly succeeded".into());
        }
    }
    for _ in 0..3 {
        client
            .mget(&[0, 1, 2, 1])
            .map_err(|e| format!("MGET: {e}"))?;
    }
    if client.mget(&[0, num_docs + 7]).is_ok() {
        return Err("out-of-range MGET unexpectedly succeeded".into());
    }
    for _ in 0..3 {
        client.stat().map_err(|e| format!("STAT: {e}"))?;
    }
    if client.put(b"metrics-smoke probe").is_ok() {
        return Err("PUT against a read-only store unexpectedly succeeded".into());
    }

    let after = scrape(&mut scraper, http)?;
    let checks: [(&str, &[(&str, &str)], f64); 10] = [
        ("rlz_requests_total", &[("op", "get")], 12.0),
        ("rlz_request_errors_total", &[("op", "get")], 2.0),
        ("rlz_requests_total", &[("op", "mget")], 4.0),
        ("rlz_request_errors_total", &[("op", "mget")], 1.0),
        ("rlz_requests_total", &[("op", "stat")], 3.0),
        ("rlz_request_errors_total", &[("op", "stat")], 0.0),
        ("rlz_requests_total", &[("op", "put")], 1.0),
        ("rlz_request_errors_total", &[("op", "put")], 1.0),
        ("rlz_request_duration_seconds_count", &[("op", "get")], 12.0),
        ("rlz_request_duration_seconds_count", &[("op", "mget")], 4.0),
    ];
    let mut failures = Vec::new();
    for (name, labels, want) in checks {
        if let Err(e) = delta_eq(&before, &after, name, labels, want) {
            failures.push(e);
        }
    }
    for op in ["get", "mget", "put", "stat"] {
        if let Err(e) = check_histogram(&after, op) {
            failures.push(e);
        }
    }
    for (name, labels) in [
        ("rlz_response_bytes_total", [("op", "get")]),
        ("rlz_response_bytes_total", [("op", "mget")]),
    ] {
        if series(&after, name, &labels) <= series(&before, name, &labels) {
            failures.push(format!("{name}{labels:?} did not grow"));
        }
    }
    if series(&after, "rlz_store_docs", &[]) != num_docs as f64 {
        failures.push(format!(
            "rlz_store_docs {} != STAT num_docs {num_docs}",
            series(&after, "rlz_store_docs", &[])
        ));
    }
    if failures.is_empty() {
        println!(
            "metrics_check: drive OK ({} samples scraped, all scripted deltas exact)",
            after.samples.len()
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// Parses an `--expect-min` spec: `SERIES=VALUE` where SERIES may carry a
/// label set in exposition syntax.
#[allow(clippy::type_complexity)]
fn parse_expectation(spec: &str) -> Result<(String, Vec<(String, String)>, f64), String> {
    let (series, value) = spec
        .rsplit_once('=')
        .ok_or_else(|| format!("--expect-min {spec:?}: missing '='"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("--expect-min {spec:?}: unparseable value"))?;
    // Reuse the exposition parser by rendering the series as a sample line.
    let parsed = Scrape::parse(&format!("{series} 0\n"))
        .map_err(|e| format!("--expect-min {spec:?}: bad series: {e}"))?;
    let sample = parsed
        .samples
        .into_iter()
        .next()
        .ok_or_else(|| format!("--expect-min {spec:?}: empty series"))?;
    Ok((sample.name, sample.labels, value))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<SocketAddr> = None;
    let mut http: Option<SocketAddr> = None;
    let mut do_drive = false;
    let mut expectations = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--addr" => addr = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--http" => http = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--drive" => do_drive = true,
            "--expect-min" => expectations.push(value(&mut i)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
        i += 1;
    }
    if !do_drive && expectations.is_empty() {
        usage();
    }
    let run = || -> Result<(), String> {
        if do_drive {
            drive(addr.ok_or("--drive needs --addr")?, http)?;
        }
        if !expectations.is_empty() {
            // Gate on readiness when the binary endpoint is known.
            let mut client = match (addr, http) {
                (Some(addr), _) => Some(wait_ready(addr)?),
                (None, _) => None,
            };
            let scrape = scrape(&mut client, http)?;
            for spec in &expectations {
                let (name, labels, min) = parse_expectation(spec)?;
                let labels: Vec<(&str, &str)> = labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                let got = series(&scrape, &name, &labels);
                if got < min {
                    return Err(format!("{spec}: got {got}, want at least {min}"));
                }
                println!("metrics_check: {name}{labels:?} = {got} (>= {min})");
            }
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("metrics_check: FAIL\n{e}");
            ExitCode::FAILURE
        }
    }
}
