//! Tables 6 & 7: baseline stores (ascii + blocked zlib/lzma) on the
//! GOV2-like corpus, crawl order and URL-sorted. `-- --order crawl|url|both`
use rlz_bench::{gov2_collection, ScaledConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ScaledConfig::from_args(&args);
    let order = args
        .iter()
        .position(|a| a == "--order")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "both".into());
    let c = gov2_collection(&cfg);
    if order == "crawl" || order == "both" {
        rlz_bench::tables::baseline_retrieval_table(
            "Table 6 — baselines on GOV2-like corpus (crawl order)",
            &c,
            &cfg,
        );
    }
    if order == "url" || order == "both" {
        let sorted = c.url_sorted();
        rlz_bench::tables::baseline_retrieval_table(
            "Table 7 — baselines on URL-sorted GOV2-like corpus",
            &sorted,
            &cfg,
        );
    }
}
