//! Table 1: the paper's worked Refine example, verified and printed.
fn main() {
    rlz_bench::tables::table1();
}
