//! Diagnostic probe: factor statistics and per-stream coding costs for one
//! corpus/dictionary configuration. Not a paper table — used to calibrate
//! the synthetic corpus and to sanity-check the compression pipeline.
//!
//! `cargo run --release -p rlz-bench --bin probe -- --size-mb 8`

use rlz_bench::{gov2_collection, ScaledConfig};
use rlz_core::{Coder, Dictionary, FactorStats, PairCoding, RlzCompressor, SampleStrategy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ScaledConfig::from_args(&args);
    let c = gov2_collection(&cfg);
    println!(
        "collection: {} docs / {:.1} MiB",
        c.num_docs(),
        c.total_bytes() as f64 / (1 << 20) as f64
    );

    for dict_size in cfg.dict_sizes() {
        let dict = Dictionary::sample(&c.data, dict_size, cfg.sample_len, SampleStrategy::Evenly);
        let rlz = RlzCompressor::new(dict, PairCoding::ZZ);
        let mut stats = FactorStats::new(dict_size);
        let mut pos_bytes = [0usize; 3]; // U, V, Z
        let mut len_bytes = [0usize; 3];
        let mut raw = 0usize;
        for doc in c.iter_docs() {
            let factors = rlz.factorize(doc);
            stats.record(&factors);
            raw += doc.len();
            let positions: Vec<u32> = factors.iter().map(|f| f.pos).collect();
            let lengths: Vec<u32> = factors.iter().map(|f| f.len).collect();
            for (slot, coder) in [(0, Coder::U32), (1, Coder::VByte), (2, Coder::Zlib)] {
                let mut buf = Vec::new();
                coder.encode_stream(&positions, &mut buf);
                pos_bytes[slot] += buf.len();
                let mut buf = Vec::new();
                coder.encode_stream(&lengths, &mut buf);
                len_bytes[slot] += buf.len();
            }
        }
        println!(
            "\ndict {:.2} MiB ({} ppm): {} factors ({} literals), avg len {:.1}, unused {:.1}%",
            dict_size as f64 / (1 << 20) as f64,
            dict_size * 1_000_000 / c.total_bytes(),
            stats.total_factors(),
            stats.literals,
            stats.avg_factor_len(),
            stats.unused_dict_percent()
        );
        println!(
            "  fraction of copy factors with len < 100: {:.1}%",
            stats.fraction_below(100) * 100.0
        );
        for (slot, name) in [(0, "U"), (1, "V"), (2, "Z")] {
            println!(
                "  positions {}: {:6.2}%   lengths {}: {:6.2}%",
                name,
                pos_bytes[slot] as f64 * 100.0 / raw as f64,
                name,
                len_bytes[slot] as f64 * 100.0 / raw as f64
            );
        }
        let zz = (pos_bytes[2] + len_bytes[2] + dict_size) as f64 * 100.0 / raw as f64;
        let uv = (pos_bytes[0] + len_bytes[1] + dict_size) as f64 * 100.0 / raw as f64;
        println!("  ZZ total {zz:.2}%   UV total {uv:.2}%");
    }
}
