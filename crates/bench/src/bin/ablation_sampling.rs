//! Ablation: dictionary sampling policy — evenly spaced (the paper's §3.3),
//! random starts, and multi-pass prune-and-refill (the paper's §6 future
//! work / reference \[17\]).
use rlz_bench::{gov2_collection, parallel_doc_sizes, ScaledConfig};
use rlz_core::{
    prune_and_refill, Dictionary, PairCoding, PruneConfig, RlzCompressor, SampleStrategy,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ScaledConfig::from_args(&args);
    if !args.iter().any(|a| a == "--size-mb") {
        cfg.collection_bytes = 8 << 20;
    }
    let c = gov2_collection(&cfg);
    let doc_bounds: Vec<usize> = std::iter::once(0)
        .chain(c.docs.iter().map(|d| d.offset + d.len))
        .collect();
    println!(
        "Ablation — dictionary sampling policy (ZV coding, {} MiB corpus)\n",
        cfg.collection_bytes >> 20
    );
    println!("{:>10} {:>22} {:>9}", "dict", "policy", "Enc.(%)");
    for dict_size in cfg.dict_sizes() {
        let evenly = Dictionary::sample(&c.data, dict_size, cfg.sample_len, SampleStrategy::Evenly);
        let random = Dictionary::sample(
            &c.data,
            dict_size,
            cfg.sample_len,
            SampleStrategy::Random { seed: 0xAB },
        );
        let pruned = prune_and_refill(
            evenly.clone(),
            &c.data,
            &doc_bounds,
            &PruneConfig::default(),
        );
        for (label, dict) in [
            ("evenly (paper)", evenly),
            ("random", random),
            ("evenly + prune[17]", pruned),
        ] {
            let rlz = RlzCompressor::new(dict, PairCoding::ZV);
            let enc = parallel_doc_sizes(&rlz, &c, cfg.threads);
            let pct = (enc + dict_size) as f64 * 100.0 / c.total_bytes() as f64;
            println!(
                "{:>10} {:>22} {:>9.2}",
                format!("{:.2}MiB", dict_size as f64 / (1 << 20) as f64),
                label,
                pct
            );
        }
    }
}
