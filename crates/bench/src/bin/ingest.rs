//! Ingest benchmark and CI crash-smoke driver for the live write path.
//! Writes `BENCH_ingest.json` with three row groups:
//!
//! * `op=ingest` — acked-durable writes/s per fsync policy (`always`,
//!   `interval:5`, `never`): what each durability level costs.
//! * `op=recovery` — time to reopen (WAL replay + segment load) after an
//!   unclean drop, against the WAL length it had to replay.
//! * `op=mixed` — read latency percentiles over the wire with the write
//!   path idle (`phase=baseline`) vs under a concurrent throttled writer
//!   (`phase=ingest`): ingestion must not blow up the read tail.
//!
//! ```text
//! ingest [--docs N] [--seed N]                 # local benchmark mode
//! ingest --net ADDR --acked-file F [--docs N]  # CI smoke: network writer
//! ingest --net ADDR --verify-acked F           # CI smoke: byte-verifier
//! ```
//!
//! The network modes drive a live `rlz-serve` over loopback for the CI
//! crash job: the writer appends one flushed `ACK <id>` line per acked
//! PUT until the server dies under it (a SIGKILL mid-ingest exits 0 —
//! that is the expected outcome); after the server restarts, the
//! verifier fetches every acked id and compares it byte-for-byte against
//! the deterministic content derived from the seed.

use rlz_bench::report::{Report, Row};
use rlz_repro::ingest::{doc_bytes, harness_config, open_or_create};
use rlz_repro::serve::{serve, Client, ClientError, ServeConfig};
use rlz_repro::store::{DocStore, FsyncPolicy, LiveStore, WriteStore};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: ingest [--docs N] [--seed N]\n\
         \x20      ingest --net ADDR --acked-file FILE [--docs N] [--seed N]\n\
         \x20      ingest --net ADDR --verify-acked FILE [--seed N]"
    );
    std::process::exit(2)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// A scratch dir that lives for one policy run.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!("rlz-ingest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        Scratch(p)
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One policy: time `docs` acked puts, then time recovery of the dropped
/// store (the WAL tail never saw a clean seal, so reopen replays it).
fn ingest_and_recover(policy: FsyncPolicy, docs: u32, seed: u64, report: &mut Report) {
    let scratch = Scratch::new(policy.name().split(':').next().unwrap_or("policy"));
    // Big seal threshold: the WAL keeps most of the run, so the recovery
    // row measures real replay work, not an empty log.
    let store = open_or_create(scratch.path(), harness_config(policy, 4 << 20)).expect("create");
    let t = Instant::now();
    let mut bytes = 0u64;
    for id in 0..docs {
        let doc = doc_bytes(seed, id);
        bytes += doc.len() as u64;
        store.put(&doc).expect("put");
    }
    let s = t.elapsed().as_secs_f64().max(1e-9);
    let wal_bytes = store.wal_len();
    drop(store);
    let docs_per_s = docs as f64 / s;
    let mb_per_s = bytes as f64 / (1024.0 * 1024.0) / s;
    println!(
        "  ingest   fsync {:<10} {docs:>6} docs {docs_per_s:>9.0} docs/s {mb_per_s:>7.1} MB/s",
        policy.name()
    );
    report.push(
        Row::new()
            .str("op", "ingest")
            .str("fsync", policy.name())
            .int("docs", docs as u64)
            .num("docs_per_s", docs_per_s)
            .num("mb_per_s", mb_per_s),
    );

    let t = Instant::now();
    let recovered = LiveStore::open(scratch.path(), harness_config(policy, 4 << 20))
        .expect("recovery must succeed");
    let recover_ms = t.elapsed().as_secs_f64() * 1e3;
    let r = recovered.recovery();
    assert_eq!(
        recovered.num_docs() as u32,
        docs,
        "cleanly-dropped store must recover every doc"
    );
    println!(
        "  recovery fsync {:<10} {:>6} frames {:>9} WAL bytes {recover_ms:>8.1} ms",
        policy.name(),
        r.replayed_frames,
        wal_bytes
    );
    report.push(
        Row::new()
            .str("op", "recovery")
            .str("fsync", policy.name())
            .int("wal_frames", r.replayed_frames)
            .int("wal_bytes", wal_bytes)
            .num("recover_ms", recover_ms),
    );
}

/// Measures GET latency percentiles over the wire: `frames` random-ish
/// single GETs against `addr`, ids below `num_docs`.
fn read_phase(
    addr: std::net::SocketAddr,
    num_docs: u32,
    frames: u32,
    seed: u64,
) -> (u64, u64, u64) {
    let mut client = Client::connect_retry(addr, Duration::from_secs(5)).expect("connect");
    let mut lat = Vec::with_capacity(frames as usize);
    let mut buf = Vec::new();
    let mut x = seed | 1;
    for _ in 0..frames {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let id = (x % num_docs as u64) as u32;
        let t = Instant::now();
        buf.clear();
        client.get_into(id, &mut buf).expect("read during ingest");
        lat.push(t.elapsed().as_micros() as u64);
    }
    lat.sort_unstable();
    (
        percentile(&lat, 50.0),
        percentile(&lat, 95.0),
        percentile(&lat, 99.0),
    )
}

/// Baseline vs under-ingest read tail against an in-process server.
fn mixed_phase(docs: u32, frames: u32, seed: u64, report: &mut Report) {
    let scratch = Scratch::new("mixed");
    let policy = FsyncPolicy::Interval(Duration::from_millis(5));
    let store = open_or_create(scratch.path(), harness_config(policy, 1 << 20)).expect("create");
    for id in 0..docs {
        store.put(&doc_bytes(seed, id)).expect("preload");
    }
    store.seal().expect("seal the preload");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle = serve(
        Arc::new(store.clone()),
        listener,
        ServeConfig {
            threads: 2,
            writer: Some(Arc::new(store.clone())),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = handle.addr();

    let (p50, p95, p99_base) = read_phase(addr, docs, frames, seed ^ 0xBA5E);
    println!("  mixed    phase baseline  p50 {p50:>6} us p95 {p95:>6} us p99 {p99_base:>6} us");
    report.push(
        Row::new()
            .str("op", "mixed")
            .str("phase", "baseline")
            .int("frames", frames as u64)
            .int("p50_us", p50)
            .int("p95_us", p95)
            .int("p99_us", p99_base),
    );

    // A throttled writer (~200 docs/s over the wire) runs underneath the
    // second read pass — realistic trickle ingest, not a saturation test.
    let stop = AtomicBool::new(false);
    let (p50, p95, p99_ingest) = std::thread::scope(|scope| {
        let stop_flag = &stop;
        let writer = scope.spawn(move || {
            let mut client = Client::connect_retry(addr, Duration::from_secs(5)).expect("connect");
            let mut id = docs;
            while !stop_flag.load(Ordering::Acquire) {
                let doc = doc_bytes(seed, id);
                match client.put(&doc) {
                    Ok(got) => {
                        assert_eq!(got, id, "single writer: ids are sequential");
                        id += 1;
                    }
                    Err(e) if e.is_busy() => {}
                    Err(e) => panic!("ingest write failed: {e}"),
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            id - docs
        });
        let r = read_phase(addr, docs, frames, seed ^ 0x1A7E);
        stop.store(true, Ordering::Release);
        let written = writer.join().expect("writer thread");
        assert!(written > 0, "the concurrent writer must make progress");
        r
    });
    println!("  mixed    phase ingest    p50 {p50:>6} us p95 {p95:>6} us p99 {p99_ingest:>6} us");
    report.push(
        Row::new()
            .str("op", "mixed")
            .str("phase", "ingest")
            .int("frames", frames as u64)
            .int("p50_us", p50)
            .int("p95_us", p95)
            .int("p99_us", p99_ingest),
    );
    handle.shutdown();

    // The acceptance bar: trickle ingest must keep the read tail within
    // 2x of idle (with a small absolute floor so microsecond-scale noise
    // on idle loopback cannot flake the run).
    let allowed = (2 * p99_base).max(p99_base + 500);
    assert!(
        p99_ingest <= allowed,
        "read p99 under ingest ({p99_ingest} us) blew past 2x the idle tail ({p99_base} us)"
    );
}

/// CI smoke writer: PUT documents over the wire, appending one flushed
/// `ACK <id>` line per acked write, until `docs` land or the server dies
/// (which is the point of the crash job — exit 0 either way).
fn net_writer(addr: std::net::SocketAddr, acked_file: &Path, docs: u32, seed: u64) {
    let mut client = Client::connect_retry(addr, Duration::from_secs(10)).expect("connect");
    let mut out = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(acked_file)
        .expect("open acked file");
    let base = client.stat().expect("stat").num_docs as u32;
    for id in base..base.saturating_add(docs) {
        let doc = doc_bytes(seed, id);
        match client.put(&doc) {
            Ok(got) => {
                assert_eq!(got, id, "single writer: ids are sequential");
                writeln!(out, "ACK {id}")
                    .and_then(|()| out.flush())
                    .expect("record ack");
            }
            Err(ClientError::Io(e)) => {
                println!(
                    "ingest: server went away after {} acks ({e}) — expected under a crash test",
                    id - base
                );
                return;
            }
            Err(e) if e.is_busy() => std::thread::sleep(Duration::from_millis(2)),
            Err(e) => panic!("ingest: write {id} failed: {e}"),
        }
    }
    println!("ingest: {docs} docs acked without a crash");
}

/// CI smoke verifier: every id in the acked file must come back from the
/// (restarted) server byte-identical to its deterministic content.
fn net_verify(addr: std::net::SocketAddr, acked_file: &Path, seed: u64) {
    let acked = std::fs::read_to_string(acked_file).expect("read acked file");
    let mut client = Client::connect_retry(addr, Duration::from_secs(10)).expect("connect");
    let mut checked = 0u32;
    for line in acked.lines() {
        let Some(id) = line.strip_prefix("ACK ") else {
            continue;
        };
        let id: u32 = id.parse().expect("acked line carries a doc id");
        let got = client
            .get(id)
            .unwrap_or_else(|e| panic!("acked doc {id} unreadable after restart: {e}"));
        assert_eq!(
            got,
            doc_bytes(seed, id),
            "acked doc {id} corrupted across the crash"
        );
        checked += 1;
    }
    assert!(checked > 0, "the crash smoke must verify at least one ack");
    println!("ingest: verified {checked} acked docs byte-identical after restart");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut docs = 800u32;
    let mut seed = 0x1465u64;
    let mut net: Option<String> = None;
    let mut acked_file: Option<String> = None;
    let mut verify_acked: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--docs" => docs = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--net" => net = Some(value(&mut i)),
            "--acked-file" => acked_file = Some(value(&mut i)),
            "--verify-acked" => verify_acked = Some(value(&mut i)),
            // Accepted for uniformity with the other bench binaries.
            "--size-mb" => drop(value(&mut i)),
            _ => usage(),
        }
        i += 1;
    }

    if let Some(addr) = net {
        let addr: std::net::SocketAddr = addr.parse().unwrap_or_else(|_| usage());
        return match (acked_file, verify_acked) {
            (_, Some(f)) => net_verify(addr, Path::new(&f), seed),
            (Some(f), None) => net_writer(addr, Path::new(&f), docs, seed),
            (None, None) => usage(),
        };
    }

    println!("Live ingestion — durability cost, recovery time, read tail under writes\n");
    let mut report = Report::new("ingest");
    for policy in [
        FsyncPolicy::Always,
        FsyncPolicy::Interval(Duration::from_millis(5)),
        FsyncPolicy::Never,
    ] {
        ingest_and_recover(policy, docs, seed, &mut report);
    }
    mixed_phase(
        docs.min(500),
        (docs * 2).clamp(400, 4_000),
        seed,
        &mut report,
    );
    report
        .write(Path::new("BENCH_ingest.json"))
        .expect("write BENCH_ingest.json");
    println!("\nwrote BENCH_ingest.json ({} rows)", report.len());
}
