//! `serve_load` — load generator and correctness driver for `rlz-serve`.
//!
//! ```text
//! # Build a small RLZ store from the synthetic GOV2-like corpus:
//! serve_load --store DIR --build-only [--size-mb N]
//!
//! # Drive an external server (CI smoke flow):
//! serve_load --addr 127.0.0.1:7641 --store DIR --smoke --verify \
//!            [--connections N] [--batch N] [--pipeline N] [--requests N] \
//!            [--append] [--shutdown]
//!
//! # Stop an external server without measuring anything:
//! serve_load --addr 127.0.0.1:7641 --store DIR --shutdown-only
//!
//! # Self-contained: build, serve in-process, and measure:
//! serve_load --store DIR --build [--connections N] [--rate R] \
//!            [--cache-bytes N] [--backend auto|epoll|portable] ...
//! ```
//!
//! `--store` names the store directory; it doubles as the ground truth for
//! `--verify`/`--smoke`, which compare every served byte against
//! `DocStore::get`. `--smoke` first runs a scripted mixed GET / MGET /
//! pipelined / malformed-frame protocol exercise (any deviation exits
//! nonzero), then the timed load. `--pipeline N` keeps N frames
//! outstanding per connection in closed-loop mode. `--cache-bytes` and
//! `--backend` configure the in-process server (external servers are
//! configured by their own flags; rows are labelled from the live STAT
//! response either way). Results land in `BENCH_serve.json` (`--out` to
//! move, `--append` to keep an existing artifact's rows — how CI collects
//! the epoll and portable runs into one matrix).

use rlz_bench::serve::{self, Dist, LoadConfig, ServerLabels};
use rlz_bench::ScaledConfig;
use rlz_core::{Dictionary, PairCoding, RlzCompressor, SampleStrategy};
use rlz_serve::protocol::{self, STATUS_BAD_FRAME, STATUS_BAD_OPCODE, STATUS_OUT_OF_RANGE};
use rlz_serve::{Client, ClientError};
use rlz_store::{build_rlz_chunked, BuildConfig, DocStore, RlzStore};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    addr: Option<SocketAddr>,
    store: Option<PathBuf>,
    build: bool,
    build_only: bool,
    smoke: bool,
    verify: bool,
    shutdown: bool,
    shutdown_only: bool,
    append: bool,
    connections: usize,
    batch: usize,
    pipeline: usize,
    requests: usize,
    dist: Dist,
    rate: Option<f64>,
    cache_bytes: usize,
    backend: rlz_serve::Backend,
    out: PathBuf,
    wait_secs: u64,
    scaled: ScaledConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_load [--addr HOST:PORT] [--store DIR] [--build | --build-only]\n\
         \x20                 [--size-mb N] [--connections N] [--batch N] [--pipeline N]\n\
         \x20                 [--requests N] [--dist seq|zipf|querylog] [--rate R]\n\
         \x20                 [--cache-bytes N] [--backend auto|epoll|portable]\n\
         \x20                 [--smoke] [--verify] [--shutdown] [--shutdown-only]\n\
         \x20                 [--append] [--out FILE] [--wait-secs S] [--seed N]"
    );
    std::process::exit(2)
}

fn parse_args(raw: &[String]) -> Args {
    let mut args = Args {
        addr: None,
        store: None,
        build: false,
        build_only: false,
        smoke: false,
        verify: false,
        shutdown: false,
        shutdown_only: false,
        append: false,
        connections: 4,
        batch: 1,
        pipeline: 1,
        requests: 2000,
        dist: Dist::QueryLog,
        rate: None,
        cache_bytes: 0,
        backend: rlz_serve::Backend::Auto,
        out: PathBuf::from("BENCH_serve.json"),
        wait_secs: 15,
        scaled: ScaledConfig::from_args(raw),
    };
    // `--size-mb N` defaults the store build to a small corpus unless
    // overridden on the command line.
    if !raw.iter().any(|a| a == "--size-mb") {
        args.scaled.collection_bytes = 2 << 20;
    }
    let mut i = 0;
    while i < raw.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            raw.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match raw[i].as_str() {
            "--addr" => args.addr = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--store" => args.store = Some(PathBuf::from(value(&mut i))),
            "--build" => args.build = true,
            "--build-only" => {
                args.build = true;
                args.build_only = true;
            }
            "--smoke" => {
                args.smoke = true;
                args.verify = true;
            }
            "--verify" => args.verify = true,
            "--shutdown" => args.shutdown = true,
            "--shutdown-only" => args.shutdown_only = true,
            "--append" => args.append = true,
            "--connections" => args.connections = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--batch" => args.batch = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--pipeline" => args.pipeline = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--requests" => args.requests = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--dist" => args.dist = Dist::parse(&value(&mut i)).unwrap_or_else(|| usage()),
            "--rate" => args.rate = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--cache-bytes" => args.cache_bytes = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--backend" => {
                args.backend = rlz_serve::Backend::parse(&value(&mut i)).unwrap_or_else(|| usage())
            }
            "--out" => args.out = PathBuf::from(value(&mut i)),
            "--wait-secs" => args.wait_secs = value(&mut i).parse().unwrap_or_else(|_| usage()),
            // ScaledConfig flags, already consumed by from_args above.
            "--size-mb" | "--seed" | "--threads" => {
                let _ = value(&mut i);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
        i += 1;
    }
    if args.pipeline < 1 {
        eprintln!("serve_load: --pipeline must be >= 1");
        usage()
    }
    args
}

/// Builds a small RLZ store (GOV2-like corpus at the scaled size) in `dir`
/// through the chunked pipeline — `--threads` arrives via [`BuildConfig`],
/// the shared construction knob surface, not an ad-hoc argument.
fn build_store(dir: &Path, cfg: &ScaledConfig) {
    let collection = rlz_bench::gov2_collection(cfg);
    let dict_size = cfg.dict_sizes()[0];
    let dict = Dictionary::sample(
        &collection.data,
        dict_size,
        cfg.sample_len,
        SampleStrategy::Evenly,
    );
    let compressor = RlzCompressor::new(dict, PairCoding::ZV);
    let build_cfg = BuildConfig {
        threads: cfg.threads,
        ..BuildConfig::default()
    };
    let report = build_rlz_chunked(
        dir,
        &compressor,
        collection.iter_docs().map(|d| d.to_vec()),
        &build_cfg,
    )
    .expect("build store");
    println!(
        "serve_load: built RLZ store at {} ({} docs, {} corpus bytes)",
        dir.display(),
        report.docs,
        collection.total_bytes()
    );
}

/// The scripted correctness mix: exercises every opcode, every error code,
/// pipelined frames, and the malformed-frame policy against ground truth.
/// Panics (nonzero exit) on any deviation.
fn smoke(addr: SocketAddr, truth: &dyn DocStore) {
    let n = truth.num_docs();
    assert!(n > 0, "smoke needs a non-empty store");
    let deadline = Duration::from_secs(5);

    // STAT matches the store's own accounting, and the extended fields are
    // self-consistent.
    let mut client = Client::connect_retry(addr, deadline).expect("connect for smoke");
    let stats = client.server_stat().expect("STAT");
    assert_eq!(
        stats.store,
        truth.stats(),
        "served STAT disagrees with the store"
    );
    assert_ne!(stats.backend_name(), "unknown", "backend tag must be known");
    if stats.cache_budget_bytes > 0 {
        assert!(
            stats.cache_resident_bytes <= stats.cache_budget_bytes,
            "cache resident bytes exceed the budget"
        );
    } else {
        assert_eq!(stats.cache_resident_bytes, 0);
    }

    // Single GETs: a sweep plus a skewed sample, byte-identical. The
    // second pass re-reads the same ids so a cache-enabled server serves
    // hits, which must be byte-identical too.
    let mut buf = Vec::new();
    for round in 0..2 {
        for id in (0..n).step_by((n / 256).max(1)).chain([0, n - 1]) {
            buf.clear();
            client.get_into(id as u32, &mut buf).expect("GET");
            assert_eq!(
                buf,
                truth.get(id).expect("truth get"),
                "GET {id} not byte-identical (round {round})"
            );
        }
    }

    // MGETs: forward, reversed, duplicated, empty.
    let sample: Vec<u32> = (0..n as u32).step_by((n / 64).max(1)).collect();
    let reversed: Vec<u32> = sample.iter().rev().copied().collect();
    let mut dup = sample.clone();
    dup.extend_from_slice(&sample[..sample.len().min(8)]);
    for ids in [&sample, &reversed, &dup, &Vec::new()] {
        let got = client.mget(ids).expect("MGET");
        assert_eq!(got.len(), ids.len());
        for (doc, &id) in got.iter().zip(ids.iter()) {
            assert_eq!(
                doc,
                &truth.get(id as usize).expect("truth get"),
                "MGET doc {id} not byte-identical"
            );
        }
    }

    // Pipelined GETs: a burst of frames written before any response is
    // read must come back in request order, byte-identical — including
    // repeated ids (the deduplicated batch path).
    let pipelined: Vec<u32> = (0..48u32).map(|i| (i * 7) % n as u32).collect();
    for &id in &pipelined {
        client.send_get(id).expect("pipelined send");
    }
    for &id in &pipelined {
        buf.clear();
        client.recv_get_into(&mut buf).expect("pipelined recv");
        assert_eq!(
            buf,
            truth.get(id as usize).expect("truth get"),
            "pipelined GET {id} not byte-identical"
        );
    }

    // Out-of-range: GET and MGET answer OUT_OF_RANGE error frames and the
    // connection survives.
    for result in [
        client.get(n as u32).map(|_| ()),
        client.mget(&[0, n as u32]).map(|_| ()),
    ] {
        match result {
            Err(ClientError::Server { status, .. }) => assert_eq!(
                status, STATUS_OUT_OF_RANGE,
                "out-of-range must answer OUT_OF_RANGE"
            ),
            other => panic!("out-of-range must fail with a server error, got {other:?}"),
        }
    }
    assert_eq!(
        client.get(0).expect("GET after error"),
        truth.get(0).unwrap()
    );

    // Unknown opcode: BAD_OPCODE, connection survives.
    let mut frame = 1u32.to_le_bytes().to_vec();
    frame.push(0x6E);
    let (status, _) = client.send_raw(&frame).expect("unknown opcode answer");
    assert_eq!(status, STATUS_BAD_OPCODE);
    assert_eq!(
        client.get(0).expect("GET after bad opcode"),
        truth.get(0).unwrap()
    );

    // Malformed frames: oversized length prefix and a lying MGET count.
    // Both answer BAD_FRAME and close the connection.
    let mut bad = Client::connect_retry(addr, deadline).expect("connect malformed");
    let (status, _) = bad
        .send_raw(&u32::MAX.to_le_bytes())
        .expect("oversized answer");
    assert_eq!(status, STATUS_BAD_FRAME);
    assert!(
        bad.get(0).is_err(),
        "connection must close after malformed frame"
    );
    let mut bad = Client::connect_retry(addr, deadline).expect("connect lying mget");
    let mut frame = 13u32.to_le_bytes().to_vec();
    frame.push(protocol::OP_MGET);
    frame.extend_from_slice(&9u32.to_le_bytes());
    frame.extend_from_slice(&[0u8; 8]);
    let (status, _) = bad.send_raw(&frame).expect("lying MGET answer");
    assert_eq!(status, STATUS_BAD_FRAME);

    // A torn frame followed by a hangup must not take the server down.
    {
        let mut torn = Client::connect_retry(addr, deadline).expect("connect torn");
        let mut partial = 5u32.to_le_bytes().to_vec();
        partial.push(protocol::OP_GET);
        partial.push(0);
        let _ = torn.send_raw_no_response(&partial);
    }
    let mut again = Client::connect_retry(addr, deadline).expect("reconnect after torn");
    assert_eq!(
        again.get(0).expect("GET after torn frame"),
        truth.get(0).unwrap()
    );

    println!("serve_load: smoke ok (GET/MGET/STAT/pipelined byte-identical, error frames correct)");
}

/// Carries an existing artifact's rows into `report` so this run appends
/// instead of replacing (CI collects the backend matrix this way).
fn carry_over_rows(report: &mut rlz_bench::report::Report, path: &Path) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return; // nothing to append to
    };
    let Ok(parsed) = rlz_bench::json::parse(&text) else {
        eprintln!(
            "serve_load: existing {} is not valid JSON; replacing it",
            path.display()
        );
        return;
    };
    if parsed.get("bench").and_then(rlz_bench::json::Value::as_str) != Some("serve") {
        eprintln!(
            "serve_load: existing {} is not a serve artifact; replacing it",
            path.display()
        );
        return;
    }
    let Some(rows) = parsed.get("rows").and_then(rlz_bench::json::Value::as_arr) else {
        return;
    };
    // Prepend in reverse so the carried rows keep their original order.
    for row in rows.iter().rev() {
        report.prepend_rendered(row.to_json());
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&raw);

    let Some(store_dir) = args.store.clone() else {
        eprintln!("serve_load: --store DIR is required");
        usage()
    };
    if args.build {
        build_store(&store_dir, &args.scaled);
        if args.build_only {
            return ExitCode::SUCCESS;
        }
    }
    let truth: Arc<dyn DocStore> = match RlzStore::open(&store_dir) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!(
                "serve_load: open store {} failed ({e}); pass --build to create it",
                store_dir.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let num_docs = truth.num_docs();

    // Either drive an external server or spin one up in-process.
    let mut in_process = None;
    let addr = match args.addr {
        Some(addr) => {
            if Client::connect_retry(addr, Duration::from_secs(args.wait_secs)).is_err() {
                eprintln!(
                    "serve_load: no server reachable at {addr} within {}s",
                    args.wait_secs
                );
                return ExitCode::FAILURE;
            }
            addr
        }
        None => {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let handle = rlz_serve::serve(
                Arc::clone(&truth),
                listener,
                rlz_serve::ServeConfig {
                    backend: args.backend,
                    cache_bytes: args.cache_bytes,
                    ..rlz_serve::ServeConfig::default()
                },
            )
            .expect("start in-process server");
            let addr = handle.addr();
            println!(
                "serve_load: started in-process server on {addr} ({} backend, cache {})",
                handle.backend().name(),
                if args.cache_bytes > 0 { "on" } else { "off" }
            );
            in_process = Some(handle);
            addr
        }
    };

    if args.shutdown_only {
        let mut client = Client::connect(addr).expect("connect for shutdown");
        client
            .shutdown_server()
            .expect("SHUTDOWN must be acknowledged");
        println!("serve_load: server acknowledged shutdown");
        if let Some(handle) = in_process {
            handle.join();
        }
        return ExitCode::SUCCESS;
    }

    // Row labels come from the live server, so they are truthful for
    // external servers too.
    let labels = {
        let mut client = Client::connect(addr).expect("connect for STAT");
        let stats = client.server_stat().expect("server STAT");
        ServerLabels::from_stat(&stats)
    };

    if args.smoke {
        smoke(addr, truth.as_ref());
    }

    let load = LoadConfig {
        connections: args.connections,
        batch: args.batch,
        pipeline: args.pipeline,
        frames: (args.requests / args.batch.max(1)).max(1),
        dist: args.dist,
        rate: args.rate,
        seed: args.scaled.seed,
        verify: args.verify,
    };
    // run_load verifies only when the config's verify flag asks for it.
    let truth_ref: Option<&dyn DocStore> = Some(truth.as_ref());
    println!(
        "serve_load: {} load, {} connections, batch {}, pipeline {}, {} frames, {} ids",
        if load.rate.is_some() {
            "open-loop"
        } else {
            "closed-loop"
        },
        load.connections,
        load.batch,
        load.pipeline,
        load.frames,
        load.dist.name(),
    );
    let result = match serve::run_load(addr, truth_ref, num_docs, &load) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve_load: FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    serve::print_serve_header();
    serve::print_serve_row(&load, &result, labels);
    println!(
        "serve_load: {} docs in {:.2}s = {:.0} docs/s, {:.1} MiB/s{}",
        result.docs,
        result.elapsed_s,
        result.docs_per_s,
        result.mb_per_s,
        if load.verify {
            " (every document verified against DocStore::get)"
        } else {
            ""
        }
    );

    let mut report = rlz_bench::report::Report::new("serve");
    report.push(serve::result_row(
        &load,
        &result,
        truth.stats().payload_bytes,
        labels,
    ));
    if args.append {
        carry_over_rows(&mut report, &args.out);
    }
    report.write(&args.out).expect("write BENCH_serve.json");

    if args.shutdown {
        let mut client = Client::connect(addr).expect("connect for shutdown");
        client
            .shutdown_server()
            .expect("SHUTDOWN must be acknowledged");
        println!("serve_load: server acknowledged shutdown");
    }
    if let Some(handle) = in_process {
        if args.shutdown {
            handle.join();
        } else {
            handle.shutdown();
        }
    }
    ExitCode::SUCCESS
}
