//! Figure 3: factor-length histograms across sample periods (GOV2-like).
use rlz_bench::{gov2_collection, ScaledConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ScaledConfig::from_args(&args);
    let c = gov2_collection(&cfg);
    rlz_bench::tables::fig3(&c, &cfg);
}
