//! Read-path throughput benchmark: factor decode + expansion docs/s and
//! MiB/s for every paper pair coding, fused zero-allocation pipeline vs the
//! two-step `decode_document` + `expand` oracle. Writes the
//! machine-readable `BENCH_decode.json` artifact.
//!
//! `cargo run --release -p rlz-bench --bin decode [-- --size-mb N]`

use rlz_bench::{gov2_collection, ScaledConfig};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ScaledConfig::from_args(&args);
    let gov2 = gov2_collection(&cfg);
    let report = rlz_bench::tables::decode_table(
        "Decode throughput — fused zero-allocation pipeline vs two-step oracle",
        &gov2,
        &cfg,
    );
    report
        .write(Path::new("BENCH_decode.json"))
        .expect("write BENCH_decode.json");
}
