//! Regenerates every table and figure of the paper in sequence.
//! `cargo run --release -p rlz-bench --bin run_all [-- --size-mb N]`
use rlz_bench::{gov2_collection, wikipedia_collection, ScaledConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ScaledConfig::from_args(&args);
    println!(
        "== RLZ reproduction: all tables/figures at {} MiB scale ==\n",
        cfg.collection_bytes >> 20
    );
    rlz_bench::tables::table1();
    println!("\n{}\n", "=".repeat(66));

    let gov2 = gov2_collection(&cfg);
    let wiki = wikipedia_collection(&cfg);

    rlz_bench::tables::factor_stats_table(
        "Table 2 — RLZ dictionary statistics, GOV2-like corpus",
        &gov2,
        &cfg,
    );
    rlz_bench::tables::factor_stats_table(
        "Table 3 — RLZ dictionary statistics, Wikipedia-like corpus",
        &wiki,
        &cfg,
    );
    rlz_bench::tables::fig3(&gov2, &cfg);

    rlz_bench::tables::rlz_retrieval_table(
        "Table 4 — RLZ on GOV2-like corpus (crawl order)",
        &gov2,
        &cfg,
    );
    let gov2_sorted = gov2.url_sorted();
    rlz_bench::tables::rlz_retrieval_table(
        "Table 5 — RLZ on URL-sorted GOV2-like corpus",
        &gov2_sorted,
        &cfg,
    );
    rlz_bench::tables::baseline_retrieval_table(
        "Table 6 — baselines on GOV2-like corpus (crawl order)",
        &gov2,
        &cfg,
    );
    rlz_bench::tables::baseline_retrieval_table(
        "Table 7 — baselines on URL-sorted GOV2-like corpus",
        &gov2_sorted,
        &cfg,
    );
    rlz_bench::tables::rlz_retrieval_table("Table 8 — RLZ on Wikipedia-like corpus", &wiki, &cfg);
    rlz_bench::tables::baseline_retrieval_table(
        "Table 9 — baselines on Wikipedia-like corpus",
        &wiki,
        &cfg,
    );
    rlz_bench::tables::table10(&wiki, &cfg);
    rlz_bench::tables::concurrent_retrieval_table(
        "Concurrent retrieval — GOV2-like corpus (extension; not in the paper)",
        &gov2,
        &cfg,
    );
    rlz_bench::tables::factorize_table(
        "Factorization throughput — q-gram indexed vs plain matcher (extension)",
        &gov2,
        &cfg,
    )
    .write(std::path::Path::new("BENCH_factorize.json"))
    .expect("write BENCH_factorize.json");
    rlz_bench::tables::batch_table(
        "Batch retrieval — unordered vs offset-ordered vs coalesced (extension)",
        &gov2,
        &cfg,
    )
    .write(std::path::Path::new("BENCH_batch.json"))
    .expect("write BENCH_batch.json");
    rlz_bench::tables::decode_table(
        "Decode throughput — fused zero-allocation pipeline vs two-step oracle (extension)",
        &gov2,
        &cfg,
    )
    .write(std::path::Path::new("BENCH_decode.json"))
    .expect("write BENCH_decode.json");
    rlz_bench::serve::serve_table(
        "Served retrieval — rlz-serve over loopback TCP (extension)",
        &gov2,
        &cfg,
    )
    .write(std::path::Path::new("BENCH_serve.json"))
    .expect("write BENCH_serve.json");
}
