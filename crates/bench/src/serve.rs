//! Served-retrieval load generation: drive an `rlz-serve` endpoint with
//! open- or closed-loop load and measure throughput and latency
//! percentiles — the metric random-access stores are actually judged by
//! (served extract latency, not in-process microbenchmarks).
//!
//! The driver runs `connections` client threads over one request-id
//! stream. Closed-loop mode keeps `pipeline` request frames outstanding
//! per connection (1 = strict request/response ping-pong; >1 exercises
//! the server's pipelining-aware frame draining) and sends the next
//! request the moment a response lands (measures service capacity).
//! Open-loop mode paces requests against a wall-clock schedule at a
//! target rate and measures latency **from the scheduled send time**, so
//! server-side queueing is charged to the server rather than silently
//! absorbed (avoiding coordinated omission), with one outstanding request
//! per connection.
//!
//! With verification enabled, every returned document is byte-compared
//! against `DocStore::get`; ground truth is decoded **once per unique id
//! per connection** and cached, so verification cost does not scale with
//! the Zipf repeat factor of the stream.

use crate::report::{Report, Row};
use rlz_corpus::access;
use rlz_serve::Client;
use rlz_store::DocStore;
use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Request-id distribution for generated load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dist {
    /// Ascending ids (the paper's batch-processing pattern).
    Sequential,
    /// Zipf-skewed single draws (popularity skew without query grouping).
    Zipf,
    /// The paper's query-log model: Zipf popularity in runs of 20
    /// results per query.
    QueryLog,
}

impl Dist {
    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<Dist> {
        match name {
            "seq" | "sequential" => Some(Dist::Sequential),
            "zipf" => Some(Dist::Zipf),
            "querylog" | "query-log" => Some(Dist::QueryLog),
            _ => None,
        }
    }

    /// Short table name.
    pub fn name(&self) -> &'static str {
        match self {
            Dist::Sequential => "seq",
            Dist::Zipf => "zipf",
            Dist::QueryLog => "querylog",
        }
    }

    /// Generates `count` document ids over `num_docs`.
    pub fn ids(&self, num_docs: usize, count: usize, seed: u64) -> Vec<u32> {
        match self {
            Dist::Sequential => access::sequential(num_docs, count),
            Dist::Zipf => access::query_log(num_docs, count, 1, seed),
            Dist::QueryLog => access::query_log(num_docs, count, 20, seed),
        }
    }
}

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections (one thread each).
    pub connections: usize,
    /// Documents per request: 1 sends GET frames, >1 sends MGET frames of
    /// this size.
    pub batch: usize,
    /// Request frames kept outstanding per connection in closed-loop mode
    /// (1 = no pipelining). Open-loop runs always use depth 1.
    pub pipeline: usize,
    /// Total request frames across all connections.
    pub frames: usize,
    /// Request-id distribution.
    pub dist: Dist,
    /// `Some(rate)` = open-loop at `rate` requests/second total;
    /// `None` = closed-loop.
    pub rate: Option<f64>,
    /// Id-stream seed.
    pub seed: u64,
    /// Verify every returned document against a local ground-truth store.
    pub verify: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 4,
            batch: 1,
            pipeline: 1,
            frames: 2000,
            dist: Dist::QueryLog,
            rate: None,
            seed: 0x5E17E,
            verify: false,
        }
    }
}

/// Aggregated measurements of one load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadResult {
    /// Request frames completed.
    pub frames: usize,
    /// Documents delivered (frames × batch).
    pub docs: u64,
    /// Document payload bytes delivered.
    pub bytes: u64,
    /// Wall-clock seconds across the whole run.
    pub elapsed_s: f64,
    /// Delivered documents per second.
    pub docs_per_s: f64,
    /// Delivered payload MiB per second.
    pub mb_per_s: f64,
    /// Latency percentiles in microseconds (per request frame, send to
    /// full response; open-loop latencies are measured from the scheduled
    /// send time, pipelined latencies from the frame's actual send).
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Request frames the server answered with ERR_BUSY (load shedding or
    /// the connection cap); these complete the protocol exchange but
    /// deliver no documents and are excluded from the latency percentiles.
    pub shed: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Compares `got` against ground truth for `id`, decoding each unique id
/// at most once per cache.
fn verify_doc(
    truth: &dyn DocStore,
    cache: &mut HashMap<u32, Vec<u8>>,
    id: u32,
    got: &[u8],
) -> Result<(), String> {
    let want = match cache.entry(id) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(e) => e.insert(
            truth
                .get(id as usize)
                .map_err(|e| format!("truth get {id}: {e}"))?,
        ),
    };
    if got != want.as_slice() {
        return Err(format!("doc {id} mismatch"));
    }
    Ok(())
}

/// Drives `cfg` worth of load at `addr`. With `truth`, every returned
/// document is compared byte-for-byte against `DocStore::get` and any
/// mismatch is an error.
pub fn run_load(
    addr: SocketAddr,
    truth: Option<&dyn DocStore>,
    num_docs: usize,
    cfg: &LoadConfig,
) -> Result<LoadResult, String> {
    assert!(cfg.batch >= 1 && cfg.connections >= 1 && cfg.frames >= 1 && cfg.pipeline >= 1);
    // The verify flag is authoritative: asking for verification without a
    // ground-truth store is an error, not a silent no-op.
    let truth = match (cfg.verify, truth) {
        (true, None) => return Err("verify requested but no ground-truth store given".into()),
        (true, Some(t)) => Some(t),
        (false, _) => None,
    };
    let ids = cfg.dist.ids(num_docs, cfg.frames * cfg.batch, cfg.seed);
    let frames: Vec<&[u32]> = ids.chunks(cfg.batch).collect();
    // All connections rendezvous after connect + truth warm-up, then the
    // first one through publishes the shared start instant — the run's
    // wall clock and the open-loop schedule origin.
    let barrier = std::sync::Barrier::new(cfg.connections);
    let start_cell: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    let per_frame = cfg.rate.map(|r| Duration::from_secs_f64(1.0 / r.max(1e-6)));
    // Open-loop pacing keeps one outstanding request per connection so the
    // schedule, not the pipeline window, controls the send times.
    let depth = if per_frame.is_some() { 1 } else { cfg.pipeline };

    struct ConnStats {
        latencies: Vec<u64>,
        bytes: u64,
        shed: u64,
        end: Duration,
    }

    let results: Vec<Result<ConnStats, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections)
            .map(|conn_idx| {
                let frames = &frames;
                let barrier = &barrier;
                let start_cell = &start_cell;
                scope.spawn(move || -> Result<ConnStats, String> {
                    // Connect and decode this connection's ground truth
                    // before the measured window opens: verification inside
                    // the run is then a pure byte comparison, so the local
                    // decodes (bench bookkeeping, not client work) cannot
                    // contend with the server for CPU mid-measurement.
                    // Setup must NOT early-return before the barrier — a
                    // thread that never reaches the rendezvous would leave
                    // every sibling blocked in `wait()` forever — so its
                    // result is carried across and propagated after.
                    let mut truth_cache: HashMap<u32, Vec<u8>> = HashMap::new();
                    let setup = (|| -> Result<Client, String> {
                        let client =
                            Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                        if let Some(store) = truth {
                            let mut f = conn_idx;
                            while f < frames.len() {
                                for &id in frames[f] {
                                    if let std::collections::hash_map::Entry::Vacant(e) =
                                        truth_cache.entry(id)
                                    {
                                        e.insert(
                                            store
                                                .get(id as usize)
                                                .map_err(|e| format!("truth get {id}: {e}"))?,
                                        );
                                    }
                                }
                                f += cfg.connections;
                            }
                        }
                        Ok(client)
                    })();
                    // Both modes begin at the shared start instant, so
                    // `start.elapsed()` below is the run's true wall clock
                    // (threads starting early would otherwise overstate
                    // throughput).
                    barrier.wait();
                    let mut client = setup?;
                    let start = *start_cell.get_or_init(Instant::now);
                    let mut latencies = Vec::new();
                    let mut bytes = 0u64;
                    let mut shed = 0u64;
                    let mut buf = Vec::new();
                    // Frame f goes to connection f % connections; with a
                    // rate, frame f is due at start + f/rate globally.
                    // `sent` holds the send instants of in-flight frames.
                    let mut sent: VecDeque<Instant> = VecDeque::with_capacity(depth);
                    let mut next = conn_idx;
                    let mut recv = conn_idx;
                    while recv < frames.len() {
                        // Fill the pipeline window.
                        while sent.len() < depth && next < frames.len() {
                            let batch = frames[next];
                            let due = match per_frame {
                                Some(gap) => {
                                    let due = start + gap * (next as u32);
                                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                                        std::thread::sleep(wait);
                                    }
                                    due
                                }
                                None => Instant::now(),
                            };
                            if batch.len() == 1 {
                                client
                                    .send_get(batch[0])
                                    .map_err(|e| format!("GET {}: {e}", batch[0]))?;
                            } else {
                                client
                                    .send_mget(batch)
                                    .map_err(|e| format!("MGET ({} ids): {e}", batch.len()))?;
                            }
                            sent.push_back(due);
                            next += cfg.connections;
                        }
                        // Latency is captured the moment the response is
                        // fully received; ground-truth verification (one
                        // local decode per unique document) happens outside
                        // the measured window so it cannot inflate the
                        // recorded percentiles.
                        let batch = frames[recv];
                        let due = sent.pop_front().expect("a sent frame per pending recv");
                        if batch.len() == 1 {
                            buf.clear();
                            match client.recv_get_into(&mut buf) {
                                Ok(()) => {
                                    latencies.push(due.elapsed().as_micros() as u64);
                                    bytes += buf.len() as u64;
                                    if let Some(store) = truth {
                                        verify_doc(store, &mut truth_cache, batch[0], &buf)?;
                                    }
                                }
                                // An ERR_BUSY answer is the server shedding
                                // load as designed, not a failed run: count
                                // it and keep going on the same connection.
                                Err(e) if e.is_busy() => shed += 1,
                                Err(e) => return Err(format!("GET {}: {e}", batch[0])),
                            }
                        } else {
                            match client.recv_mget(batch.len()) {
                                Ok(docs) => {
                                    latencies.push(due.elapsed().as_micros() as u64);
                                    for (doc, &id) in docs.iter().zip(batch) {
                                        bytes += doc.len() as u64;
                                        if let Some(store) = truth {
                                            verify_doc(store, &mut truth_cache, id, doc)?;
                                        }
                                    }
                                }
                                Err(e) if e.is_busy() => shed += 1,
                                Err(e) => return Err(format!("MGET ({} ids): {e}", batch.len())),
                            }
                        }
                        recv += cfg.connections;
                    }
                    Ok(ConnStats {
                        latencies,
                        bytes,
                        shed,
                        end: start.elapsed(),
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load connection thread panicked"))
            .collect()
    });

    let mut latencies = Vec::with_capacity(frames.len());
    let mut bytes = 0u64;
    let mut shed = 0u64;
    let mut elapsed = Duration::ZERO;
    for r in results {
        let stats = r?;
        latencies.extend_from_slice(&stats.latencies);
        bytes += stats.bytes;
        shed += stats.shed;
        elapsed = elapsed.max(stats.end);
    }
    latencies.sort_unstable();
    let elapsed_s = elapsed.as_secs_f64().max(1e-9);
    let docs = (latencies.len() * cfg.batch) as u64;
    Ok(LoadResult {
        frames: latencies.len(),
        docs,
        bytes,
        elapsed_s,
        docs_per_s: docs as f64 / elapsed_s,
        mb_per_s: bytes as f64 / (1024.0 * 1024.0) / elapsed_s,
        p50_us: percentile(&latencies, 50.0),
        p95_us: percentile(&latencies, 95.0),
        p99_us: percentile(&latencies, 99.0),
        shed,
    })
}

/// Server-side properties a load row is labelled with (the load driver
/// reads them from the extended STAT response or the in-process handle).
#[derive(Debug, Clone, Copy)]
pub struct ServerLabels {
    /// `"on"` when the hot-document cache is enabled.
    pub cache: &'static str,
    /// The event backend name (`"epoll"` / `"portable"`).
    pub backend: &'static str,
    /// `"on"` when the server collects metrics (the default); `"off"` is
    /// the instrumentation-cost ablation. Part of the row identity so the
    /// trend checker never compares across the ablation boundary.
    pub metrics: &'static str,
}

impl ServerLabels {
    /// Labels read from a live server's extended STAT response. STAT does
    /// not carry the metrics switch, so this assumes the default (`"on"`);
    /// a driver benchmarking the ablation sets the field itself.
    pub fn from_stat(stats: &rlz_serve::ServeStats) -> Self {
        ServerLabels {
            cache: if stats.cache_budget_bytes > 0 {
                "on"
            } else {
                "off"
            },
            backend: stats.backend_name(),
            metrics: "on",
        }
    }
}

/// Renders one result as a report row (the `BENCH_serve.json` schema).
pub fn result_row(
    cfg: &LoadConfig,
    result: &LoadResult,
    payload_bytes: u64,
    labels: ServerLabels,
) -> Row {
    Row::new()
        .str(
            "workload",
            if cfg.rate.is_some() { "open" } else { "closed" },
        )
        .str("dist", cfg.dist.name())
        // Part of the row identity: verified closed-loop runs spend client
        // CPU on ground-truth decodes, so their throughput must never be
        // trend-compared against unverified measurements.
        .str("verified", if cfg.verify { "yes" } else { "no" })
        .str("cache", labels.cache)
        .str("backend", labels.backend)
        .str("metrics", labels.metrics)
        .int("connections", cfg.connections as u64)
        .int("batch", cfg.batch as u64)
        .int("pipeline", cfg.pipeline as u64)
        .int("requests", result.frames as u64)
        .int("payload_bytes", payload_bytes)
        .num("docs_per_s", result.docs_per_s)
        .num("mb_per_s", result.mb_per_s)
        .int("p50_us", result.p50_us)
        .int("p95_us", result.p95_us)
        .int("p99_us", result.p99_us)
        .int("shed", result.shed)
}

const SERVE_WIDTHS: [usize; 12] = [8, 9, 6, 6, 5, 6, 8, 10, 9, 8, 8, 6];

/// Prints the serve-table header.
pub fn print_serve_header() {
    crate::print_row(
        &[
            "workload".into(),
            "dist".into(),
            "conns".into(),
            "batch".into(),
            "pipe".into(),
            "cache".into(),
            "frames".into(),
            "docs/s".into(),
            "p50(us)".into(),
            "p95(us)".into(),
            "p99(us)".into(),
            "shed".into(),
        ],
        &SERVE_WIDTHS,
    );
}

/// Prints one serve-table row.
pub fn print_serve_row(cfg: &LoadConfig, result: &LoadResult, labels: ServerLabels) {
    crate::print_row(
        &[
            if cfg.rate.is_some() { "open" } else { "closed" }.into(),
            cfg.dist.name().into(),
            cfg.connections.to_string(),
            cfg.batch.to_string(),
            cfg.pipeline.to_string(),
            labels.cache.into(),
            result.frames.to_string(),
            format!("{:.0}", result.docs_per_s),
            result.p50_us.to_string(),
            result.p95_us.to_string(),
            result.p99_us.to_string(),
            result.shed.to_string(),
        ],
        &SERVE_WIDTHS,
    );
}

/// The `run_all`/standalone served-retrieval table: builds an RLZ store
/// from `collection`, serves it in-process on a loopback socket, and
/// sweeps connections × pipelining depth × hot-document cache on/off
/// under closed-loop load, plus a Zipf cache-effectiveness pair and one
/// paced open-loop run. Returns the `BENCH_serve.json` report.
pub fn serve_table(
    title: &str,
    collection: &rlz_corpus::Collection,
    cfg: &crate::ScaledConfig,
) -> Report {
    use std::sync::Arc;

    println!("{title}");
    println!(
        "(in-process rlz-serve on loopback, file-backed RLZ store, ZV coding; \
         latency measured per request frame)\n"
    );
    let work = crate::WorkDir::new("serve-tbl");
    let dict_size = cfg.dict_sizes()[0];
    let (dir, pct) = crate::build_rlz_store(
        &work,
        "serve-rlz",
        collection,
        dict_size,
        rlz_core::PairCoding::ZV,
        cfg,
    );
    let store = rlz_store::RlzStore::open(&dir).expect("open rlz store");
    let store_stats = rlz_store::DocStore::stats(&store);
    let num_docs = store_stats.num_docs as usize;
    // Budget sized to hold the hot set but not the whole collection, so
    // the on/off comparison measures a working cache, not a full mirror.
    let cache_budget = (collection.total_bytes() / 4).max(1 << 20);
    let frames = (cfg.requests / 4).clamp(200, 20_000);
    let mut report = Report::new("serve");

    // The third sweep leg is the instrumentation-cost ablation: the same
    // cache-off workload with metrics collection disabled, so the trend
    // data carries a direct metrics-on vs metrics-off p99 comparison.
    for (cache_bytes, metrics) in [(0usize, true), (cache_budget, true), (0usize, false)] {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let handle = rlz_serve::serve(
            Arc::new(store.clone()),
            listener,
            rlz_serve::ServeConfig {
                threads: cfg.threads.clamp(1, 4),
                batch_threads: 1,
                allow_shutdown: true,
                backend: rlz_serve::Backend::Auto,
                cache_bytes,
                max_connections: 0,
                idle_timeout: None,
                shed_queue_depth: 0,
                writer: None,
                metrics,
                metrics_addr: None,
            },
        )
        .expect("start in-process server");
        let addr = handle.addr();
        let labels = ServerLabels {
            cache: if cache_bytes > 0 { "on" } else { "off" },
            backend: handle.backend().name(),
            metrics: if metrics { "on" } else { "off" },
        };
        println!(
            "store: Enc {pct:.2}%, {num_docs} docs, serving on {addr} \
             ({} backend, cache {}, metrics {})\n",
            labels.backend, labels.cache, labels.metrics
        );
        print_serve_header();

        let mut closed_1conn_rate = 0.0f64;
        for (connections, pipeline, batch) in
            [(1, 1, 1), (4, 1, 1), (1, 8, 1), (4, 8, 1), (4, 1, 16)]
        {
            let load = LoadConfig {
                connections,
                batch,
                pipeline,
                frames: frames / batch.max(1),
                dist: Dist::QueryLog,
                rate: None,
                seed: cfg.seed ^ 0x5E17E,
                verify: false,
            };
            let result = run_load(addr, None, num_docs, &load).expect("closed-loop load");
            if connections == 1 && pipeline == 1 && batch == 1 {
                closed_1conn_rate = result.docs_per_s;
            }
            print_serve_row(&load, &result, labels);
            report.push(result_row(
                &load,
                &result,
                store_stats.payload_bytes,
                labels,
            ));
        }
        // The ablation leg only needs the closed-loop sweep for the
        // instrumentation-cost comparison; skip the cache/pacing studies.
        if !metrics {
            println!();
            handle.shutdown();
            continue;
        }
        // Zipf single-GET pair: the cache-effectiveness comparison the
        // paper's skewed access patterns motivate.
        let zipf = LoadConfig {
            connections: 2,
            batch: 1,
            pipeline: 1,
            frames,
            dist: Dist::Zipf,
            rate: None,
            seed: cfg.seed ^ 0x21FF,
            verify: false,
        };
        let result = run_load(addr, None, num_docs, &zipf).expect("zipf load");
        print_serve_row(&zipf, &result, labels);
        report.push(result_row(
            &zipf,
            &result,
            store_stats.payload_bytes,
            labels,
        ));
        // Open-loop at ~60% of single-connection capacity: queueing delay
        // stays visible in the tail percentiles without saturating.
        let open = LoadConfig {
            connections: 2,
            batch: 1,
            pipeline: 1,
            frames,
            dist: Dist::QueryLog,
            rate: Some((closed_1conn_rate * 0.6).max(50.0)),
            seed: cfg.seed ^ 0x0BE4,
            verify: false,
        };
        let result = run_load(addr, None, num_docs, &open).expect("open-loop load");
        print_serve_row(&open, &result, labels);
        report.push(result_row(
            &open,
            &result,
            store_stats.payload_bytes,
            labels,
        ));
        println!();
        handle.shutdown();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_order_statistics() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 51);
        assert_eq!(percentile(&sorted, 95.0), 95);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn dist_parsing() {
        assert_eq!(Dist::parse("seq"), Some(Dist::Sequential));
        assert_eq!(Dist::parse("zipf"), Some(Dist::Zipf));
        assert_eq!(Dist::parse("querylog"), Some(Dist::QueryLog));
        assert_eq!(Dist::parse("wat"), None);
        assert_eq!(Dist::QueryLog.name(), "querylog");
    }

    #[test]
    fn dist_streams_are_in_range_and_sized() {
        for dist in [Dist::Sequential, Dist::Zipf, Dist::QueryLog] {
            let ids = dist.ids(50, 500, 9);
            assert_eq!(ids.len(), 500, "{}", dist.name());
            assert!(ids.iter().all(|&id| id < 50), "{}", dist.name());
        }
    }
}
