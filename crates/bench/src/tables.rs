//! One function per table/figure of the paper's evaluation. Each prints the
//! same rows/columns the paper reports, at the harness's miniature scale.

use crate::{
    block_label, build_ascii_store, build_blocked_store, build_rlz_store,
    concurrent_docs_per_second, dict_label, measure_store_budgeted, print_row, ScaledConfig,
    WorkDir,
};
use rlz_core::{Dictionary, FactorStats, PairCoding, RlzCompressor, SampleStrategy};
use rlz_corpus::{access, Collection};
use rlz_store::{AsciiStore, BlockCodec, BlockedStore, DocStore, RlzStore};
use std::time::Duration;

/// Wall-clock budget per (store, access pattern) measurement.
const MEASURE_BUDGET: Duration = Duration::from_secs(3);

/// Table 1: the worked Refine example — verified programmatically and
/// printed in the paper's layout.
pub fn table1() {
    let d = b"cabbaabba";
    let dict = Dictionary::from_bytes(d.to_vec());
    println!("Table 1 — Refine over d = \"cabbaabba\", x = \"bbaancabb\"\n");
    println!("i   : 1 2 3 4 5 6 7 8 9");
    let chars: Vec<String> = d.iter().map(|&b| (b as char).to_string()).collect();
    println!("d[i]: {}", chars.join(" "));
    let sa = dict.suffix_array().as_slice();
    let printed: Vec<String> = sa.iter().map(|&s| (s + 1).to_string()).collect();
    println!(
        "SA  : {}  (1-based; the paper prints the inverse array)",
        printed.join(" ")
    );
    println!("\nsorted suffixes:");
    for (rank, &s) in sa.iter().enumerate() {
        println!(
            "  {:>2}  {}",
            rank + 1,
            String::from_utf8_lossy(&d[s as usize..])
        );
    }
    let rlz = RlzCompressor::new(dict, PairCoding::UV);
    let factors = rlz.factorize(b"bbaancabb");
    println!("\nfactorization of x (0-based positions):");
    for f in &factors {
        if f.is_literal() {
            println!("  ('{}', 0)", f.pos as u8 as char);
        } else {
            println!("  ({}, {})", f.pos, f.len);
        }
    }
    assert_eq!(
        rlz.decompress(&rlz.compress(b"bbaancabb")).unwrap(),
        b"bbaancabb"
    );
    println!("\nround-trip verified.");
}

/// Tables 2 and 3: average factor length and % unused dictionary bytes for
/// dictionary sizes × sample lengths (0.5/1/2/5 KB).
pub fn factor_stats_table(title: &str, collection: &Collection, cfg: &ScaledConfig) {
    println!("{title}");
    println!(
        "(paper: dict 2/1/0.5 GB on 426/256 GB; here the same fractions of {:.0} MiB)\n",
        collection.total_bytes() as f64 / (1 << 20) as f64
    );
    let widths = [10usize, 10, 10, 10];
    print_row(
        &[
            "Size".into(),
            "Samp.(KB)".into(),
            "Avg.Fact.".into(),
            "Unused(%)".into(),
        ],
        &widths,
    );
    for dict_size in cfg.dict_sizes() {
        for sample_kb in [0.5f64, 1.0, 2.0, 5.0] {
            let sample_len = (sample_kb * 1024.0) as usize;
            let dict = Dictionary::sample(
                &collection.data,
                dict_size,
                sample_len,
                SampleStrategy::Evenly,
            );
            let rlz = RlzCompressor::new(dict, PairCoding::UV);
            let mut stats = FactorStats::new(dict_size);
            for doc in collection.iter_docs() {
                stats.record(&rlz.factorize(doc));
            }
            print_row(
                &[
                    dict_label(dict_size),
                    format!("{sample_kb:.1}"),
                    format!("{:.2}", stats.avg_factor_len()),
                    format!("{:.2}", stats.unused_dict_percent()),
                ],
                &widths,
            );
        }
    }
    println!();
}

/// Figure 3: frequency histogram of factor length values for the smallest
/// dictionary fraction and sample periods 512 B – 10 KB, printed as
/// log-binned series.
pub fn fig3(collection: &Collection, cfg: &ScaledConfig) {
    println!("Figure 3 — factor-length histogram (log-binned counts)");
    let dict_size = *cfg.dict_sizes().last().expect("dict sizes");
    println!(
        "(dict {} = the paper's 0.5 GB fraction; series = sample period)\n",
        dict_label(dict_size)
    );
    let sample_lens = [512usize, 1024, 2048, 5120, 10240];
    let mut all_bins: Vec<Vec<(usize, usize, u64)>> = Vec::new();
    for &sample_len in &sample_lens {
        let dict = Dictionary::sample(
            &collection.data,
            dict_size,
            sample_len,
            SampleStrategy::Evenly,
        );
        let rlz = RlzCompressor::new(dict, PairCoding::UV);
        let mut stats = FactorStats::new(dict_size);
        for doc in collection.iter_docs() {
            stats.record(&rlz.factorize(doc));
        }
        println!(
            "  sample {:>5}B: {:5.1}% of lengths < 100, {:5.1}% < sample length",
            sample_len,
            stats.fraction_below(100) * 100.0,
            stats.fraction_below(sample_len) * 100.0
        );
        all_bins.push(stats.log_binned_histogram());
    }
    println!();
    let max_bins = all_bins.iter().map(Vec::len).max().unwrap_or(0);
    let mut header = vec!["len-bin".to_string()];
    header.extend(sample_lens.iter().map(|s| format!("{s}B")));
    let widths = vec![14usize, 9, 9, 9, 9, 9];
    print_row(&header, &widths);
    for b in 0..max_bins {
        let mut cells = Vec::with_capacity(sample_lens.len() + 1);
        let range = all_bins
            .iter()
            .find_map(|bins| bins.get(b).map(|&(lo, hi, _)| format!("{lo}-{hi}")))
            .unwrap_or_default();
        cells.push(range);
        for bins in &all_bins {
            cells.push(
                bins.get(b)
                    .map(|&(_, _, count)| count.to_string())
                    .unwrap_or_else(|| "0".into()),
            );
        }
        print_row(&cells, &widths);
    }
    println!();
}

/// Tables 4, 5 and 8: RLZ encoding % and retrieval rates for dictionary
/// sizes × pair codings.
pub fn rlz_retrieval_table(title: &str, collection: &Collection, cfg: &ScaledConfig) {
    println!("{title}\n");
    let widths = [10usize, 8, 9, 12, 11];
    print_row(
        &[
            "Size".into(),
            "Pos-Len".into(),
            "Enc.(%)".into(),
            "Sequential".into(),
            "Query Log".into(),
        ],
        &widths,
    );
    let work = WorkDir::new("rlz-tbl");
    for dict_size in cfg.dict_sizes() {
        for coding in PairCoding::PAPER_SET {
            let tag = format!("{}-{}", dict_size, coding.name());
            let (dir, pct) = build_rlz_store(&work, &tag, collection, dict_size, coding, cfg);
            let store = RlzStore::open(&dir).expect("open rlz");
            let rates = measure_store_budgeted(&store, cfg, MEASURE_BUDGET);
            print_row(
                &[
                    dict_label(dict_size),
                    coding.name(),
                    format!("{pct:.2}"),
                    format!("{:.0}", rates.sequential),
                    format!("{:.0}", rates.query_log),
                ],
                &widths,
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    println!();
}

/// Tables 6, 7 and 9: baseline ASCII + blocked zlib/lzma stores.
pub fn baseline_retrieval_table(title: &str, collection: &Collection, cfg: &ScaledConfig) {
    println!("{title}\n");
    let widths = [6usize, 10, 9, 12, 11];
    print_row(
        &[
            "Alg.".into(),
            "Block(MB)".into(),
            "Enc.(%)".into(),
            "Sequential".into(),
            "Query Log".into(),
        ],
        &widths,
    );
    let work = WorkDir::new("base-tbl");

    let ascii_dir = build_ascii_store(&work, "ascii", collection);
    let ascii = AsciiStore::open(&ascii_dir).expect("open ascii");
    let rates = measure_store_budgeted(&ascii, cfg, MEASURE_BUDGET);
    print_row(
        &[
            "ascii".into(),
            "-".into(),
            "100.00".into(),
            format!("{:.0}", rates.sequential),
            format!("{:.0}", rates.query_log),
        ],
        &widths,
    );
    drop(ascii);
    std::fs::remove_dir_all(&ascii_dir).ok();

    let codecs = [
        BlockCodec::Zlite(rlz_zlite::Level::Best),
        BlockCodec::Lzlite(rlz_lzlite::Level::Best),
    ];
    for codec in codecs {
        for &block in &cfg.block_sizes {
            let tag = format!("{}-{}", codec.name(), block);
            let (dir, pct) = build_blocked_store(&work, &tag, collection, codec, block, cfg);
            let store = BlockedStore::open(&dir).expect("open blocked");
            let rates = measure_store_budgeted(&store, cfg, MEASURE_BUDGET);
            print_row(
                &[
                    codec.name().into(),
                    block_label(block),
                    format!("{pct:.2}"),
                    format!("{:.0}", rates.sequential),
                    format!("{:.0}", rates.query_log),
                ],
                &widths,
            );
            drop(store);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    println!();
}

/// Thread counts reported by the concurrent-retrieval table.
pub const CONCURRENT_THREAD_STEPS: [usize; 4] = [1, 2, 4, 8];

/// Concurrent retrieval (extension beyond the paper, enabled by the
/// `&self` store architecture): query-log docs/second for every store
/// family as reader threads scale, one opened store shared by all readers.
/// The rightmost column repeats the single-thread sequential rate so the
/// numbers sit next to the existing tables' layout.
pub fn concurrent_retrieval_table(title: &str, collection: &Collection, cfg: &ScaledConfig) {
    println!("{title}");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "(query-log docs/s; one shared store handle, N reader threads; host \
         has {cores} core(s) — expect scaling only up to that)\n"
    );
    let mut header = vec!["Alg.".to_string(), "Enc.(%)".to_string()];
    header.extend(CONCURRENT_THREAD_STEPS.iter().map(|t| format!("{t}T")));
    header.push("1T seq".into());
    let widths = [12usize, 9, 11, 11, 11, 11, 11];
    print_row(&header, &widths);

    let work = WorkDir::new("conc-tbl");
    let n = collection.num_docs();
    let query_log = access::query_log(n, cfg.requests, 20, cfg.seed ^ 0xACCE55);
    let sequential = access::sequential(n, cfg.requests);

    let measure = |name: &str, pct: f64, store: &dyn DocStore| {
        let mut cells = vec![name.to_string(), format!("{pct:.2}")];
        for &threads in &CONCURRENT_THREAD_STEPS {
            let rate = concurrent_docs_per_second(store, &query_log, threads, MEASURE_BUDGET);
            cells.push(format!("{rate:.0}"));
        }
        let seq = crate::docs_per_second_budgeted(store, &sequential, MEASURE_BUDGET);
        cells.push(format!("{seq:.0}"));
        print_row(&cells, &widths);
    };

    let ascii_dir = build_ascii_store(&work, "ascii", collection);
    let ascii = AsciiStore::open(&ascii_dir).expect("open ascii");
    measure("ascii", 100.0, &ascii);
    drop(ascii);
    std::fs::remove_dir_all(&ascii_dir).ok();

    let (zl_dir, zl_pct) = build_blocked_store(
        &work,
        "zlib-conc",
        collection,
        BlockCodec::Zlite(rlz_zlite::Level::Default),
        100 * 1024,
        cfg,
    );
    let zl = BlockedStore::open(&zl_dir).expect("open blocked");
    measure("zlib 0.1MB", zl_pct, &zl);
    let mut zl_cached = zl.clone();
    zl_cached.set_block_cache_capacity(64);
    measure("zlib+cache", zl_pct, &zl_cached);
    drop((zl, zl_cached));
    std::fs::remove_dir_all(&zl_dir).ok();

    let dict_size = cfg.dict_sizes()[1];
    let (rlz_dir, rlz_pct) = build_rlz_store(
        &work,
        "rlz-conc",
        collection,
        dict_size,
        PairCoding::ZV,
        cfg,
    );
    let rlz = RlzStore::open(&rlz_dir).expect("open rlz");
    measure("rlz ZV", rlz_pct, &rlz);
    let resident = RlzStore::open_resident(&rlz_dir).expect("open rlz resident");
    measure("rlz ZV mem", rlz_pct, &resident);
    drop((rlz, resident));
    std::fs::remove_dir_all(&rlz_dir).ok();
    println!();
}

/// Factorization-throughput table (build path; extension beyond the
/// paper): MB/s and docs/s of RLZ factorization with the q-gram
/// [`rlz_suffix::PrefixIndex`] fast path vs the paper's plain `Refine`
/// matcher, across dictionary sizes. Also spot-checks that both matchers
/// emit identical factorizations before timing anything.
///
/// Returns the machine-readable report (`BENCH_factorize.json`).
pub fn factorize_table(
    title: &str,
    collection: &Collection,
    cfg: &ScaledConfig,
) -> crate::report::Report {
    println!("{title}");
    println!(
        "(single-threaded; {} MiB corpus; q = {} unless noted; 'plain' = \
         Refine from the full SA interval every factor)\n",
        collection.total_bytes() >> 20,
        rlz_core::Dictionary::DEFAULT_INDEX_Q,
    );
    let widths = [10usize, 3, 9, 10, 10, 10, 9];
    print_row(
        &[
            "Dict".into(),
            "q".into(),
            "Matcher".into(),
            "MiB/s".into(),
            "docs/s".into(),
            "factors".into(),
            "speedup".into(),
        ],
        &widths,
    );
    let mut report = crate::report::Report::new("factorize");
    let docs: Vec<&[u8]> = collection.iter_docs().collect();
    for dict_size in cfg.dict_sizes() {
        let dict = Dictionary::sample(
            &collection.data,
            dict_size,
            cfg.sample_len,
            SampleStrategy::Evenly,
        );
        // Zero-behavioral-diff check on a slice of the corpus before any
        // timing: the fast path must not change a single factor.
        for doc in docs.iter().step_by((docs.len() / 32).max(1)) {
            let mut fast = Vec::new();
            let mut plain = Vec::new();
            rlz_core::factorize(&dict, doc, &mut fast);
            rlz_core::factorize_plain(&dict, doc, &mut plain);
            assert_eq!(fast, plain, "indexed factorization diverged");
        }
        let mut plain_rate = 0.0f64;
        for (matcher, plain) in [("plain", true), ("indexed", false)] {
            let m = factorize_rate(&dict, &docs, plain, MEASURE_BUDGET);
            let speedup = if plain {
                plain_rate = m.mb_per_s;
                "1.00x".to_string()
            } else {
                format!("{:.2}x", m.mb_per_s / plain_rate)
            };
            print_row(
                &[
                    dict_label(dict_size),
                    dict.index_q().to_string(),
                    matcher.into(),
                    format!("{:.1}", m.mb_per_s),
                    format!("{:.0}", m.docs_per_s),
                    m.factors.to_string(),
                    speedup,
                ],
                &widths,
            );
            report.push(
                crate::report::Row::new()
                    .str("corpus", "gov2-like")
                    .int("corpus_bytes", collection.total_bytes() as u64)
                    .int("dict_bytes", dict_size as u64)
                    .int("sample_len", cfg.sample_len as u64)
                    .int("q", dict.index_q() as u64)
                    .str("matcher", matcher)
                    .num("mb_per_s", m.mb_per_s)
                    .num("docs_per_s", m.docs_per_s)
                    .int("factors", m.factors),
            );
        }
    }
    println!();
    report
}

struct FactorizeRate {
    mb_per_s: f64,
    docs_per_s: f64,
    factors: u64,
}

/// Timed factorization sweep over `docs` (cycling until `budget` elapses).
fn factorize_rate(
    dict: &Dictionary,
    docs: &[&[u8]],
    plain: bool,
    budget: Duration,
) -> FactorizeRate {
    let mut out = Vec::new();
    let t = std::time::Instant::now();
    let mut bytes = 0u64;
    let mut served = 0u64;
    let mut factors = 0u64;
    'timed: while !docs.is_empty() {
        for doc in docs {
            out.clear();
            if plain {
                rlz_core::factorize_plain(dict, doc, &mut out);
            } else {
                rlz_core::factorize(dict, doc, &mut out);
            }
            bytes += doc.len() as u64;
            factors += out.len() as u64;
            served += 1;
            if served.is_multiple_of(16) && t.elapsed() >= budget {
                break 'timed;
            }
        }
        if t.elapsed() >= budget {
            break;
        }
    }
    let secs = t.elapsed().as_secs_f64();
    FactorizeRate {
        mb_per_s: bytes as f64 / (1 << 20) as f64 / secs,
        docs_per_s: served as f64 / secs,
        factors,
    }
}

/// Batch-retrieval table (read path; extension beyond the paper):
/// docs/second for query-log batches served three ways — the naive
/// request-order fan-out, the seek-aware offset-ordered default, and (for
/// the blocked store) block-coalesced decoding — on cold file-backed
/// stores.
///
/// Returns the machine-readable report (`BENCH_batch.json`).
pub fn batch_table(
    title: &str,
    collection: &Collection,
    cfg: &ScaledConfig,
) -> crate::report::Report {
    println!("{title}");
    println!(
        "(file-backed stores, {} worker thread(s), batches of {} query-log \
         requests; results always return in request order)\n",
        cfg.threads, BATCH_SIZE
    );
    let widths = [12usize, 11, 9, 11, 10];
    print_row(
        &[
            "Store".into(),
            "Strategy".into(),
            "Enc.(%)".into(),
            "docs/s".into(),
            "MiB/s".into(),
        ],
        &widths,
    );
    let mut report = crate::report::Report::new("batch");
    let work = WorkDir::new("batch-tbl");
    let ids = access::query_log(
        collection.num_docs(),
        cfg.requests.max(BATCH_SIZE),
        20,
        cfg.seed ^ 0xBA7C4,
    );

    let mut run = |store_name: &str, pct: f64, store: &dyn DocStore, coalesced: bool| {
        let mut strategies: Vec<(&str, BatchFn)> = vec![
            ("unordered", |s, ids, t| {
                rlz_store::get_batch_unordered(s, ids, t)
            }),
            ("ordered", |s, ids, t| {
                rlz_store::get_batch_ordered(s, ids, t)
            }),
        ];
        if coalesced {
            // The store's own get_batch override: offset-ordered AND one
            // decode per touched block.
            strategies.push(("coalesced", |s, ids, t| s.get_batch(ids, t)));
        }
        for (strategy, f) in strategies {
            let m = batch_rate(store, &ids, cfg.threads, f, MEASURE_BUDGET);
            print_row(
                &[
                    store_name.into(),
                    strategy.into(),
                    format!("{pct:.2}"),
                    format!("{:.0}", m.docs_per_s),
                    format!("{:.1}", m.mb_per_s),
                ],
                &widths,
            );
            report.push(
                crate::report::Row::new()
                    .str("corpus", "gov2-like")
                    .int("corpus_bytes", collection.total_bytes() as u64)
                    .str("store", store_name)
                    .str("strategy", strategy)
                    .int("batch_size", BATCH_SIZE as u64)
                    .int("threads", cfg.threads as u64)
                    .num("docs_per_s", m.docs_per_s)
                    .num("mb_per_s", m.mb_per_s),
            );
        }
    };

    let ascii_dir = build_ascii_store(&work, "ascii", collection);
    let ascii = AsciiStore::open(&ascii_dir).expect("open ascii");
    run("ascii", 100.0, &ascii, false);
    drop(ascii);
    std::fs::remove_dir_all(&ascii_dir).ok();

    let (zl_dir, zl_pct) = build_blocked_store(
        &work,
        "zlib-batch",
        collection,
        BlockCodec::Zlite(rlz_zlite::Level::Default),
        100 * 1024,
        cfg,
    );
    let zl = BlockedStore::open(&zl_dir).expect("open blocked");
    run("zlib 0.1MB", zl_pct, &zl, true);
    drop(zl);
    std::fs::remove_dir_all(&zl_dir).ok();

    let dict_size = cfg.dict_sizes()[1];
    let (rlz_dir, rlz_pct) = build_rlz_store(
        &work,
        "rlz-batch",
        collection,
        dict_size,
        PairCoding::ZV,
        cfg,
    );
    let rlz = RlzStore::open(&rlz_dir).expect("open rlz");
    run("rlz ZV", rlz_pct, &rlz, false);
    drop(rlz);
    std::fs::remove_dir_all(&rlz_dir).ok();
    println!();
    report
}

/// Requests per `get_batch` call in [`batch_table`].
pub const BATCH_SIZE: usize = 256;

type BatchFn = fn(&dyn DocStore, &[u32], usize) -> Result<Vec<Vec<u8>>, rlz_store::StoreError>;

struct BatchRate {
    docs_per_s: f64,
    mb_per_s: f64,
}

/// Replays `ids` in batches of [`BATCH_SIZE`] through `f` until `budget`
/// elapses, cycling as needed.
fn batch_rate(
    store: &dyn DocStore,
    ids: &[u32],
    threads: usize,
    f: BatchFn,
    budget: Duration,
) -> BatchRate {
    let t = std::time::Instant::now();
    let mut served = 0u64;
    let mut bytes = 0u64;
    'timed: loop {
        for batch in ids.chunks(BATCH_SIZE) {
            let out = f(store, batch, threads).expect("batch retrieval failed during benchmark");
            served += out.len() as u64;
            bytes += out.iter().map(|d| d.len() as u64).sum::<u64>();
            if t.elapsed() >= budget {
                break 'timed;
            }
        }
    }
    let secs = t.elapsed().as_secs_f64();
    BatchRate {
        docs_per_s: served as f64 / secs,
        mb_per_s: bytes as f64 / (1 << 20) as f64 / secs,
    }
}

/// Decode-throughput table (read path; extension beyond the paper):
/// docs/second and MiB/second of factor decoding + expansion for every
/// pair coding in the extended set (the paper's four plus the post-paper
/// `F`/`L` entropy codecs), comparing the two-step oracle
/// (`decode_document` + `expand`, allocating per document) against the
/// fused zero-allocation pipeline (`decode_and_expand_scratch` with one
/// reused [`rlz_core::DecodeScratch`]). Each coding row also carries its
/// encoding percentage (encoded streams + dictionary, relative to the raw
/// corpus) so the ratio-vs-speed tradeoff is visible in one table.
/// Verifies byte-identical output on a corpus sample before timing
/// anything.
///
/// Returns the machine-readable report (`BENCH_decode.json`).
pub fn decode_table(
    title: &str,
    collection: &Collection,
    cfg: &ScaledConfig,
) -> crate::report::Report {
    println!("{title}");
    let dict_size = cfg.dict_sizes()[1];
    println!(
        "(single-threaded; {} MiB corpus, dict {}; 'two-step' = decode_document \
         + expand oracle, 'fused' = zero-allocation decode_and_expand_scratch)\n",
        collection.total_bytes() >> 20,
        dict_label(dict_size),
    );
    let widths = [8usize, 10, 9, 12, 10, 9];
    print_row(
        &[
            "Pos-Len".into(),
            "Pipeline".into(),
            "Enc.(%)".into(),
            "docs/s".into(),
            "MiB/s".into(),
            "speedup".into(),
        ],
        &widths,
    );
    let mut report = crate::report::Report::new("decode");
    let dict = Dictionary::sample(
        &collection.data,
        dict_size,
        cfg.sample_len,
        SampleStrategy::Evenly,
    );
    // Factorize once; each coding re-codes the same parse.
    let parses: Vec<Vec<rlz_core::Factor>> = collection
        .iter_docs()
        .map(|doc| rlz_core::factorize_to_vec(&dict, doc))
        .collect();
    for coding in PairCoding::EXTENDED_SET {
        let encoded: Vec<Vec<u8>> = parses
            .iter()
            .map(|f| rlz_core::coding::encode_document(f, coding))
            .collect();
        let encoded_bytes: u64 = encoded.iter().map(|e| e.len() as u64).sum();
        let enc_pct =
            (encoded_bytes + dict_size as u64) as f64 * 100.0 / collection.total_bytes() as f64;
        // Byte-identical check on a corpus sample before any timing.
        let mut scratch = rlz_core::DecodeScratch::new();
        for enc in encoded.iter().step_by((encoded.len() / 32).max(1)) {
            let mut fused = Vec::new();
            rlz_core::decode_and_expand_scratch(
                enc,
                coding,
                dict.bytes(),
                &mut fused,
                &mut scratch,
            )
            .unwrap();
            let factors = rlz_core::coding::decode_document(enc, coding).unwrap();
            let mut oracle = Vec::new();
            rlz_core::expand(dict.bytes(), &factors, &mut oracle).unwrap();
            assert_eq!(fused, oracle, "fused decode diverged from the oracle");
        }
        let mut two_step_rate = 0.0f64;
        for (pipeline, fused) in [("two-step", false), ("fused", true)] {
            let m = decode_rate(&encoded, coding, dict.bytes(), fused, MEASURE_BUDGET);
            let speedup = if fused {
                format!("{:.2}x", m.docs_per_s / two_step_rate)
            } else {
                two_step_rate = m.docs_per_s;
                "1.00x".to_string()
            };
            print_row(
                &[
                    coding.name(),
                    pipeline.into(),
                    format!("{enc_pct:.2}"),
                    format!("{:.0}", m.docs_per_s),
                    format!("{:.1}", m.mb_per_s),
                    speedup,
                ],
                &widths,
            );
            report.push(
                crate::report::Row::new()
                    .str("corpus", "gov2-like")
                    .int("corpus_bytes", collection.total_bytes() as u64)
                    .int("dict_bytes", dict_size as u64)
                    .str("coding", &coding.name())
                    .str("pipeline", pipeline)
                    .num("enc_pct", enc_pct)
                    .num("docs_per_s", m.docs_per_s)
                    .num("mb_per_s", m.mb_per_s),
            );
        }
    }
    println!();
    report
}

/// Decode throughput of one timed sweep (see [`decode_rate`]).
pub struct DecodeRate {
    /// Documents decoded per second.
    pub docs_per_s: f64,
    /// Expanded output MiB per second.
    pub mb_per_s: f64,
}

/// Timed decode sweep over pre-encoded records (cycling until `budget`
/// elapses). `fused == false` runs the two-step oracle with its per-doc
/// allocations, exactly as `RlzStore::get_into` did before the fused
/// pipeline existed. Shared by [`decode_table`] and the `ablation_search`
/// binary so both report the same measurement.
pub fn decode_rate(
    encoded: &[Vec<u8>],
    coding: PairCoding,
    dict_bytes: &[u8],
    fused: bool,
    budget: Duration,
) -> DecodeRate {
    let mut out = Vec::new();
    let mut scratch = rlz_core::DecodeScratch::new();
    let t = std::time::Instant::now();
    let mut bytes = 0u64;
    let mut served = 0u64;
    'timed: while !encoded.is_empty() {
        for enc in encoded {
            out.clear();
            if fused {
                rlz_core::decode_and_expand_scratch(
                    enc,
                    coding,
                    dict_bytes,
                    &mut out,
                    &mut scratch,
                )
                .expect("decode failed during benchmark");
            } else {
                let factors =
                    rlz_core::coding::decode_document(enc, coding).expect("decode failed");
                rlz_core::expand(dict_bytes, &factors, &mut out).expect("expand failed");
            }
            bytes += out.len() as u64;
            served += 1;
            if served.is_multiple_of(64) && t.elapsed() >= budget {
                break 'timed;
            }
        }
    }
    let secs = t.elapsed().as_secs_f64();
    DecodeRate {
        docs_per_s: served as f64 / secs,
        mb_per_s: bytes as f64 / (1 << 20) as f64 / secs,
    }
}

/// Table 10: ZZ encoding % with dictionaries built from collection prefixes
/// (100 % down to 1 %), the dynamic-update simulation of §3.6.
pub fn table10(collection: &Collection, cfg: &ScaledConfig) {
    println!(
        "Table 10 — dictionary from collection prefixes (ZZ pair codes, dict {})\n",
        dict_label(cfg.dict_sizes()[1])
    );
    let widths = [9usize, 11];
    print_row(&["Prefix %".into(), "Encoding %".into()], &widths);
    let dict_size = cfg.dict_sizes()[1]; // the paper's middle (1 GB) size
    for percent in [100u32, 90, 80, 70, 60, 50, 40, 30, 20, 10, 1] {
        let dict = Dictionary::sample(
            &collection.data,
            dict_size,
            cfg.sample_len,
            SampleStrategy::Prefix { percent },
        );
        let rlz = RlzCompressor::new(dict, PairCoding::ZZ);
        let enc: usize = crate::parallel_doc_sizes(&rlz, collection, cfg.threads);
        let pct = (enc + dict_size) as f64 * 100.0 / collection.total_bytes() as f64;
        print_row(&[format!("{percent}.0"), format!("{pct:.2}")], &widths);
    }
    println!();
}
