//! Shared harness for the paper-reproduction benchmarks.
//!
//! Every table/figure binary uses this crate for: scaled experiment
//! configuration (`ScaledConfig`), corpus construction, store building,
//! timed retrieval runs, and aligned table printing. See `DESIGN.md` §4 for
//! the experiment ↔ binary map and `EXPERIMENTS.md` for recorded results.

#![forbid(unsafe_code)]

pub mod json;
pub mod promtext;
pub mod report;
pub mod serve;
pub mod tables;

use rlz_core::{Dictionary, PairCoding, RlzCompressor, SampleStrategy};
use rlz_corpus::{access, generate_web, Collection, WebConfig};
use rlz_store::{AsciiStore, BlockCodec, BlockedStore, DocStore, RlzStore, RlzStoreBuilder};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Sum of per-document RLZ encoding sizes, computed on `threads` threads.
pub fn parallel_doc_sizes(rlz: &RlzCompressor, collection: &Collection, threads: usize) -> usize {
    let docs: Vec<&[u8]> = collection.iter_docs().collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let total = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(doc) = docs.get(i) else { break };
                let n = rlz.compress(doc).len();
                total.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    total.into_inner()
}

const VLDB_SEED: u64 = 0x2011_0b0b;

/// Scale-dependent parameters, defaulting to a laptop-friendly miniature of
/// the paper's setup. All byte quantities scale off `collection_bytes`.
#[derive(Debug, Clone)]
pub struct ScaledConfig {
    /// Synthetic collection size (paper: 426 GB / 256 GB).
    pub collection_bytes: usize,
    /// Dictionary sizes as parts-per-million of the collection
    /// (paper: 0.5/1/2 GB on 426 GB ≈ 1174/2347/4695 ppm).
    pub dict_ppm: Vec<u32>,
    /// Sample length in bytes (paper default: 1 KB).
    pub sample_len: usize,
    /// Number of document requests per access pattern (paper: 100 000).
    pub requests: usize,
    /// Block sizes for the baselines, bytes; 0 = one doc per block
    /// (paper: 0 / 0.1 / 0.2 / 0.5 / 1.0 MB).
    pub block_sizes: Vec<usize>,
    /// Worker threads for store building.
    pub threads: usize,
    /// Corpus seed.
    pub seed: u64,
}

impl Default for ScaledConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(8, |n| n.get());
        ScaledConfig {
            collection_bytes: 32 * 1024 * 1024,
            // The paper's exact dictionary fractions of the collection.
            dict_ppm: vec![1174, 2347, 4695],
            sample_len: 1024,
            requests: 20_000,
            block_sizes: vec![0, 100 * 1024, 200 * 1024, 500 * 1024, 1024 * 1024],
            threads,
            seed: VLDB_SEED,
        }
    }
}

impl ScaledConfig {
    /// Parses `--size-mb N`, `--requests N`, `--seed N`, `--threads N`
    /// CLI overrides.
    pub fn from_args(args: &[String]) -> Self {
        let mut cfg = ScaledConfig::default();
        let mut i = 0;
        while i < args.len() {
            let take = |i: &mut usize| -> Option<u64> {
                *i += 1;
                args.get(*i).and_then(|v| v.parse().ok())
            };
            match args[i].as_str() {
                "--size-mb" => {
                    if let Some(v) = take(&mut i) {
                        cfg.collection_bytes = (v as usize) << 20;
                    }
                }
                "--requests" => {
                    if let Some(v) = take(&mut i) {
                        cfg.requests = v as usize;
                    }
                }
                "--seed" => {
                    if let Some(v) = take(&mut i) {
                        cfg.seed = v;
                    }
                }
                "--threads" => {
                    if let Some(v) = take(&mut i) {
                        cfg.threads = v as usize;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        cfg
    }

    /// Concrete dictionary sizes in bytes, largest first (paper order).
    pub fn dict_sizes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .dict_ppm
            .iter()
            .map(|&ppm| (self.collection_bytes as u64 * ppm as u64 / 1_000_000) as usize)
            .collect();
        v.sort_unstable();
        v.reverse();
        v
    }
}

/// Builds the GOV2-like collection for this config.
pub fn gov2_collection(cfg: &ScaledConfig) -> Collection {
    generate_web(&WebConfig::gov2(cfg.collection_bytes, cfg.seed))
}

/// Builds the Wikipedia-like collection for this config.
pub fn wikipedia_collection(cfg: &ScaledConfig) -> Collection {
    generate_web(&WebConfig::wikipedia(
        cfg.collection_bytes,
        cfg.seed ^ 0x51C1,
    ))
}

/// A scratch directory, removed on drop.
pub struct WorkDir {
    path: PathBuf,
}

impl WorkDir {
    /// Creates `$TMPDIR/rlz-bench-{name}-{pid}`.
    pub fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!("rlz-bench-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create bench work dir");
        WorkDir { path }
    }

    /// Directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A sub-directory path (not yet created).
    pub fn sub(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for WorkDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Result of one timed retrieval run.
#[derive(Debug, Clone, Copy)]
pub struct RetrievalRates {
    /// Documents per second under sequential requests.
    pub sequential: f64,
    /// Documents per second under query-log requests.
    pub query_log: f64,
}

/// Runs both access patterns over a store and reports docs/second.
pub fn measure_store(store: &dyn DocStore, cfg: &ScaledConfig) -> RetrievalRates {
    let n = store.num_docs();
    let sequential = access::sequential(n, cfg.requests);
    let query_log = access::query_log(n, cfg.requests, 20, cfg.seed ^ 0xACCE55);
    RetrievalRates {
        sequential: docs_per_second(store, &sequential),
        query_log: docs_per_second(store, &query_log),
    }
}

/// Timed replay of a request stream.
pub fn docs_per_second(store: &dyn DocStore, requests: &[u32]) -> f64 {
    let mut buf = Vec::new();
    let t = Instant::now();
    for &id in requests {
        buf.clear();
        store
            .get_into(id as usize, &mut buf)
            .expect("retrieval failed during benchmark");
    }
    requests.len() as f64 / t.elapsed().as_secs_f64()
}

/// Timed replay that stops after `budget` wall-clock time (the paper replays
/// all 100 000 requests, which for slow stores took its authors hours per
/// cell; rates converge long before that).
pub fn docs_per_second_budgeted(
    store: &dyn DocStore,
    requests: &[u32],
    budget: std::time::Duration,
) -> f64 {
    let mut buf = Vec::new();
    let t = Instant::now();
    let mut served = 0usize;
    for &id in requests {
        buf.clear();
        store
            .get_into(id as usize, &mut buf)
            .expect("retrieval failed during benchmark");
        served += 1;
        // Check the clock occasionally once a minimum sample exists.
        if served >= 32 && served.is_multiple_of(32) && t.elapsed() >= budget {
            break;
        }
    }
    served as f64 / t.elapsed().as_secs_f64()
}

/// Runs both access patterns with a per-pattern time budget.
pub fn measure_store_budgeted(
    store: &dyn DocStore,
    cfg: &ScaledConfig,
    budget: std::time::Duration,
) -> RetrievalRates {
    let n = store.num_docs();
    let sequential = access::sequential(n, cfg.requests);
    let query_log = access::query_log(n, cfg.requests, 20, cfg.seed ^ 0xACCE55);
    RetrievalRates {
        sequential: docs_per_second_budgeted(store, &sequential, budget),
        query_log: docs_per_second_budgeted(store, &query_log, budget),
    }
}

/// Concurrent timed replay: `threads` reader threads share one `&store`
/// and replay round-robin shards of the request stream, each with its own
/// output buffer. Returns aggregate docs/second. This is the workload the
/// `&self` store refactor exists for — one opened store, many readers.
pub fn concurrent_docs_per_second(
    store: &dyn DocStore,
    requests: &[u32],
    threads: usize,
    budget: std::time::Duration,
) -> f64 {
    let shards = access::shards(requests, threads);
    let served = std::sync::atomic::AtomicUsize::new(0);
    let t = Instant::now();
    std::thread::scope(|scope| {
        for shard in &shards {
            let served = &served;
            scope.spawn(move || {
                let mut buf = Vec::new();
                let mut n = 0usize;
                for &id in shard {
                    buf.clear();
                    store
                        .get_into(id as usize, &mut buf)
                        .expect("retrieval failed during benchmark");
                    n += 1;
                    if n.is_multiple_of(32) && t.elapsed() >= budget {
                        break;
                    }
                }
                served.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    served.into_inner() as f64 / t.elapsed().as_secs_f64()
}

/// Builds an RLZ store for (dict size, coding), returning `(dir, Enc%)`.
pub fn build_rlz_store(
    work: &WorkDir,
    tag: &str,
    collection: &Collection,
    dict_size: usize,
    coding: PairCoding,
    cfg: &ScaledConfig,
) -> (PathBuf, f64) {
    let dict = Dictionary::sample(
        &collection.data,
        dict_size,
        cfg.sample_len,
        SampleStrategy::Evenly,
    );
    let dir = work.sub(tag);
    let docs: Vec<&[u8]> = collection.iter_docs().collect();
    RlzStoreBuilder::new(dict, coding)
        .threads(cfg.threads)
        .build(&dir, &docs)
        .expect("rlz build");
    let store = RlzStore::open(&dir).expect("rlz open");
    let pct = store.total_stored_bytes() as f64 * 100.0 / collection.total_bytes() as f64;
    (dir, pct)
}

/// Builds a blocked store, returning `(dir, Enc%)`.
pub fn build_blocked_store(
    work: &WorkDir,
    tag: &str,
    collection: &Collection,
    codec: BlockCodec,
    block_size: usize,
    cfg: &ScaledConfig,
) -> (PathBuf, f64) {
    let dir = work.sub(tag);
    let docs: Vec<&[u8]> = collection.iter_docs().collect();
    BlockedStore::build(&dir, docs.iter().copied(), codec, block_size, cfg.threads)
        .expect("blocked build");
    let store = BlockedStore::open(&dir).expect("blocked open");
    let pct = store.stored_bytes() as f64 * 100.0 / collection.total_bytes() as f64;
    (dir, pct)
}

/// Builds the raw baseline, returning its directory.
pub fn build_ascii_store(work: &WorkDir, tag: &str, collection: &Collection) -> PathBuf {
    let dir = work.sub(tag);
    let docs: Vec<&[u8]> = collection.iter_docs().collect();
    AsciiStore::build(&dir, docs.iter().copied()).expect("ascii build");
    dir
}

/// Prints a row of cells right-padded to the given widths.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Formats a block size the way the paper does ("0.0" MB = one doc/block).
pub fn block_label(block: usize) -> String {
    if block == 0 {
        "0.0".to_string()
    } else {
        format!("{:.1}", block as f64 / (1024.0 * 1024.0))
    }
}

/// Formats a dictionary size (shown as MiB at our miniature scale, in place
/// of the paper's GB column).
pub fn dict_label(bytes: usize) -> String {
    format!("{:.2}MiB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_sizes_follow_paper_fractions() {
        let cfg = ScaledConfig {
            collection_bytes: 100_000_000,
            ..Default::default()
        };
        let sizes = cfg.dict_sizes();
        assert_eq!(sizes.len(), 3);
        // 4695 ppm of 100 MB = 469,500 bytes, largest first.
        assert_eq!(sizes[0], 469_500);
        assert_eq!(sizes[2], 117_400);
    }

    #[test]
    fn arg_parsing_overrides() {
        let args: Vec<String> = ["--size-mb", "8", "--requests", "100", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = ScaledConfig::from_args(&args);
        assert_eq!(cfg.collection_bytes, 8 << 20);
        assert_eq!(cfg.requests, 100);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn labels() {
        assert_eq!(block_label(0), "0.0");
        assert_eq!(block_label(1024 * 1024), "1.0");
        assert_eq!(dict_label(1024 * 1024), "1.00MiB");
    }
}
