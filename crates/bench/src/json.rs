//! A minimal JSON reader for validating and diffing benchmark artifacts.
//!
//! The container is offline (no serde), so `check_artifacts` and the
//! perf-trend comparison parse the `BENCH_*.json` files with this small
//! recursive-descent parser. It accepts exactly standard JSON (RFC 8259):
//! objects, arrays, strings with escapes, numbers, booleans, null. It is
//! the reading half of [`crate::report`]'s hand-rolled writer, and each
//! round-trips the other.

use std::fmt;

/// A parsed JSON value. Object fields keep file order (duplicate keys keep
/// the first occurrence on lookup, like most readers).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers every value the
    /// report writer emits).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value back to compact JSON (the writing complement of
    /// [`parse`], used when an artifact is rewritten with appended rows).
    /// Numbers that are whole render without a fraction so integer fields
    /// survive a parse/render round trip unchanged.
    pub fn to_json(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => {
                format!("{}", *n as i64)
            }
            Value::Num(n) => format!("{n}"),
            Value::Str(s) => quote(s),
            Value::Arr(items) => {
                let body: Vec<String> = items.iter().map(Value::to_json).collect();
                format!("[{}]", body.join(", "))
            }
            Value::Obj(fields) => {
                let body: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}: {}", quote(k), v.to_json()))
                    .collect();
                format!("{{{}}}", body.join(", "))
            }
        }
    }
}

/// Minimal JSON string quoting (mirrors the report writer's escaping).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Arr(items) => write!(f, "[{} items]", items.len()),
            Value::Obj(fields) => write!(f, "{{{} fields}}", fields.len()),
        }
    }
}

/// Parses a complete JSON document. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing bytes after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("JSON error at byte {}: {}", self.at, what)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            // Exactly four hex digits (from_str_radix alone
                            // would also accept a leading sign).
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Artifacts only escape control characters, so
                            // surrogate pairs are not expected; map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape
                    // in one step (quote/backslash are ASCII, so they can
                    // never be bytes of a multi-byte UTF-8 scalar).
                    let rest = &self.bytes[self.at..];
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let s =
                        std::str::from_utf8(&rest[..run]).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.at += run;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_report_output() {
        let mut report = crate::report::Report::new("demo");
        report.push(
            crate::report::Row::new()
                .str("corpus", "gov2\"quoted\"")
                .int("corpus_bytes", 12345)
                .num("mb_per_s", 88.25),
        );
        let v = parse(&report.to_json()).unwrap();
        assert_eq!(v.get("bench").and_then(Value::as_str), Some("demo"));
        assert_eq!(v.get("schema_version").and_then(Value::as_f64), Some(1.0));
        let rows = v.get("rows").and_then(Value::as_arr).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("corpus").and_then(Value::as_str),
            Some("gov2\"quoted\"")
        );
        assert_eq!(
            rows[0].get("corpus_bytes").and_then(Value::as_f64),
            Some(12345.0)
        );
        assert_eq!(rows[0].get("mb_per_s").and_then(Value::as_f64), Some(88.25));
    }

    #[test]
    fn parses_nested_and_escaped() {
        let v =
            parse(r#"{"a": [1, -2.5, 1e3, true, false, null], "b": {"\n\u0041": "x"}}"#).unwrap();
        let a = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(a[3], Value::Bool(true));
        assert_eq!(a[4], Value::Bool(false));
        assert_eq!(a[5], Value::Null);
        assert_eq!(
            v.get("b").unwrap().get("\nA").and_then(Value::as_str),
            Some("x")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "01x",
            "\"unterminated",
            "{} trailing",
            "{\"a\": \"\\q\"}",
            "{\"a\": \"\\u+41\"}",
            "{\"a\": \"\\u00g1\"}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn roundtrips_unicode() {
        let v = parse("{\"k\": \"héllo ☃\"}").unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some("héllo ☃"));
    }
}
