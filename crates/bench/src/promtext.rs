//! A small parser (and re-emitter) for the Prometheus text exposition
//! format — the subset `rlz-serve` produces: `# HELP`/`# TYPE` comments,
//! samples with optional `{label="value"}` sets, and plain float values
//! (including `+Inf`). The CI metrics checker uses it to assert counter
//! deltas from real scrapes instead of grepping, and the proptest
//! roundtrip pins the emitter and parser to each other.

use std::fmt::Write as _;

/// One sample line: `name{label="value",...} 1.5`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (`rlz_requests_total`).
    pub name: String,
    /// Label pairs in source order; empty for unlabelled samples.
    pub labels: Vec<(String, String)>,
    /// Parsed value (`f64::INFINITY` for `+Inf`).
    pub value: f64,
}

impl Sample {
    /// The label's value, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed scrape: every sample line, in order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scrape {
    /// All samples, in exposition order.
    pub samples: Vec<Sample>,
}

impl Scrape {
    /// Parses exposition text. `# ...` comment lines and blank lines are
    /// skipped; any malformed sample line is an error naming the line.
    pub fn parse(text: &str) -> Result<Scrape, String> {
        let mut samples = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim_end_matches('\r');
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            samples.push(
                parse_sample(line).map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?,
            );
        }
        Ok(Scrape { samples })
    }

    /// The value of the sample with `name` and exactly the given labels
    /// (order-insensitive), if present.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && labels.iter().all(|(k, v)| s.label(k) == Some(*v))
            })
            .map(|s| s.value)
    }

    /// Sums every sample of `name` whose labels are a superset of
    /// `labels` — e.g. all `le` buckets of one histogram series.
    pub fn sum(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(*v)))
            .map(|s| s.value)
            .sum()
    }

    /// Re-emits the samples (no comments) in the exposition sample-line
    /// syntax. `Scrape::parse(s.to_text())` reproduces `s` exactly for
    /// finite values (`{}` formatting of `f64` is shortest-roundtrip).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{k}=\"");
                    for c in v.chars() {
                        match c {
                            '\\' => out.push_str("\\\\"),
                            '"' => out.push_str("\\\""),
                            '\n' => out.push_str("\\n"),
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                out.push('}');
            }
            if s.value == f64::INFINITY {
                out.push_str(" +Inf\n");
            } else {
                let _ = writeln!(out, " {}", s.value);
            }
        }
        out
    }
}

fn parse_sample(line: &str) -> Result<Sample, &'static str> {
    let (name_end, labels, rest) = match line.find('{') {
        Some(brace) => {
            let (labels, after) = parse_labels(&line[brace + 1..])?;
            (brace, labels, after)
        }
        None => {
            let sp = line.find(' ').ok_or("no value separator")?;
            (sp, Vec::new(), &line[sp..])
        }
    };
    let name = &line[..name_end];
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        return Err("invalid metric name");
    }
    let value_str = rest.trim_start_matches(' ');
    if value_str.is_empty() || value_str.contains(' ') {
        // A trailing timestamp is legal Prometheus but not something the
        // rlz emitter produces; reject rather than silently misparse.
        return Err("expected exactly one value after the name");
    }
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse::<f64>().map_err(|_| "unparseable value")?,
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parses `key="value",...}` starting just past the opening brace.
/// Returns the labels and the remainder after the closing brace.
#[allow(clippy::type_complexity)]
fn parse_labels(mut s: &str) -> Result<(Vec<(String, String)>, &str), &'static str> {
    let mut labels = Vec::new();
    loop {
        s = s.trim_start_matches(' ');
        if let Some(rest) = s.strip_prefix('}') {
            return Ok((labels, rest));
        }
        let eq = s.find('=').ok_or("label without '='")?;
        let key = s[..eq].trim().to_string();
        if key.is_empty()
            || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            || key.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            return Err("invalid label name");
        }
        s = s[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value must be quoted")?;
        let mut value = String::new();
        let mut chars = s.char_indices();
        let after_quote = loop {
            let (i, c) = chars.next().ok_or("unterminated label value")?;
            match c {
                '"' => break i + 1,
                '\\' => match chars.next().ok_or("dangling escape")?.1 {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    _ => return Err("unknown escape"),
                },
                c => value.push(c),
            }
        };
        labels.push((key, value));
        s = &s[after_quote..];
        s = s.strip_prefix(',').unwrap_or(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_rlz_exposition_subset() {
        let text = "\
# HELP rlz_requests_total Requests served, by opcode.
# TYPE rlz_requests_total counter
rlz_requests_total{op=\"get\"} 41
rlz_requests_total{op=\"mget\"} 0
rlz_request_duration_seconds_bucket{op=\"get\",le=\"+Inf\"} 41
rlz_request_duration_seconds_sum{op=\"get\"} 0.004242
rlz_active_connections 2
";
        let scrape = Scrape::parse(text).unwrap();
        assert_eq!(scrape.samples.len(), 5);
        assert_eq!(
            scrape.value("rlz_requests_total", &[("op", "get")]),
            Some(41.0)
        );
        assert_eq!(scrape.value("rlz_requests_total", &[("op", "put")]), None);
        assert_eq!(scrape.value("rlz_active_connections", &[]), Some(2.0));
        assert_eq!(
            scrape.value(
                "rlz_request_duration_seconds_bucket",
                &[("op", "get"), ("le", "+Inf")]
            ),
            Some(41.0)
        );
        assert_eq!(
            scrape.value("rlz_request_duration_seconds_sum", &[("op", "get")]),
            Some(0.004242)
        );
    }

    #[test]
    fn sum_matches_label_superset() {
        let text = "\
h_bucket{op=\"get\",le=\"0.1\"} 3
h_bucket{op=\"get\",le=\"1\"} 5
h_bucket{op=\"mget\",le=\"1\"} 7
";
        let scrape = Scrape::parse(text).unwrap();
        assert_eq!(scrape.sum("h_bucket", &[("op", "get")]), 8.0);
        assert_eq!(scrape.sum("h_bucket", &[]), 15.0);
        assert_eq!(scrape.sum("nope", &[]), 0.0);
    }

    #[test]
    fn escaped_label_values_roundtrip() {
        let scrape = Scrape {
            samples: vec![Sample {
                name: "m".into(),
                labels: vec![("k".into(), "a\\b\"c\nd".into())],
                value: 1.5,
            }],
        };
        let text = scrape.to_text();
        assert_eq!(Scrape::parse(&text).unwrap(), scrape);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "novalue",
            "1leading_digit 2",
            "name{unterminated=\"x} 1",
            "name{k=\"v\"} ",
            "name{k=v} 1",
            "name{k=\"v\"} 1 2",
            "name{k=\"\\x\"} 1",
            "name 12x4",
        ] {
            assert!(Scrape::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
