//! Machine-readable benchmark artifacts.
//!
//! Each perf-relevant benchmark writes a `BENCH_<name>.json` next to its
//! printed table so the perf trajectory can be recorded and diffed across
//! commits. The format is deliberately flat — one object per measurement
//! row, every field a number or short string — so any JSON consumer can
//! turn a pair of artifacts into a before/after comparison without schema
//! knowledge.
//!
//! The container is offline (no serde); this is a tiny hand-rolled writer
//! covering exactly what the reports need.

use std::io;
use std::path::Path;

/// One measurement row: ordered `(key, rendered JSON value)` pairs, or a
/// pre-rendered object carried over from an existing artifact.
#[derive(Debug, Clone, Default)]
pub struct Row {
    fields: Vec<(String, String)>,
    rendered: Option<String>,
}

impl Row {
    /// An empty row.
    pub fn new() -> Self {
        Row::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields.push((key.to_string(), json_string(value)));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a float field (3 decimal places; non-finite values become 0 to
    /// keep the artifact valid JSON).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value:.3}")
        } else {
            "0".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    fn render(&self) -> String {
        if let Some(rendered) = &self.rendered {
            return rendered.clone();
        }
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("{}: {}", json_string(k), v))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// A named collection of rows, serialized as
/// `{"bench": ..., "schema_version": 1, "rows": [...]}`.
#[derive(Debug, Clone)]
pub struct Report {
    name: &'static str,
    rows: Vec<Row>,
}

impl Report {
    /// A report for benchmark `name`.
    pub fn new(name: &'static str) -> Self {
        Report {
            name,
            rows: Vec::new(),
        }
    }

    /// Appends a measurement row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Prepends an already-rendered JSON object row (used when an existing
    /// artifact's rows are carried over before this run's rows append).
    pub fn prepend_rendered(&mut self, rendered: String) {
        self.rows.insert(
            0,
            Row {
                fields: Vec::new(),
                rendered: Some(rendered),
            },
        );
    }

    /// Number of rows recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The serialized artifact.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| format!("  {}", r.render()))
            .collect();
        format!(
            "{{\n\"bench\": {}, \"schema_version\": 1, \"rows\": [\n{}\n]}}\n",
            json_string(self.name),
            rows.join(",\n")
        )
    }

    /// Writes the artifact to `path` and prints where it went.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())?;
        println!(
            "[bench artifact] {} rows -> {}",
            self.rows.len(),
            path.display()
        );
        Ok(())
    }
}

/// Minimal JSON string quoting (ASCII control chars, quote, backslash).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_json() {
        let mut r = Report::new("demo");
        r.push(
            Row::new()
                .str("corpus", "gov2")
                .int("bytes", 1024)
                .num("mb_per_s", 12.3456),
        );
        r.push(Row::new().num("bad", f64::NAN));
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"demo\""));
        assert!(json.contains("\"corpus\": \"gov2\""));
        assert!(json.contains("\"bytes\": 1024"));
        assert!(json.contains("\"mb_per_s\": 12.346"));
        assert!(json.contains("\"bad\": 0"));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
