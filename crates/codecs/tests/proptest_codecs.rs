//! Property tests: every integer codec round-trips arbitrary input, and the
//! bit reader/writer are exact inverses.

use proptest::prelude::*;
use rlz_codecs::bitio::{BitReader, BitWriter};
use rlz_codecs::{all_codecs, zigzag_decode, zigzag_encode};

proptest! {
    #[test]
    fn codecs_roundtrip_arbitrary(values in proptest::collection::vec(any::<u32>(), 0..400)) {
        for codec in all_codecs() {
            let enc = codec.encode_to_vec(&values);
            let dec = codec.decode_to_vec(&enc, values.len());
            prop_assert_eq!(dec.as_ref().ok(), Some(&values), "codec {}", codec.name());
        }
    }

    #[test]
    fn codecs_roundtrip_small_skewed(values in proptest::collection::vec(0u32..128, 0..400)) {
        // The regime RLZ factor lengths live in (Fig. 3 of the paper).
        for codec in all_codecs() {
            let enc = codec.encode_to_vec(&values);
            let dec = codec.decode_to_vec(&enc, values.len()).unwrap();
            prop_assert_eq!(&dec, &values, "codec {}", codec.name());
        }
    }

    #[test]
    fn decode_into_agrees_with_decode_to_vec(
        values in proptest::collection::vec(any::<u32>(), 0..400),
        stale in proptest::collection::vec(any::<u32>(), 0..64),
    ) {
        // The buffer-reusing hot path must fully replace whatever the
        // buffer held and produce exactly what the allocating wrapper
        // produces, for every codec (including vbyte's word-at-a-time
        // fast path, which `stale`-sized prefixes shift around).
        for codec in all_codecs() {
            let enc = codec.encode_to_vec(&values);
            let fresh = codec.decode_to_vec(&enc, values.len());
            let mut reused = stale.clone();
            let into = codec.decode_into(&enc, values.len(), &mut reused);
            prop_assert_eq!(fresh.as_ref().ok(), Some(&values), "codec {}", codec.name());
            prop_assert_eq!(into.ok(), Some(enc.len()), "codec {}", codec.name());
            prop_assert_eq!(&reused, &values, "codec {}", codec.name());
        }
    }

    #[test]
    fn codecs_never_panic_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..200), n in 0usize..300) {
        for codec in all_codecs() {
            let _ = codec.decode_to_vec(&data, n);
        }
    }

    #[test]
    fn zigzag_is_a_bijection(v in any::<i32>()) {
        prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
    }

    #[test]
    fn bitio_roundtrips_random_fields(fields in proptest::collection::vec((any::<u64>(), 1u32..=56), 0..200)) {
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            let mask = u64::MAX >> (64 - n);
            prop_assert_eq!(r.read_bits(n).unwrap(), v & mask);
        }
    }

    #[test]
    fn bitio_unary_roundtrips(values in proptest::collection::vec(0u32..500, 0..100)) {
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_unary(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(r.read_unary().unwrap(), v);
        }
    }
}
