//! Fixed-width little-endian `u32` coding — the paper's `U` position coder.
//!
//! The paper's first factor-coding scheme assumed positions are spread
//! uniformly over the dictionary and stored each as a raw unsigned 32-bit
//! integer. It is the fastest coder to decode and the baseline the others
//! are compared against.

use crate::{CodecError, IntCodec, Result};

/// Raw little-endian `u32` codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedU32;

impl IntCodec for FixedU32 {
    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        out.reserve(values.len() * 4);
        for &v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(&self, data: &[u8], n: usize, out: &mut Vec<u32>) -> Result<usize> {
        let need = n
            .checked_mul(4)
            .ok_or(CodecError::Corrupt("count overflow"))?;
        let Some(bytes) = data.get(..need) else {
            return Err(CodecError::UnexpectedEof);
        };
        // Bulk extend from an exact-size iterator: one capacity check for
        // the whole stream instead of one per value.
        out.extend(
            bytes
                .chunks_exact(4)
                .map(|chunk| u32::from_le_bytes(chunk.try_into().expect("chunk of 4"))),
        );
        Ok(need)
    }

    fn name(&self) -> &'static str {
        "u32"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let values = vec![0u32, 1, u32::MAX, 0xDEAD_BEEF];
        let codec = FixedU32;
        let enc = codec.encode_to_vec(&values);
        assert_eq!(enc.len(), 16);
        assert_eq!(codec.decode_to_vec(&enc, 4).unwrap(), values);
    }

    #[test]
    fn truncation_detected() {
        let codec = FixedU32;
        let enc = codec.encode_to_vec(&[1, 2, 3]);
        assert!(codec.decode_to_vec(&enc[..11], 3).is_err());
    }

    #[test]
    fn exactly_four_bytes_each() {
        let codec = FixedU32;
        assert_eq!(codec.encode_to_vec(&[9; 250]).len(), 1000);
    }
}
