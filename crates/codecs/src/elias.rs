//! Elias γ and δ codes — classic bit-oriented universal integer codes.
//!
//! Included as additional points on the space/time trade-off curve the
//! paper's discussion section asks about: γ spends `2⌊log v⌋ + 1` bits, δ
//! spends `⌊log v⌋ + O(log log v)` bits. Values are shifted by one so zero
//! is representable.

use crate::bitio::{BitReader, BitWriter};
use crate::{CodecError, IntCodec, Result};

/// Elias γ codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct EliasGamma;

/// Elias δ codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct EliasDelta;

#[inline]
fn gamma_write(w: &mut BitWriter, v: u64) {
    debug_assert!(v >= 1);
    let bits = 64 - v.leading_zeros(); // position of the highest set bit
    w.write_unary(bits - 1);
    if bits > 1 {
        w.write_bits(v, bits - 1); // low bits; the leading 1 is implicit
    }
}

#[inline]
fn gamma_read(r: &mut BitReader<'_>) -> Result<u64> {
    let low_bits = r.read_unary()?;
    // Decoded values are at most u32::MAX + 1 = 2^32, i.e. 33 significant
    // bits; anything longer is corruption (and would exceed the bit reader's
    // single-read limit).
    if low_bits > 32 {
        return Err(CodecError::Corrupt("gamma length overflow"));
    }
    let low = if low_bits == 0 {
        0
    } else {
        r.read_bits(low_bits)?
    };
    Ok(1u64 << low_bits | low)
}

#[inline]
fn delta_write(w: &mut BitWriter, v: u64) {
    debug_assert!(v >= 1);
    let bits = 64 - v.leading_zeros();
    gamma_write(w, bits as u64);
    if bits > 1 {
        w.write_bits(v, bits - 1);
    }
}

#[inline]
fn delta_read(r: &mut BitReader<'_>) -> Result<u64> {
    let bits = gamma_read(r)?;
    if bits == 0 || bits > 33 {
        return Err(CodecError::Corrupt("delta length out of range"));
    }
    let low_bits = (bits - 1) as u32;
    let low = if low_bits == 0 {
        0
    } else {
        r.read_bits(low_bits)?
    };
    Ok(1u64 << low_bits | low)
}

impl IntCodec for EliasGamma {
    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        let mut w = BitWriter::new();
        for &v in values {
            gamma_write(&mut w, v as u64 + 1);
        }
        w.finish_into(out);
    }

    fn decode(&self, data: &[u8], n: usize, out: &mut Vec<u32>) -> Result<usize> {
        let mut r = BitReader::new(data);
        // A γ code is ≥ 1 bit, so `data` can hold at most 8 values per
        // byte: capping the reservation keeps a corrupt count from driving
        // a huge allocation before the EOF check fires.
        out.reserve(n.min(data.len().saturating_mul(8)));
        for _ in 0..n {
            let v = gamma_read(&mut r)?;
            let v = v
                .checked_sub(1)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or(CodecError::Corrupt("gamma value exceeds u32"))?;
            out.push(v);
        }
        Ok(r.bytes_consumed())
    }

    fn name(&self) -> &'static str {
        "gamma"
    }
}

impl IntCodec for EliasDelta {
    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        let mut w = BitWriter::new();
        for &v in values {
            delta_write(&mut w, v as u64 + 1);
        }
        w.finish_into(out);
    }

    fn decode(&self, data: &[u8], n: usize, out: &mut Vec<u32>) -> Result<usize> {
        let mut r = BitReader::new(data);
        // A δ code is ≥ 1 bit; same corrupt-count reservation cap as γ.
        out.reserve(n.min(data.len().saturating_mul(8)));
        for _ in 0..n {
            let v = delta_read(&mut r)?;
            let v = v
                .checked_sub(1)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or(CodecError::Corrupt("delta value exceeds u32"))?;
            out.push(v);
        }
        Ok(r.bytes_consumed())
    }

    fn name(&self) -> &'static str {
        "delta"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_small_values_code_lengths() {
        // v=0 encodes as gamma(1) = "1": one bit per zero.
        let enc = EliasGamma.encode_to_vec(&[0; 8]);
        assert_eq!(enc.len(), 1);
        assert_eq!(EliasGamma.decode_to_vec(&enc, 8).unwrap(), vec![0; 8]);
    }

    #[test]
    fn gamma_roundtrip_powers_of_two() {
        let values: Vec<u32> = (0..32).map(|i| 1u32 << i).collect();
        let enc = EliasGamma.encode_to_vec(&values);
        assert_eq!(
            EliasGamma.decode_to_vec(&enc, values.len()).unwrap(),
            values
        );
    }

    #[test]
    fn delta_beats_gamma_on_large_values() {
        let values: Vec<u32> = (0..200).map(|i| 1_000_000 + i).collect();
        let g = EliasGamma.encode_to_vec(&values);
        let d = EliasDelta.encode_to_vec(&values);
        assert!(d.len() < g.len(), "delta {} vs gamma {}", d.len(), g.len());
        assert_eq!(EliasDelta.decode_to_vec(&d, values.len()).unwrap(), values);
    }

    #[test]
    fn max_value_roundtrips() {
        for codec in [&EliasGamma as &dyn IntCodec, &EliasDelta] {
            let enc = codec.encode_to_vec(&[u32::MAX, 0, u32::MAX]);
            assert_eq!(
                codec.decode_to_vec(&enc, 3).unwrap(),
                vec![u32::MAX, 0, u32::MAX]
            );
        }
    }

    #[test]
    fn garbage_input_does_not_panic() {
        let junk: Vec<u8> = (0..64).map(|i| (i * 37) as u8).collect();
        // Any outcome is fine as long as it is not a panic; ask for far more
        // values than the stream can hold to exercise the EOF paths too.
        let _ = EliasGamma.decode_to_vec(&junk, 1000);
        let _ = EliasDelta.decode_to_vec(&junk, 1000);
        let zeros = vec![0u8; 32];
        assert!(EliasGamma.decode_to_vec(&zeros, 1).is_err());
    }
}
