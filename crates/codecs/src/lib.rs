//! Integer and bit-level codecs for RLZ factor streams.
//!
//! §3.4 of the paper encodes the `(position, length)` pairs of a document's
//! factorization with combinations of raw 32-bit integers (`U`), variable
//! byte codes (`V`), and zlib (`Z`). Its future-work section names Simple-9
//! and PForDelta as promising alternatives; this crate provides all of the
//! integer codes behind one trait so the store can mix and match:
//!
//! * [`vbyte`] — the paper's `V` coder (7 data bits per byte, continuation
//!   flag in the high bit).
//! * [`fixed`] — the paper's `U` coder (little-endian `u32`).
//! * [`simple9`] — word-aligned packing, 9 configurations per 32-bit word
//!   (Anh & Moffat 2005), with an escape for values above 28 bits.
//! * [`pfor`] — PForDelta (Zukowski et al. 2006): per-block bit packing with
//!   patched exceptions.
//! * [`elias`] — Elias γ and δ codes, bit-oriented baselines.
//! * [`bitio`] — LSB-first bit reader/writer shared with the `zlite`
//!   compressor.
//! * [`hash`] — CRC32C (Castagnoli, slicing-by-8) used by the store layer
//!   for block/record integrity checksums.
//!
//! All coders implement [`IntCodec`] and round-trip arbitrary `u32` slices;
//! decoding is fully bounds-checked and returns [`CodecError`] on truncated
//! or corrupt input (no panics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitio;
pub mod elias;
pub mod fixed;
pub mod hash;
pub mod pfor;
pub mod simple9;
pub mod vbyte;

use std::fmt;

/// Errors produced by decoders on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the expected number of values was decoded.
    UnexpectedEof,
    /// A structural invariant of the format was violated.
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of encoded stream"),
            CodecError::Corrupt(what) => write!(f, "corrupt encoded stream: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for codec operations.
pub type Result<T> = std::result::Result<T, CodecError>;

/// A reusable encoder/decoder for sequences of `u32` values.
///
/// Encoders append to `out` so callers can concatenate streams; decoders are
/// told how many values to expect (RLZ stores factor counts in the document
/// map) and return the number of input bytes consumed.
pub trait IntCodec: fmt::Debug + Send + Sync {
    /// Appends the encoding of `values` to `out`.
    fn encode(&self, values: &[u32], out: &mut Vec<u8>);

    /// Decodes exactly `n` values from the front of `data` into `out`,
    /// returning the number of bytes consumed.
    fn decode(&self, data: &[u8], n: usize, out: &mut Vec<u32>) -> Result<usize>;

    /// Short identifier used in benchmark tables (e.g. `"vbyte"`).
    fn name(&self) -> &'static str;

    /// Convenience wrapper returning a fresh vector.
    fn encode_to_vec(&self, values: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(values, &mut out);
        out
    }

    /// Convenience wrapper decoding `n` values into a fresh vector.
    fn decode_to_vec(&self, data: &[u8], n: usize) -> Result<Vec<u32>> {
        // Cap the speculative reservation so a corrupt header cannot force
        // a huge allocation before the first bounds check fires.
        let mut out = Vec::with_capacity(n.min(data.len().saturating_mul(8).max(64)));
        self.decode(data, n, &mut out)?;
        Ok(out)
    }

    /// Decodes exactly `n` values from `data` into `out`, **replacing** its
    /// contents while reusing its capacity; returns the number of input
    /// bytes consumed.
    ///
    /// This is the retrieval hot-path entry point: a caller that keeps one
    /// `Vec<u32>` per stream performs zero heap allocations once the buffer
    /// has grown to the working-set size. All codecs in this crate decode
    /// by appending to the caller's buffer, so the default implementation
    /// (clear, then [`decode`](IntCodec::decode)) is already
    /// allocation-free; codecs with a dedicated fast path (e.g. [`vbyte`]'s
    /// word-at-a-time loop) get it through their `decode` body. On error
    /// `out` may hold a partially decoded prefix.
    fn decode_into(&self, data: &[u8], n: usize, out: &mut Vec<u32>) -> Result<usize> {
        out.clear();
        self.decode(data, n, out)
    }
}

/// ZigZag-maps a signed value to an unsigned one so small magnitudes stay
/// small (used when delta-coding monotone position streams).
#[inline]
pub fn zigzag_encode(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

/// All codecs in this crate, for sweeps in tests and benchmarks.
pub fn all_codecs() -> Vec<Box<dyn IntCodec>> {
    vec![
        Box::new(fixed::FixedU32),
        Box::new(vbyte::VByte),
        Box::new(simple9::Simple9),
        Box::new(pfor::PForDelta::default()),
        Box::new(elias::EliasGamma),
        Box::new(elias::EliasDelta),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [0i32, 1, -1, 2, -2, i32::MAX, i32::MIN, 12345, -54321] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }

    #[test]
    fn all_codecs_roundtrip_common_patterns() {
        let patterns: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![u32::MAX],
            vec![1, 2, 3, 4, 5],
            (0..1000).collect(),
            vec![0; 500],
            vec![1 << 28, (1 << 28) - 1, 1 << 31, 7],
            (0..257).map(|i| i * 31 % 257).collect(),
        ];
        for codec in all_codecs() {
            for p in &patterns {
                let enc = codec.encode_to_vec(p);
                let dec = codec.decode_to_vec(&enc, p.len()).unwrap_or_else(|e| {
                    panic!(
                        "{} failed on {:?}: {}",
                        codec.name(),
                        &p[..p.len().min(8)],
                        e
                    )
                });
                assert_eq!(&dec, p, "codec {}", codec.name());
            }
        }
    }

    #[test]
    fn decoders_error_on_truncated_input() {
        let values: Vec<u32> = (100..200).collect();
        for codec in all_codecs() {
            let enc = codec.encode_to_vec(&values);
            // Chop the stream; expecting the full count must fail, not panic.
            for cut in [0usize, 1, enc.len() / 2, enc.len().saturating_sub(1)] {
                if cut >= enc.len() {
                    continue;
                }
                let res = codec.decode_to_vec(&enc[..cut], values.len());
                assert!(
                    res.is_err(),
                    "codec {} accepted truncated input",
                    codec.name()
                );
            }
        }
    }

    #[test]
    fn decode_reports_bytes_consumed() {
        let values = vec![7u32, 300, 70000, 5];
        for codec in all_codecs() {
            let mut enc = codec.encode_to_vec(&values);
            let orig_len = enc.len();
            enc.extend_from_slice(b"trailing garbage");
            let mut out = Vec::new();
            let used = codec.decode(&enc, values.len(), &mut out).unwrap();
            assert_eq!(used, orig_len, "codec {}", codec.name());
            assert_eq!(out, values);
        }
    }
}
