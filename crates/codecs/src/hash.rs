//! Fast pure-rust CRC32C (Castagnoli) for store integrity checking.
//!
//! The store layer stamps a CRC32C over every compressed block and encoded
//! record it writes, and verifies it on every read, so a flipped bit in a
//! long-lived archive surfaces as a typed corruption error instead of
//! garbage bytes or a decoder panic. CRC32C is the right tool here: the
//! Castagnoli polynomial has better error-detection properties than the
//! zlib polynomial at these lengths, it is the checksum used by similar
//! storage systems (LevelDB/RocksDB block trailers, iSCSI, ext4), and a
//! slicing-by-8 software implementation keeps scrubbing in the GB/s range
//! without any platform intrinsics (the crate is `forbid(unsafe_code)`).
//!
//! The implementation is table-driven slicing-by-8 (Kounavis & Berry 2005):
//! eight 256-entry tables are derived from the bit-reflected polynomial at
//! first use, then the hot loop folds 8 input bytes per iteration with
//! eight independent table lookups. A byte-at-a-time tail handles the
//! remainder and short inputs.

use std::sync::OnceLock;

/// Bit-reflected CRC32C (Castagnoli) polynomial, 0x1EDC6F41 reversed.
const POLY: u32 = 0x82F6_3B78;

/// Eight slicing tables: `TABLES[0]` is the classic byte-at-a-time table,
/// `TABLES[k][b]` extends `TABLES[k-1][b]` by one zero byte.
type Tables = [[u32; 256]; 8];

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (b, slot) in t[0].iter_mut().enumerate() {
            let mut crc = b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        for k in 1..8 {
            for b in 0..256 {
                let prev = t[k - 1][b];
                t[k][b] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// CRC32C of `data` in one shot.
///
/// ```
/// // The canonical check vector for the Castagnoli polynomial.
/// assert_eq!(rlz_codecs::hash::crc32c(b"123456789"), 0xE306_9283);
/// ```
#[inline]
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Extends a running CRC32C with more data (`crc32c_append(crc32c(a), b) ==
/// crc32c(a ++ b)`), so callers can checksum streamed or scattered input
/// without concatenating it.
pub fn crc32c_append(crc: u32, data: &[u8]) -> u32 {
    let t = tables();
    let mut crc = !crc;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        // Fold the CRC into the first word, then look all 8 bytes up in
        // their position-specific tables; XOR order is associative so the
        // eight lookups have no serial dependency between them.
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ crc;
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][ch[4] as usize]
            ^ t[2][ch[5] as usize]
            ^ t[1][ch[6] as usize]
            ^ t[0][ch[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-at-a-time reference implementation straight off the polynomial.
    fn reference(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // RFC 3720 / iSCSI test vectors for CRC32C.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn slicing_matches_reference_at_all_alignments() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 31 % 251) as u8).collect();
        for start in 0..9 {
            for len in [0, 1, 7, 8, 9, 63, 64, 65, 500, 1000] {
                if start + len > data.len() {
                    continue;
                }
                let slice = &data[start..start + len];
                assert_eq!(crc32c(slice), reference(slice), "start={start} len={len}");
            }
        }
    }

    #[test]
    fn append_is_concatenation() {
        let a = b"hello, ";
        let b = b"world";
        let whole = [&a[..], &b[..]].concat();
        assert_eq!(crc32c_append(crc32c(a), b), crc32c(&whole));
        for split in 0..whole.len() {
            let (x, y) = whole.split_at(split);
            assert_eq!(crc32c_append(crc32c(x), y), crc32c(&whole));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..256u32).map(|i| (i % 251) as u8).collect();
        let good = crc32c(&data);
        let mut tampered = data.clone();
        for bit in [0usize, 1, 777, 2047] {
            tampered[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&tampered), good, "bit {bit} flip went undetected");
            tampered[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32c(&tampered), good);
    }
}
