//! Simple-9 word-aligned coding (Anh & Moffat, 2005).
//!
//! Each 32-bit word spends 4 bits on a selector and 28 on payload; the nine
//! selectors pack 28×1-bit, 14×2-bit, 9×3-bit, 7×4-bit, 5×5-bit, 4×7-bit,
//! 3×9-bit, 2×14-bit or 1×28-bit values. The paper's future-work section
//! suggests Simple-9 as an alternative to vbyte for factor lengths; we add
//! an escape selector (9) that stores one full 32-bit value in the following
//! word so arbitrary `u32` input round-trips.

use crate::{CodecError, IntCodec, Result};

/// (values per word, bits per value) for selectors 0..=8.
const CONFIGS: [(usize, u32); 9] = [
    (28, 1),
    (14, 2),
    (9, 3),
    (7, 4),
    (5, 5),
    (4, 7),
    (3, 9),
    (2, 14),
    (1, 28),
];

/// Selector marking "next word is one raw 32-bit value".
const ESCAPE: u32 = 9;

/// The Simple-9 codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct Simple9;

impl IntCodec for Simple9 {
    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        let mut i = 0usize;
        while i < values.len() {
            if values[i] >= 1 << 28 {
                out.extend_from_slice(&(ESCAPE << 28).to_le_bytes());
                out.extend_from_slice(&values[i].to_le_bytes());
                i += 1;
                continue;
            }
            // Greedy: densest selector whose group fits. Positions past the
            // end of input are treated as zero padding.
            let mut chosen = CONFIGS.len() - 1;
            'sel: for (sel, &(count, bits)) in CONFIGS.iter().enumerate() {
                let limit = if bits == 32 {
                    u32::MAX
                } else {
                    (1u32 << bits) - 1
                };
                for j in 0..count {
                    if let Some(&v) = values.get(i + j) {
                        if v > limit {
                            continue 'sel;
                        }
                    }
                }
                chosen = sel;
                break;
            }
            let (count, bits) = CONFIGS[chosen];
            let mut word = (chosen as u32) << 28;
            for j in 0..count {
                let v = values.get(i + j).copied().unwrap_or(0);
                word |= v << (j as u32 * bits);
            }
            out.extend_from_slice(&word.to_le_bytes());
            i += count.min(values.len() - i);
        }
    }

    fn decode(&self, data: &[u8], n: usize, out: &mut Vec<u32>) -> Result<usize> {
        let mut pos = 0usize;
        let mut produced = 0usize;
        // One 4-byte word yields at most 28 values: capping the reservation
        // keeps a corrupt count from driving a huge allocation up front.
        out.reserve(n.min(data.len().saturating_mul(7)));
        while produced < n {
            let Some(word_bytes) = data.get(pos..pos + 4) else {
                return Err(CodecError::UnexpectedEof);
            };
            let word = u32::from_le_bytes(word_bytes.try_into().expect("4 bytes"));
            pos += 4;
            let sel = word >> 28;
            if sel == ESCAPE {
                let Some(raw) = data.get(pos..pos + 4) else {
                    return Err(CodecError::UnexpectedEof);
                };
                out.push(u32::from_le_bytes(raw.try_into().expect("4 bytes")));
                pos += 4;
                produced += 1;
                continue;
            }
            let Some(&(count, bits)) = CONFIGS.get(sel as usize) else {
                return Err(CodecError::Corrupt("invalid simple9 selector"));
            };
            let mask = (1u32 << bits) - 1;
            let take = count.min(n - produced);
            for j in 0..take {
                out.push((word >> (j as u32 * bits)) & mask);
            }
            produced += take;
        }
        Ok(pos)
    }

    fn name(&self) -> &'static str {
        "simple9"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_28_single_bits_in_one_word() {
        let values = vec![1u32; 28];
        let enc = Simple9.encode_to_vec(&values);
        assert_eq!(enc.len(), 4);
        assert_eq!(Simple9.decode_to_vec(&enc, 28).unwrap(), values);
    }

    #[test]
    fn escape_handles_large_values() {
        let values = vec![u32::MAX, 1 << 28, (1 << 28) - 1];
        let enc = Simple9.encode_to_vec(&values);
        let dec = Simple9.decode_to_vec(&enc, values.len()).unwrap();
        assert_eq!(dec, values);
    }

    #[test]
    fn partial_final_group() {
        // 3 one-bit values: packed with the 28×1 selector, padded.
        let values = vec![1u32, 0, 1];
        let enc = Simple9.encode_to_vec(&values);
        assert_eq!(enc.len(), 4);
        assert_eq!(Simple9.decode_to_vec(&enc, 3).unwrap(), values);
    }

    #[test]
    fn mixed_magnitudes() {
        let values: Vec<u32> = (0..500).map(|i| (i * i * 31) % 100_000).collect();
        let enc = Simple9.encode_to_vec(&values);
        assert_eq!(Simple9.decode_to_vec(&enc, values.len()).unwrap(), values);
        // Should be denser than raw u32 for this distribution.
        assert!(enc.len() < values.len() * 4);
    }

    #[test]
    fn invalid_selector_rejected() {
        // Selectors 10..15 are undefined.
        let word = (10u32 << 28).to_le_bytes();
        assert_eq!(
            Simple9.decode_to_vec(&word, 1),
            Err(CodecError::Corrupt("invalid simple9 selector"))
        );
    }
}
