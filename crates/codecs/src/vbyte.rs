//! Variable-byte coding — the paper's `V` position/length coder.
//!
//! Each byte carries 7 data bits; the high bit flags continuation. Factor
//! lengths in an RLZ encoding are mostly below 100 (Figure 3 of the paper),
//! so the vast majority of lengths take a single byte, which is exactly why
//! the paper picked vbyte for the `V` coders.

use crate::{CodecError, IntCodec, Result};

/// The variable-byte codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct VByte;

/// Appends the vbyte encoding of a single value.
#[inline]
pub fn write_u32(mut v: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded size of a value in bytes (1–5).
#[inline]
pub fn encoded_len(v: u32) -> usize {
    match v {
        0..=0x7F => 1,
        0x80..=0x3FFF => 2,
        0x4000..=0x1F_FFFF => 3,
        0x20_0000..=0xFFF_FFFF => 4,
        _ => 5,
    }
}

/// Encoded size of a 64-bit value in bytes (1–10).
#[inline]
pub fn encoded_len_u64(v: u64) -> usize {
    // ceil(bits/7), with v == 0 still costing one byte.
    let bits = 64 - v.max(1).leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Reads one vbyte value from `data[*pos..]`, advancing `pos`.
#[inline]
pub fn read_u32(data: &[u8], pos: &mut usize) -> Result<u32> {
    let mut v: u32 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = data.get(*pos) else {
            return Err(CodecError::UnexpectedEof);
        };
        *pos += 1;
        let payload = (byte & 0x7F) as u32;
        if shift == 28 && payload > 0xF {
            return Err(CodecError::Corrupt("vbyte value exceeds u32"));
        }
        if shift > 28 {
            return Err(CodecError::Corrupt("vbyte run too long"));
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Appends a vbyte-encoded `u64` (used by store headers for file offsets).
#[inline]
pub fn write_u64(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one vbyte-encoded `u64` from `data[*pos..]`, advancing `pos`.
#[inline]
pub fn read_u64(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = data.get(*pos) else {
            return Err(CodecError::UnexpectedEof);
        };
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::Corrupt("vbyte u64 run too long"));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

impl IntCodec for VByte {
    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        out.reserve(values.len());
        for &v in values {
            write_u32(v, out);
        }
    }

    fn decode(&self, data: &[u8], n: usize, out: &mut Vec<u32>) -> Result<usize> {
        let mut pos = 0usize;
        out.reserve(n.min(data.len()));
        let mut remaining = n;
        // Word-at-a-time fast path: RLZ factor lengths are mostly < 128
        // (Fig. 3), so long runs of single-byte codes dominate. Load 8
        // input bytes at once; if no continuation bit is set they are 8
        // complete values. A word containing a continuation bit falls back
        // to the scalar reader for one value, then retries the fast path.
        const MSB: u64 = 0x8080_8080_8080_8080;
        while remaining >= 8 {
            match data.get(pos..pos + 8) {
                Some(chunk) => {
                    let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
                    if word & MSB == 0 {
                        out.extend((0..8).map(|i| ((word >> (8 * i)) & 0x7F) as u32));
                        pos += 8;
                        remaining -= 8;
                        continue;
                    }
                }
                None => break,
            }
            out.push(read_u32(data, &mut pos)?);
            remaining -= 1;
        }
        for _ in 0..remaining {
            out.push(read_u32(data, &mut pos)?);
        }
        Ok(pos)
    }

    fn name(&self) -> &'static str {
        "vbyte"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_byte_values() {
        let mut out = Vec::new();
        write_u32(0, &mut out);
        write_u32(127, &mut out);
        assert_eq!(out, vec![0, 127]);
    }

    #[test]
    fn boundary_values() {
        for v in [
            0u32,
            1,
            127,
            128,
            16383,
            16384,
            0x1F_FFFF,
            0x20_0000,
            u32::MAX,
        ] {
            let mut out = Vec::new();
            write_u32(v, &mut out);
            assert_eq!(out.len(), encoded_len(v), "value {v}");
            let mut pos = 0;
            assert_eq!(read_u32(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn rejects_overlong_encoding() {
        // Six continuation bytes cannot be a valid u32.
        let data = [0x80, 0x80, 0x80, 0x80, 0x80, 0x01];
        let mut pos = 0;
        assert!(read_u32(&data, &mut pos).is_err());
    }

    #[test]
    fn rejects_u32_overflow_in_fifth_byte() {
        // 5th byte payload 0x10 would set bit 32.
        let data = [0xFF, 0xFF, 0xFF, 0xFF, 0x10];
        let mut pos = 0;
        assert!(read_u32(&data, &mut pos).is_err());
        // While 0x0F is exactly u32::MAX.
        let data = [0xFF, 0xFF, 0xFF, 0xFF, 0x0F];
        let mut pos = 0;
        assert_eq!(read_u32(&data, &mut pos).unwrap(), u32::MAX);
    }

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, 0x7F, 0x80, u32::MAX as u64, u64::MAX, 1 << 50] {
            let mut out = Vec::new();
            write_u64(v, &mut out);
            let mut pos = 0;
            assert_eq!(read_u64(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn word_fast_path_matches_scalar_decoding() {
        use crate::IntCodec;
        // Mix runs of single-byte values (fast path) with multi-byte values
        // (scalar fallback) at every alignment relative to the 8-byte word.
        for lead in 0..9usize {
            let mut values: Vec<u32> = (0..lead as u32).collect();
            values.push(1 << 20); // 3-byte code breaks the word
            values.extend(0..23u32); // long single-byte tail
            values.push(u32::MAX);
            values.extend(100..105u32); // short tail below 8 values
            let enc = VByte.encode_to_vec(&values);
            let mut out = vec![99u32; 4]; // stale contents must be replaced
            let used = VByte.decode_into(&enc, values.len(), &mut out).unwrap();
            assert_eq!(used, enc.len(), "lead {lead}");
            assert_eq!(out, values, "lead {lead}");
        }
    }

    #[test]
    fn most_small_lengths_take_one_byte() {
        // The property the paper relies on (Fig. 3): lengths < 128 are 1 byte.
        for v in 0..128u32 {
            assert_eq!(encoded_len(v), 1);
        }
    }
}
