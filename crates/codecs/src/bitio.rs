//! LSB-first bit-oriented reader and writer.
//!
//! Bits are appended into the low end of an accumulator and flushed to bytes
//! least-significant-bit first, the convention DEFLATE uses; the `zlite`
//! compressor and the bit-oriented integer codecs share this module.

use crate::{CodecError, Result};

/// Maximum number of bits accepted by a single `write_bits`/`read_bits`
/// call. Keeping it below 64 minus a byte of slack lets the accumulator
/// logic stay branch-light.
pub const MAX_BITS: u32 = 56;

/// Accumulates bits LSB-first and flushes them into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `n` bits of `value` (`n <= 56`).
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= MAX_BITS);
        let value = if n == 0 {
            0
        } else {
            value & (u64::MAX >> (64 - n))
        };
        self.acc |= value << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Appends `n` zero bits followed by a one bit (unary code for `n`).
    #[inline]
    pub fn write_unary(&mut self, n: u32) {
        let mut rest = n;
        while rest >= MAX_BITS {
            self.write_bits(0, MAX_BITS);
            rest -= MAX_BITS;
        }
        self.write_bits(1u64 << rest, rest + 1);
    }

    /// Number of bits written so far.
    #[inline]
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + self.nbits as u64
    }

    /// Pads the final partial byte with zeros and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push(self.acc as u8);
        }
        self.out
    }

    /// Pads to a byte boundary and appends to an existing buffer.
    pub fn finish_into(mut self, out: &mut Vec<u8>) {
        if self.nbits > 0 {
            self.out.push(self.acc as u8);
        }
        out.extend_from_slice(&self.out);
    }
}

/// Reads bits LSB-first from a byte slice, tracking exact consumption.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte to load into the accumulator.
    next_byte: usize,
    acc: u64,
    nbits: u32,
    consumed_bits: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            next_byte: 0,
            acc: 0,
            nbits: 0,
            consumed_bits: 0,
        }
    }

    #[inline]
    fn refill(&mut self, need: u32) -> Result<()> {
        while self.nbits < need {
            let Some(&b) = self.data.get(self.next_byte) else {
                return Err(CodecError::UnexpectedEof);
            };
            self.acc |= (b as u64) << self.nbits;
            self.nbits += 8;
            self.next_byte += 1;
        }
        Ok(())
    }

    /// Reads `n` bits (`n <= 56`), least significant first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= MAX_BITS);
        if n == 0 {
            return Ok(0);
        }
        self.refill(n)?;
        let v = self.acc & (u64::MAX >> (64 - n));
        self.acc >>= n;
        self.nbits -= n;
        self.consumed_bits += n as u64;
        Ok(v)
    }

    /// Reads a unary code: the count of zero bits before the next one bit.
    #[inline]
    pub fn read_unary(&mut self) -> Result<u32> {
        let mut count = 0u32;
        loop {
            self.refill(1)?;
            if self.acc & 1 == 1 {
                self.acc >>= 1;
                self.nbits -= 1;
                self.consumed_bits += 1;
                return Ok(count);
            }
            // Skip a run of zeros currently buffered.
            let zeros = (self.acc.trailing_zeros()).min(self.nbits);
            self.acc >>= zeros;
            self.nbits -= zeros;
            self.consumed_bits += zeros as u64;
            count = count
                .checked_add(zeros)
                .ok_or(CodecError::Corrupt("unary run overflows u32"))?;
        }
    }

    /// Peeks at the next `n` bits without consuming them, zero-padding past
    /// the end of input (callers that rely on padding must ensure, as the
    /// `zlite` format does, that a terminator symbol stops decoding before
    /// padding is ever consumed).
    #[inline]
    pub fn peek_bits_padded(&mut self, n: u32) -> u64 {
        debug_assert!(n <= MAX_BITS);
        while self.nbits < n {
            let Some(&b) = self.data.get(self.next_byte) else {
                break;
            };
            self.acc |= (b as u64) << self.nbits;
            self.nbits += 8;
            self.next_byte += 1;
        }
        if n == 0 {
            0
        } else {
            self.acc & (u64::MAX >> (64 - n))
        }
    }

    /// Consumes `n` bits previously seen via [`BitReader::peek_bits_padded`].
    /// Fails if the input genuinely does not hold `n` more bits.
    #[inline]
    pub fn consume_bits(&mut self, n: u32) -> Result<()> {
        if n > self.nbits {
            return Err(CodecError::UnexpectedEof);
        }
        self.acc >>= n;
        self.nbits -= n;
        self.consumed_bits += n as u64;
        Ok(())
    }

    /// Discards bits up to the next byte boundary of the underlying input.
    #[inline]
    pub fn align_byte(&mut self) {
        let rem = (self.consumed_bits % 8) as u32;
        if rem != 0 {
            let drop = 8 - rem;
            debug_assert!(self.nbits >= drop);
            self.acc >>= drop;
            self.nbits -= drop;
            self.consumed_bits += drop as u64;
        }
    }

    /// Total bits consumed by reads so far.
    #[inline]
    pub fn bits_consumed(&self) -> u64 {
        self.consumed_bits
    }

    /// Bytes consumed, rounding the final partial byte up (matching the
    /// writer's padding).
    #[inline]
    pub fn bytes_consumed(&self) -> usize {
        self.consumed_bits.div_ceil(8) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF, 16);
        w.write_bits(0, 1);
        w.write_bits(0x12345678, 32);
        w.write_bits(1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xFFFF);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(32).unwrap(), 0x12345678);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.bits_consumed(), 53);
        assert_eq!(r.bytes_consumed(), 7);
    }

    #[test]
    fn unary_roundtrip() {
        let values = [0u32, 1, 2, 7, 8, 63, 64, 100, 1000];
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_unary(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_unary().unwrap(), v);
        }
    }

    #[test]
    fn eof_is_reported() {
        let mut r = BitReader::new(&[0xAB]);
        assert_eq!(r.read_bits(8).unwrap(), 0xAB);
        assert_eq!(r.read_bits(1), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn zero_width_reads_and_writes() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 0);
        assert_eq!(w.bit_len(), 0);
        let bytes = w.finish();
        assert!(bytes.is_empty());
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn unary_all_zero_bytes_then_one() {
        // 20 zero bits spanning multiple refills.
        let mut w = BitWriter::new();
        w.write_unary(20);
        w.write_bits(0b11, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_unary().unwrap(), 20);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
    }

    #[test]
    fn masks_extraneous_high_bits() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 4); // only low 4 bits may land
        w.write_bits(0, 4);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0x0F]);
    }
}
