//! PForDelta — patched frame-of-reference coding (Zukowski et al., ICDE'06).
//!
//! Values are grouped in blocks (default 128). Each block picks a bit width
//! `b`, packs the low `b` bits of every value, and records values that do
//! not fit as *exceptions*: their in-block index plus the overflowing high
//! part, patched back in after unpacking. The width is chosen per block by
//! exact cost minimization over all 33 candidate widths.
//!
//! Named by the paper's future-work section as a candidate upgrade over
//! vbyte for RLZ factor streams.

use crate::bitio::{BitReader, BitWriter};
use crate::{vbyte, CodecError, IntCodec, Result};

/// PForDelta codec with a configurable block size.
#[derive(Debug, Clone, Copy)]
pub struct PForDelta {
    block: usize,
}

impl Default for PForDelta {
    fn default() -> Self {
        PForDelta { block: 128 }
    }
}

impl PForDelta {
    /// Creates a codec with the given block size (1..=255).
    ///
    /// # Panics
    ///
    /// Panics when `block` is 0 or above 255 (exception indices are stored
    /// as single bytes).
    pub fn with_block_size(block: usize) -> Self {
        assert!((1..=255).contains(&block), "block size must be 1..=255");
        PForDelta { block }
    }

    fn encode_block(&self, values: &[u32], out: &mut Vec<u8>) {
        // Exact cost for each candidate width: packed bits + exception bytes.
        let mut best_b = 32u32;
        let mut best_cost = usize::MAX;
        for b in 0..=32u32 {
            let packed = (values.len() * b as usize).div_ceil(8);
            let mut exc = 0usize;
            for &v in values {
                if b < 32 && (v >> b) != 0 {
                    exc += 1 + vbyte::encoded_len(v >> b);
                }
            }
            let cost = packed + exc;
            if cost < best_cost {
                best_cost = cost;
                best_b = b;
            }
        }
        let b = best_b;
        let exceptions: Vec<(usize, u32)> = values
            .iter()
            .enumerate()
            .filter(|&(_, &v)| b < 32 && (v >> b) != 0)
            .map(|(i, &v)| (i, v >> b))
            .collect();
        out.push(b as u8);
        debug_assert!(exceptions.len() <= self.block);
        out.push(exceptions.len() as u8);
        let mut w = BitWriter::new();
        if b > 0 {
            let mask = if b == 32 { u32::MAX } else { (1u32 << b) - 1 };
            for &v in values {
                w.write_bits((v & mask) as u64, b);
            }
        }
        w.finish_into(out);
        for (idx, high) in exceptions {
            out.push(idx as u8);
            vbyte::write_u32(high, out);
        }
    }

    fn decode_block(&self, data: &[u8], count: usize, out: &mut Vec<u32>) -> Result<usize> {
        let mut pos = 0usize;
        let Some(&b) = data.first() else {
            return Err(CodecError::UnexpectedEof);
        };
        let b = b as u32;
        if b > 32 {
            return Err(CodecError::Corrupt("pfor width above 32"));
        }
        let Some(&n_exc) = data.get(1) else {
            return Err(CodecError::UnexpectedEof);
        };
        pos += 2;
        let packed_bytes = (count * b as usize).div_ceil(8);
        let Some(packed) = data.get(pos..pos + packed_bytes) else {
            return Err(CodecError::UnexpectedEof);
        };
        let start = out.len();
        if b == 0 {
            out.resize(start + count, 0);
        } else {
            let mut r = BitReader::new(packed);
            for _ in 0..count {
                out.push(r.read_bits(b)? as u32);
            }
        }
        pos += packed_bytes;
        for _ in 0..n_exc {
            let Some(&idx) = data.get(pos) else {
                return Err(CodecError::UnexpectedEof);
            };
            pos += 1;
            let high = vbyte::read_u32(data, &mut pos)?;
            let slot = out
                .get_mut(start + idx as usize)
                .ok_or(CodecError::Corrupt("pfor exception index out of range"))?;
            let patched = (high as u64) << b | *slot as u64;
            *slot =
                u32::try_from(patched).map_err(|_| CodecError::Corrupt("pfor patch overflow"))?;
        }
        Ok(pos)
    }
}

impl IntCodec for PForDelta {
    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        for chunk in values.chunks(self.block) {
            self.encode_block(chunk, out);
        }
    }

    fn decode(&self, data: &[u8], n: usize, out: &mut Vec<u32>) -> Result<usize> {
        let mut pos = 0usize;
        let mut remaining = n;
        while remaining > 0 {
            let count = remaining.min(self.block);
            pos += self.decode_block(&data[pos.min(data.len())..], count, out)?;
            remaining -= count;
        }
        Ok(pos)
    }

    fn name(&self) -> &'static str {
        "pfor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_small_values_pack_tightly() {
        let values = vec![3u32; 128];
        let enc = PForDelta::default().encode_to_vec(&values);
        // 2 header bytes + 128 * 2 bits = 32 bytes.
        assert_eq!(enc.len(), 2 + 32);
        assert_eq!(
            PForDelta::default().decode_to_vec(&enc, 128).unwrap(),
            values
        );
    }

    #[test]
    fn outliers_become_exceptions() {
        let mut values = vec![1u32; 128];
        values[17] = u32::MAX;
        values[99] = 1 << 20;
        let codec = PForDelta::default();
        let enc = codec.encode_to_vec(&values);
        assert_eq!(codec.decode_to_vec(&enc, 128).unwrap(), values);
        // Far smaller than raw encoding despite two 32-bit outliers.
        assert!(enc.len() < 128 * 4 / 4);
    }

    #[test]
    fn multi_block_and_partial_final_block() {
        let values: Vec<u32> = (0..300).map(|i| i * 7).collect();
        let codec = PForDelta::default();
        let enc = codec.encode_to_vec(&values);
        assert_eq!(codec.decode_to_vec(&enc, 300).unwrap(), values);
    }

    #[test]
    fn tiny_block_sizes() {
        let values: Vec<u32> = (0..50).map(|i| i % 9).collect();
        for block in [1usize, 2, 3, 7, 255] {
            let codec = PForDelta::with_block_size(block);
            let enc = codec.encode_to_vec(&values);
            assert_eq!(
                codec.decode_to_vec(&enc, values.len()).unwrap(),
                values,
                "block {block}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn zero_block_size_rejected() {
        let _ = PForDelta::with_block_size(0);
    }

    #[test]
    fn corrupt_width_rejected() {
        let data = [77u8, 0, 0, 0];
        assert!(PForDelta::default().decode_to_vec(&data, 4).is_err());
    }

    #[test]
    fn corrupt_exception_index_rejected() {
        // One value, width 0, one exception pointing past the block.
        let data = [0u8, 1, 200, 1];
        assert!(PForDelta::default().decode_to_vec(&data, 1).is_err());
    }
}
