//! Asserts the zero-allocation claim of the fused decode pipeline: once a
//! reader thread is warm (output buffer and per-thread scratch grown to the
//! working-set size), `RlzStore::get_into` performs **zero** heap
//! allocations per document get.
//!
//! The check uses a counting global allocator wrapping the system one; the
//! count is sampled tightly around the measured loop so test-harness
//! allocations outside it don't interfere. Single-threaded by construction
//! (one `#[test]` in this binary) so no other test's allocations can leak
//! into the window.

use rlz_core::{Dictionary, PairCoding, SampleStrategy};
use rlz_store::{DocStore, RlzStore, RlzStoreBuilder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts every allocation and reallocation; frees are not counted (a hot
/// path that frees must have allocated first, so allocs alone suffice).
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates every operation unchanged to `System`; the counter is a
// relaxed atomic increment with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_get_into_performs_zero_allocations() {
    // One store per coding family with its own scratch shape: byte-aligned
    // (UV), tANS entropy-coded (FF) and LZ4-style (LL) factor streams must
    // all hit the allocation-free warm path.
    for coding in [PairCoding::UV, PairCoding::FF, PairCoding::LL] {
        check_coding(coding);
    }
}

fn check_coding(coding: PairCoding) {
    let docs: Vec<Vec<u8>> = (0..64)
        .map(|i| {
            format!(
                "<html><nav>home about contact</nav><p>page {i} body {} novel-\u{1}{}</p></html>",
                "common phrase ".repeat(i % 17),
                i * 31
            )
            .into_bytes()
        })
        .collect();
    let all: Vec<u8> = docs.concat();
    let dict = Dictionary::sample(&all, 2048, 256, SampleStrategy::Evenly);
    let dir = std::env::temp_dir().join(format!(
        "rlz-alloc-test-{}-{}",
        coding.name(),
        std::process::id()
    ));
    let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
    RlzStoreBuilder::new(dict, coding)
        .build(&dir, &slices)
        .unwrap();
    // Resident payload: reads are memcpys, so the loop below exercises
    // exactly the decode pipeline (a FileBackend pread doesn't allocate in
    // userspace either, but resident keeps the kernel out of the picture).
    let store = RlzStore::open_resident(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // Warm-up: grow the output buffer and this thread's scratch (encoded-
    // record bytes + factor streams) to the high-water mark of every doc.
    let mut out = Vec::new();
    for round in 0..2 {
        for (i, doc) in docs.iter().enumerate() {
            out.clear();
            store.get_into(i, &mut out).unwrap();
            assert_eq!(&out, doc, "round {round} doc {i}");
        }
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..docs.len() {
        out.clear();
        store.get_into(i, &mut out).unwrap();
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm RlzStore::get_into({}) allocated {} time(s) over {} gets",
        coding.name(),
        after - before,
        docs.len()
    );
}
