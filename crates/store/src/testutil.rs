//! Self-cleaning temporary directories for store tests (no external
//! tempfile dependency).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique temp directory removed on drop.
pub struct TestDir {
    path: PathBuf,
}

impl TestDir {
    /// Creates `$TMPDIR/rlz-test-{name}-{pid}-{seq}`.
    pub fn new(name: &str) -> Self {
        let seq = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("rlz-test-{name}-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create test dir");
        TestDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
