//! Sealed, immutable segments and the manifest that publishes them.
//!
//! The live store folds its in-memory tail into **segments**: append-only
//! files of RLZ-encoded records, each published atomically and never
//! rewritten. A segment file (`seg-NNNNNN.seg`) is:
//!
//! ```text
//! "RLZG" 0x01                         header: magic + version
//! record bytes …                      encoded docs, back to back
//! footer:
//!   count:u32le
//!   count × (doc_id:u32le kind:u8 len:u32le crc32c:u32le)
//! footer_len:u32le  footer_crc:u32le  trailer (last 8 bytes)
//! ```
//!
//! Record offsets are not stored: they are reconstructed cumulatively from
//! the header end, which keeps the footer small and makes a truncated file
//! self-evident (the trailer will not parse, or the payload region will be
//! shorter than the footer claims). `kind` is PUT (an encoded document) or
//! TOMBSTONE (len 0 — the doc was deleted at or before seal time). Each
//! record carries its own CRC32C over the *encoded* bytes, verified on
//! every read and by `rlz-verify` scrubs.
//!
//! Publication is the classic crash-safe dance: write `seg-N.seg.tmp`,
//! fsync the file, rename into place, fsync the directory, and only then
//! publish a new `MANIFEST` (same tmp/rename/dir-fsync dance) that lists
//! the segment. Recovery trusts the manifest alone: any `*.tmp` or
//! unlisted `seg-*.seg` is debris from an interrupted seal and is deleted —
//! its data is still in the WAL, which replays after the listed segments
//! load.

use crate::backend::{FileBackend, StorageBackend};
use crate::StoreError;
use rlz_codecs::hash::crc32c;
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

/// Manifest file name inside a live store directory. Its *presence* is how
/// tools (`rlz-serve`, `rlz-verify`) detect the live family.
pub const MANIFEST_FILE: &str = "MANIFEST";

const SEGMENT_MAGIC: &[u8; 4] = b"RLZG";
const SEGMENT_VERSION: u8 = 1;
const SEGMENT_HEADER: u64 = 5;
/// Bytes per footer index entry: doc_id + kind + len + crc.
const ENTRY_BYTES: usize = 13;

const MANIFEST_MAGIC: &[u8; 4] = b"RLZM";
const MANIFEST_VERSION: u8 = 1;

/// Record kind: an encoded document.
pub(crate) const KIND_PUT: u8 = 0;
/// Record kind: a tombstone (the doc is deleted; len is 0).
pub(crate) const KIND_TOMBSTONE: u8 = 1;

/// Segment file name for sequence number `n`.
pub fn segment_file_name(n: u64) -> String {
    format!("seg-{n:06}.seg")
}

/// One record to be sealed into a segment: the doc id and either its
/// encoded bytes or a tombstone.
pub(crate) enum SealRecord<'a> {
    Put(u32, &'a [u8]),
    Tombstone(u32),
}

/// Writes and publishes a segment file containing `records`, in order.
/// Crash-safe: the file only becomes visible under its final name after
/// its bytes are on stable storage, and the rename itself is made durable
/// by an fsync of the directory.
pub(crate) fn seal_segment(
    dir: &Path,
    seg_no: u64,
    records: &[SealRecord<'_>],
) -> Result<(), StoreError> {
    let final_name = segment_file_name(seg_no);
    let tmp_path = dir.join(format!("{final_name}.tmp"));
    let mut file = std::io::BufWriter::new(std::fs::File::create(&tmp_path)?);
    file.write_all(SEGMENT_MAGIC)?;
    file.write_all(&[SEGMENT_VERSION])?;
    let mut footer = Vec::with_capacity(4 + records.len() * ENTRY_BYTES);
    footer.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for record in records {
        let (id, kind, bytes): (u32, u8, &[u8]) = match record {
            SealRecord::Put(id, bytes) => (*id, KIND_PUT, bytes),
            SealRecord::Tombstone(id) => (*id, KIND_TOMBSTONE, &[]),
        };
        file.write_all(bytes)?;
        footer.extend_from_slice(&id.to_le_bytes());
        footer.push(kind);
        footer.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        footer.extend_from_slice(&crc32c(bytes).to_le_bytes());
    }
    file.write_all(&footer)?;
    file.write_all(&(footer.len() as u32).to_le_bytes())?;
    file.write_all(&crc32c(&footer).to_le_bytes())?;
    let file = file
        .into_inner()
        .map_err(|e| StoreError::Io(e.into_error()))?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp_path, dir.join(&final_name))?;
    sync_dir(dir)?;
    Ok(())
}

/// Fsyncs a directory so a just-completed rename survives power loss.
/// Directory fsync is a unix-ism; elsewhere the rename is the best we get.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// Footer index entry for one record in a sealed segment.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SegmentEntry {
    pub kind: u8,
    /// Byte offset of the encoded record from the start of the file.
    pub offset: u64,
    pub len: u32,
    pub crc: u32,
}

/// A read handle on one sealed segment: footer index in memory, record
/// bytes read positionally on demand, every read CRC-verified.
pub struct SegmentReader {
    /// Segment sequence number (from the file name / manifest).
    pub seg_no: u64,
    backend: FileBackend,
    index: HashMap<u32, SegmentEntry>,
    /// Footer order preserved for scrubbing (payload order).
    order: Vec<u32>,
    payload_bytes: u64,
}

impl SegmentReader {
    /// Opens `seg-N.seg` in `dir`, parsing and validating the footer.
    pub fn open(dir: &Path, seg_no: u64) -> Result<Self, StoreError> {
        let path = dir.join(segment_file_name(seg_no));
        let backend = FileBackend::open(&path)?;
        let total = backend.len();
        let fail = StoreError::corrupt;
        if total < SEGMENT_HEADER + 8 {
            return Err(fail("segment file too short"));
        }
        let mut head = [0u8; 5];
        backend.read_exact_at(&mut head, 0)?;
        if &head[..4] != SEGMENT_MAGIC {
            return Err(fail("segment has wrong magic"));
        }
        if head[4] != SEGMENT_VERSION {
            return Err(fail("segment has unknown version"));
        }
        let mut trailer = [0u8; 8];
        backend.read_exact_at(&mut trailer, total - 8)?;
        let footer_len = u32::from_le_bytes(trailer[..4].try_into().expect("4 bytes")) as u64;
        let footer_crc = u32::from_le_bytes(trailer[4..].try_into().expect("4 bytes"));
        if footer_len < 4 || SEGMENT_HEADER + footer_len + 8 > total {
            return Err(fail("segment footer length out of bounds"));
        }
        let mut footer = vec![0u8; footer_len as usize];
        backend.read_exact_at(&mut footer, total - 8 - footer_len)?;
        if crc32c(&footer) != footer_crc {
            return Err(fail("segment footer checksum mismatch"));
        }
        let count = u32::from_le_bytes(footer[..4].try_into().expect("4 bytes")) as usize;
        if footer.len() != 4 + count * ENTRY_BYTES {
            return Err(fail("segment footer length mismatches its count"));
        }
        let payload_bytes = total - 8 - footer_len - SEGMENT_HEADER;
        let mut index = HashMap::with_capacity(count);
        let mut order = Vec::with_capacity(count);
        let mut offset = SEGMENT_HEADER;
        for entry in footer[4..].chunks_exact(ENTRY_BYTES) {
            let id = u32::from_le_bytes(entry[..4].try_into().expect("4 bytes"));
            let kind = entry[4];
            let len = u32::from_le_bytes(entry[5..9].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(entry[9..13].try_into().expect("4 bytes"));
            if kind != KIND_PUT && kind != KIND_TOMBSTONE {
                return Err(fail("segment has unknown record kind"));
            }
            index.insert(
                id,
                SegmentEntry {
                    kind,
                    offset,
                    len,
                    crc,
                },
            );
            order.push(id);
            offset += len as u64;
        }
        if offset - SEGMENT_HEADER != payload_bytes {
            return Err(fail("segment record lengths mismatch payload size"));
        }
        Ok(SegmentReader {
            seg_no,
            backend,
            index,
            order,
            payload_bytes,
        })
    }

    /// Looks up `id` in this segment's index.
    pub(crate) fn entry(&self, id: u32) -> Option<SegmentEntry> {
        self.index.get(&id).copied()
    }

    /// Reads and CRC-verifies the encoded bytes of `entry` into `buf`
    /// (resized to fit).
    pub(crate) fn read_entry(
        &self,
        id: u32,
        entry: SegmentEntry,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        buf.resize(entry.len as usize, 0);
        self.backend.read_exact_at(buf, entry.offset)?;
        if crc32c(buf) != entry.crc {
            return Err(StoreError::Corrupt {
                what: "segment record checksum mismatch",
                block: None,
                doc_id: Some(id),
            });
        }
        Ok(())
    }

    /// Doc ids in payload order, for scrubbing.
    pub(crate) fn doc_order(&self) -> &[u32] {
        &self.order
    }

    /// Encoded payload bytes (excludes header/footer).
    pub(crate) fn payload_len(&self) -> u64 {
        self.payload_bytes
    }
}

/// The durable root of a live store: which segments exist, the next doc id,
/// and the highest WAL sequence the sealed segments already cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotone generation, bumped on every publish.
    pub gen: u64,
    /// Next doc id to assign.
    pub next_doc_id: u32,
    /// WAL frames with `seq <= applied_seq` are folded into segments and
    /// must not be replayed.
    pub applied_seq: u64,
    /// Sealed segment sequence numbers, oldest first.
    pub segments: Vec<u64>,
}

impl Manifest {
    /// A brand-new store: nothing sealed, nothing applied.
    pub fn empty() -> Self {
        Manifest {
            gen: 0,
            next_doc_id: 0,
            applied_seq: 0,
            segments: Vec::new(),
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.segments.len() * 8);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.push(MANIFEST_VERSION);
        out.extend_from_slice(&self.gen.to_le_bytes());
        out.extend_from_slice(&self.next_doc_id.to_le_bytes());
        out.extend_from_slice(&self.applied_seq.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for &s in &self.segments {
            out.extend_from_slice(&s.to_le_bytes());
        }
        let crc = crc32c(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(data: &[u8]) -> Result<Self, StoreError> {
        let fail = StoreError::corrupt;
        if data.len() < 4 {
            return Err(fail("manifest file too short"));
        }
        let (body, crc_bytes) = data.split_at(data.len() - 4);
        let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32c(body) != crc {
            return Err(fail("manifest checksum mismatch"));
        }
        let rest = body
            .strip_prefix(MANIFEST_MAGIC.as_slice())
            .ok_or_else(|| fail("manifest has wrong magic"))?;
        let (&version, rest) = rest
            .split_first()
            .ok_or_else(|| fail("truncated manifest"))?;
        if version != MANIFEST_VERSION {
            return Err(fail("segment has unknown version"));
        }
        if rest.len() < 24 {
            return Err(fail("truncated manifest header"));
        }
        let gen = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
        let next_doc_id = u32::from_le_bytes(rest[8..12].try_into().expect("4 bytes"));
        let applied_seq = u64::from_le_bytes(rest[12..20].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(rest[20..24].try_into().expect("4 bytes")) as usize;
        let seg_bytes = rest
            .get(24..)
            .filter(|b| b.len() == count.saturating_mul(8))
            .ok_or_else(|| fail("manifest segment list mismatches its count"))?;
        let segments = seg_bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        Ok(Manifest {
            gen,
            next_doc_id,
            applied_seq,
            segments,
        })
    }

    /// Loads the manifest from a live store directory.
    pub fn load(dir: &Path) -> Result<Self, StoreError> {
        let data = std::fs::read(dir.join(MANIFEST_FILE))?;
        Self::decode(&data)
    }

    /// Publishes this manifest atomically: tmp file, fsync, rename over
    /// `MANIFEST`, dir fsync. A crash leaves either the old or the new
    /// manifest — never a torn one (and a torn tmp never gets renamed).
    pub fn publish(&self, dir: &Path) -> Result<(), StoreError> {
        let tmp = dir.join("MANIFEST.tmp");
        let bytes = self.encode();
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
        sync_dir(dir)?;
        Ok(())
    }
}

/// Deletes seal debris: `*.tmp` files and `seg-*.seg` files not listed in
/// `manifest`. Returns the number of files removed. Safe because anything
/// not in the manifest is, by the publication ordering, also still in the
/// WAL (or was never acknowledged).
pub(crate) fn remove_debris(dir: &Path, manifest: &Manifest) -> Result<usize, StoreError> {
    let mut removed = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let is_tmp = name.ends_with(".tmp");
        let is_orphan_seg = name
            .strip_prefix("seg-")
            .and_then(|r| r.strip_suffix(".seg"))
            .and_then(|n| n.parse::<u64>().ok())
            .is_some_and(|n| !manifest.segments.contains(&n));
        if is_tmp || is_orphan_seg {
            std::fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;

    #[test]
    fn segment_roundtrip_and_crc() {
        let dir = TestDir::new("segment-roundtrip");
        let records = [
            SealRecord::Put(0, b"alpha record"),
            SealRecord::Tombstone(1),
            SealRecord::Put(2, b""),
            SealRecord::Put(7, b"last"),
        ];
        seal_segment(dir.path(), 3, &records).unwrap();
        let seg = SegmentReader::open(dir.path(), 3).unwrap();
        assert_eq!(seg.doc_order().len(), 4);
        assert_eq!(seg.doc_order(), &[0, 1, 2, 7]);
        assert_eq!(seg.payload_len(), 16);
        let mut buf = Vec::new();
        let e = seg.entry(0).unwrap();
        assert_eq!(e.kind, KIND_PUT);
        seg.read_entry(0, e, &mut buf).unwrap();
        assert_eq!(buf, b"alpha record");
        assert_eq!(seg.entry(1).unwrap().kind, KIND_TOMBSTONE);
        seg.read_entry(2, seg.entry(2).unwrap(), &mut buf).unwrap();
        assert!(buf.is_empty());
        assert!(seg.entry(3).is_none());
        // Flip a payload bit: the read fails typed, with the doc id.
        let path = dir.path().join(segment_file_name(3));
        let mut data = std::fs::read(&path).unwrap();
        data[SEGMENT_HEADER as usize] ^= 0x40;
        std::fs::write(&path, data).unwrap();
        let seg = SegmentReader::open(dir.path(), 3).unwrap();
        let err = seg
            .read_entry(0, seg.entry(0).unwrap(), &mut buf)
            .unwrap_err();
        match err {
            StoreError::Corrupt { doc_id, .. } => assert_eq!(doc_id, Some(0)),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_or_garbled_segment_is_a_typed_open_error() {
        let dir = TestDir::new("segment-truncated");
        seal_segment(dir.path(), 1, &[SealRecord::Put(0, b"some payload here")]).unwrap();
        let path = dir.path().join(segment_file_name(1));
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(
                SegmentReader::open(dir.path(), 1).is_err(),
                "cut at {cut} must not open"
            );
        }
        // Footer bit flip is also caught.
        let mut bad = full.clone();
        let n = bad.len();
        bad[n - 10] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(SegmentReader::open(dir.path(), 1).is_err());
    }

    #[test]
    fn manifest_roundtrip_publish_and_debris() {
        let dir = TestDir::new("segment-manifest");
        let mut m = Manifest::empty();
        m.publish(dir.path()).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap(), m);
        m.gen = 2;
        m.next_doc_id = 41;
        m.applied_seq = 97;
        m.segments = vec![1, 2];
        m.publish(dir.path()).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap(), m);
        // Debris: an unlisted segment and a stranded tmp vanish; listed
        // segments stay.
        seal_segment(dir.path(), 1, &[SealRecord::Put(0, b"keep")]).unwrap();
        seal_segment(dir.path(), 9, &[SealRecord::Put(1, b"orphan")]).unwrap();
        std::fs::write(dir.path().join("seg-000010.seg.tmp"), b"partial").unwrap();
        let removed = remove_debris(dir.path(), &m).unwrap();
        assert_eq!(removed, 2);
        assert!(dir.path().join(segment_file_name(1)).exists());
        assert!(!dir.path().join(segment_file_name(9)).exists());
        assert!(!dir.path().join("seg-000010.seg.tmp").exists());
        // Corrupt manifest bytes are a typed error, not a panic.
        let mut data = std::fs::read(dir.path().join(MANIFEST_FILE)).unwrap();
        data[6] ^= 0xFF;
        std::fs::write(dir.path().join(MANIFEST_FILE), &data).unwrap();
        assert!(Manifest::load(dir.path()).is_err());
    }
}
