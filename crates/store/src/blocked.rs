//! Blocked-compression stores — the paper's baselines (§2.2, §4).
//!
//! "Collections are split into fixed size blocks and compressed with an
//! adaptive algorithm (zlib)." Retrieval of one document decompresses its
//! whole block; block size trades compression (bigger = better ratio)
//! against access latency (bigger = slower), the exact trade-off of
//! Tables 6, 7 and 9. A block size of zero puts one document per block
//! (the paper's "0.0MB" rows).
//!
//! # Self-describing block format
//!
//! The metadata is a per-block offset table whose entries mark each block
//! *compressed* or *stored*: at build time a block whose coded form would
//! not be smaller than the raw bytes is written verbatim, and reads pass
//! it through with a plain copy instead of a trial decompression. Any
//! block codec is therefore random-accessible (the table gives exact
//! extents) and incompressible data costs memcpy speed, not codec speed.
//! The previous metadata layouts (leading codec tag with no stored flags;
//! stored flags but no checksums) are still readable.
//!
//! # Integrity
//!
//! Stores written by this version carry a CRC32C per block, computed over
//! the exact bytes on disk (compressed or stored) and verified on every
//! read before any decompression runs. A mismatch surfaces as
//! [`StoreError::Corrupt`] naming the block — and through
//! [`DocStore::get_batch_results`], only the documents living in that
//! block fail; every other id in the batch still decodes.

use crate::backend::{FileBackend, MemBackend, StorageBackend};
use crate::cache::ShardedLru;
use crate::docmap::DocMap;
use crate::verify::{load_quarantine, BadUnit, ScrubReport};
use crate::{read_file, DocStore, Integrity, StoreError};
use rlz_codecs::hash::crc32c;
use rlz_codecs::vbyte;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

const BLOCKS_FILE: &str = "blocks.bin";
const META_FILE: &str = "meta.bin";
const MAP_FILE: &str = "docmap.bin";

/// Default block-cache capacity when enabled without an explicit size.
const DEFAULT_CACHE_BLOCKS: usize = 32;

/// Which general-purpose codec compresses each block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockCodec {
    /// DEFLATE-class (the paper's zlib baseline).
    Zlite(rlz_zlite::Level),
    /// LZMA-class (the paper's lzma baseline).
    Lzlite(rlz_lzlite::Level),
    /// FSE/tANS entropy coding (order-0; post-paper comparison point).
    Fse,
    /// LZ4-style fast-literal compression (post-paper comparison point).
    Lz4,
}

impl BlockCodec {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            BlockCodec::Zlite(_) => "zlib",
            BlockCodec::Lzlite(_) => "lzma",
            BlockCodec::Fse => "fse",
            BlockCodec::Lz4 => "lz4",
        }
    }

    pub(crate) fn compress(&self, data: &[u8]) -> Vec<u8> {
        match *self {
            BlockCodec::Zlite(level) => rlz_zlite::compress(data, level),
            BlockCodec::Lzlite(level) => rlz_lzlite::compress(data, level),
            BlockCodec::Fse => {
                let mut out = Vec::new();
                rlz_fse::tans::compress(data, &mut out);
                out
            }
            BlockCodec::Lz4 => {
                let mut out = Vec::new();
                rlz_fse::lz4::compress(data, &mut out);
                out
            }
        }
    }

    /// Decompresses one block into `out`, replacing its contents while
    /// reusing its capacity.
    fn decompress_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<(), StoreError> {
        match self {
            BlockCodec::Zlite(_) => Ok(rlz_zlite::decompress_into(data, out)?),
            BlockCodec::Lzlite(_) => Ok(rlz_lzlite::decompress_into(data, out)?),
            BlockCodec::Fse => {
                let mut scratch = rlz_fse::FseScratch::default();
                Ok(rlz_fse::tans::decompress_into(data, out, &mut scratch)?)
            }
            BlockCodec::Lz4 => Ok(rlz_fse::lz4::decompress_into(data, out)?),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            BlockCodec::Zlite(_) => 0,
            BlockCodec::Lzlite(_) => 1,
            BlockCodec::Fse => 2,
            BlockCodec::Lz4 => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, StoreError> {
        match tag {
            0 => Ok(BlockCodec::Zlite(rlz_zlite::Level::Default)),
            1 => Ok(BlockCodec::Lzlite(rlz_lzlite::Level::Default)),
            2 => Ok(BlockCodec::Fse),
            3 => Ok(BlockCodec::Lz4),
            _ => Err(StoreError::corrupt("unknown block codec tag")),
        }
    }
}

/// Marks the self-describing metadata layout (codec tag + per-block stored
/// flags). Chosen outside the codec-tag range so the legacy layout — whose
/// first byte is the codec tag itself — stays distinguishable.
const META_VERSION_SELF_DESCRIBING: u8 = 0xF5;

/// Marks the checksummed metadata layout: self-describing, plus a CRC32C
/// per block entry (little-endian, after the stored flag) computed over the
/// block's exact on-disk bytes.
const META_VERSION_CHECKSUMMED: u8 = 0xF6;

/// One block's location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockEntry {
    /// Offset of the block's bytes in `blocks.bin`.
    file_offset: u64,
    /// On-disk size (compressed size, or raw size for stored blocks).
    comp_len: u32,
    /// First document stored in this block.
    first_doc: u32,
    /// Uncompressed offset of the block's first byte in the collection.
    raw_start: u64,
    /// Stored verbatim: the codec could not shrink this block, so reads
    /// pass it through without decompression.
    stored: bool,
    /// CRC32C over the block's on-disk bytes; only meaningful when the
    /// store's integrity level is [`Integrity::Crc32c`].
    crc: u32,
}

/// One raw (uncompressed) block produced by [`BlockPacker`]: concatenated
/// whole documents plus the table fields the writer records for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RawBlock {
    /// The block's concatenated document bytes.
    pub bytes: Vec<u8>,
    /// Length of each document in the block, in order (feeds the docmap).
    pub doc_lens: Vec<usize>,
    /// Doc id of the block's first document.
    pub first_doc: u32,
    /// Uncompressed offset of the block's first byte in the collection.
    pub raw_start: u64,
}

/// Greedy whole-document packing into raw blocks — the single source of
/// truth for block boundaries, shared by the batch builder, the streaming
/// [`BlockedWriter`] and the chunked build pipeline so the three cannot
/// drift. `block_size == 0` places one document per block; documents are
/// never split.
#[derive(Debug)]
pub(crate) struct BlockPacker {
    block_size: usize,
    current: Vec<u8>,
    doc_lens: Vec<usize>,
    doc_id: u32,
    block_first: u32,
    block_start: u64,
    raw_at: u64,
}

impl BlockPacker {
    pub fn new(block_size: usize) -> Self {
        BlockPacker {
            block_size,
            current: Vec::new(),
            doc_lens: Vec::new(),
            doc_id: 0,
            block_first: 0,
            block_start: 0,
            raw_at: 0,
        }
    }

    /// Appends one document; returns the completed block when `doc` opens a
    /// new one.
    pub fn push(&mut self, doc: &[u8]) -> Option<RawBlock> {
        let flushed = if !self.current.is_empty()
            && (self.block_size == 0 || self.current.len() + doc.len() > self.block_size)
        {
            let block = RawBlock {
                bytes: std::mem::take(&mut self.current),
                doc_lens: std::mem::take(&mut self.doc_lens),
                first_doc: self.block_first,
                raw_start: self.block_start,
            };
            self.block_first = self.doc_id;
            self.block_start = self.raw_at;
            Some(block)
        } else {
            None
        };
        self.current.extend_from_slice(doc);
        self.doc_lens.push(doc.len());
        self.raw_at += doc.len() as u64;
        self.doc_id += 1;
        flushed
    }

    /// The final block, plus the lengths of any trailing zero-length
    /// documents that (matching the batch builder's rule) close the
    /// collection without a block of their own — they still need docmap
    /// entries. A zero-document collection emits one empty block.
    pub fn finish(self) -> (Option<RawBlock>, Vec<usize>) {
        if !self.current.is_empty() || self.doc_id == 0 {
            (
                Some(RawBlock {
                    bytes: self.current,
                    doc_lens: self.doc_lens,
                    first_doc: self.block_first,
                    raw_start: self.block_start,
                }),
                Vec::new(),
            )
        } else {
            (None, self.doc_lens)
        }
    }
}

/// Block-level emission for blocked stores: completed blocks (with their
/// precompressed image) are appended in order and land on disk immediately;
/// `finish` writes the metadata table and docmap. The stored-verbatim
/// decision lives here so every build path shares it.
#[derive(Debug)]
pub(crate) struct BlockedSink {
    payload: std::io::BufWriter<File>,
    dir: std::path::PathBuf,
    codec: BlockCodec,
    entries: Vec<BlockEntry>,
    lens: Vec<usize>,
    file_at: u64,
}

impl BlockedSink {
    pub fn create(dir: &Path, codec: BlockCodec) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        Ok(BlockedSink {
            payload: std::io::BufWriter::new(File::create(dir.join(BLOCKS_FILE))?),
            dir: dir.to_path_buf(),
            codec,
            entries: Vec::new(),
            lens: Vec::new(),
            file_at: 0,
        })
    }

    /// Appends one packed block given its compressed image; a block the
    /// codec could not shrink is marked stored and written verbatim.
    pub fn append_compressed(&mut self, raw: &RawBlock, comp: &[u8]) -> Result<(), StoreError> {
        let stored = comp.len() >= raw.bytes.len() && !raw.bytes.is_empty();
        let bytes: &[u8] = if stored { &raw.bytes } else { comp };
        self.payload.write_all(bytes)?;
        self.entries.push(BlockEntry {
            file_offset: self.file_at,
            comp_len: bytes.len() as u32,
            first_doc: raw.first_doc,
            raw_start: raw.raw_start,
            stored,
            crc: crc32c(bytes),
        });
        self.file_at += bytes.len() as u64;
        self.lens.extend_from_slice(&raw.doc_lens);
        Ok(())
    }

    /// Packs and compresses one block inline (the serial streaming path).
    pub fn append_block(&mut self, raw: &RawBlock) -> Result<(), StoreError> {
        let comp = self.codec.compress(&raw.bytes);
        self.append_compressed(raw, &comp)
    }

    /// Records docmap entries for trailing zero-length documents that have
    /// no block (see [`BlockPacker::finish`]).
    pub fn append_trailing_doc_lens(&mut self, lens: &[usize]) {
        self.lens.extend_from_slice(lens);
    }

    /// Flushes the payload and writes the block table and docmap,
    /// completing the store.
    pub fn finish(mut self) -> Result<(), StoreError> {
        self.payload.flush()?;
        let mut meta = Vec::new();
        meta.push(META_VERSION_CHECKSUMMED);
        meta.push(self.codec.tag());
        vbyte::write_u64(self.entries.len() as u64, &mut meta);
        for e in &self.entries {
            vbyte::write_u64(e.file_offset, &mut meta);
            vbyte::write_u32(e.comp_len, &mut meta);
            vbyte::write_u32(e.first_doc, &mut meta);
            vbyte::write_u64(e.raw_start, &mut meta);
            meta.push(e.stored as u8);
            meta.extend_from_slice(&e.crc.to_le_bytes());
        }
        std::fs::write(self.dir.join(META_FILE), meta)?;
        std::fs::write(
            self.dir.join(MAP_FILE),
            DocMap::from_lens(self.lens).serialize(),
        )?;
        Ok(())
    }
}

/// Streamed builder for [`BlockedStore`]: documents are appended one at a
/// time; each completed block is compressed and written immediately, so
/// peak memory is one block — never the corpus. Byte-identical to the batch
/// [`BlockedStore::build`] (both run the same `BlockPacker` and
/// `BlockedSink`); the batch path additionally compresses blocks in
/// parallel.
#[derive(Debug)]
pub struct BlockedWriter {
    packer: BlockPacker,
    sink: BlockedSink,
}

impl BlockedWriter {
    /// Creates `dir` and opens the payload for streaming appends.
    /// `block_size == 0` places one document per block.
    pub fn create(dir: &Path, codec: BlockCodec, block_size: usize) -> Result<Self, StoreError> {
        Ok(BlockedWriter {
            packer: BlockPacker::new(block_size),
            sink: BlockedSink::create(dir, codec)?,
        })
    }

    /// Appends one document, compressing and writing any block it
    /// completes.
    pub fn append(&mut self, doc: &[u8]) -> Result<(), StoreError> {
        if let Some(block) = self.packer.push(doc) {
            self.sink.append_block(&block)?;
        }
        Ok(())
    }

    /// Compresses the final block and writes the metadata and docmap,
    /// completing the store.
    pub fn finish(self) -> Result<(), StoreError> {
        let BlockedWriter { packer, mut sink } = self;
        let (tail, trailing) = packer.finish();
        if let Some(block) = tail {
            sink.append_block(&block)?;
        }
        sink.append_trailing_doc_lens(&trailing);
        sink.finish()
    }
}

/// Blocked store reader. Clones are cheap handles sharing the backend,
/// block table, document map and (if enabled) the block cache.
#[derive(Debug, Clone)]
pub struct BlockedStore {
    payload: Arc<dyn StorageBackend>,
    codec: BlockCodec,
    blocks: Arc<Vec<BlockEntry>>,
    /// Uncompressed document extents over the whole collection.
    map: Arc<DocMap>,
    /// Optional decompressed-block cache — OFF by default to match the
    /// paper's baselines, which pay the full block decompression on every
    /// request. When enabled it is a thread-safe sharded LRU shared by all
    /// clones of this store.
    cache: Option<Arc<ShardedLru>>,
    stored_bytes: u64,
    /// Whether block reads are CRC-verified (checksummed layout only).
    integrity: Integrity,
    /// Sorted doc ids quarantined by `rlz-verify`; gets pre-fail with a
    /// typed corruption error instead of touching known-bad blocks.
    quarantine: Arc<Vec<u32>>,
}

impl BlockedStore {
    /// Builds a blocked store in `dir`.
    ///
    /// `block_size == 0` places one document per block; otherwise documents
    /// are appended to a block until it reaches `block_size` bytes
    /// (documents are never split). Blocks are compressed in parallel on
    /// `threads` OS threads.
    pub fn build<'a>(
        dir: &Path,
        docs: impl Iterator<Item = &'a [u8]>,
        codec: BlockCodec,
        block_size: usize,
        threads: usize,
    ) -> Result<(), StoreError> {
        // Group documents into raw blocks.
        let mut packer = BlockPacker::new(block_size);
        let mut raw_blocks: Vec<RawBlock> = Vec::new();
        for doc in docs {
            if let Some(block) = packer.push(doc) {
                raw_blocks.push(block);
            }
        }
        let (tail, trailing) = packer.finish();
        raw_blocks.extend(tail);

        // Compress blocks in parallel; a block the codec cannot shrink is
        // marked stored and written verbatim by the sink.
        let compressed =
            crate::parallel_map(&raw_blocks, threads, |raw| codec.compress(&raw.bytes));

        let mut sink = BlockedSink::create(dir, codec)?;
        for (raw, comp) in raw_blocks.iter().zip(&compressed) {
            sink.append_compressed(raw, comp)?;
        }
        sink.append_trailing_doc_lens(&trailing);
        sink.finish()
    }

    /// Opens a previously built store with a file-backed payload.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Self::with_backend(dir, Arc::new(FileBackend::open(&dir.join(BLOCKS_FILE))?))
    }

    /// Opens a previously built store with the compressed payload fully
    /// resident in memory (blocks still decompress per request).
    pub fn open_resident(dir: &Path) -> Result<Self, StoreError> {
        Self::with_backend(dir, Arc::new(MemBackend::load(&dir.join(BLOCKS_FILE))?))
    }

    /// Opens a previously built store over a caller-supplied backend
    /// (fault-injection harnesses, custom storage layers).
    pub fn open_with_backend(
        dir: &Path,
        payload: Arc<dyn StorageBackend>,
    ) -> Result<Self, StoreError> {
        Self::with_backend(dir, payload)
    }

    fn with_backend(dir: &Path, payload: Arc<dyn StorageBackend>) -> Result<Self, StoreError> {
        let meta = read_file(&dir.join(META_FILE))?;
        let mut pos = 0usize;
        let Some(&first_byte) = meta.first() else {
            return Err(StoreError::corrupt("empty blocked-store metadata"));
        };
        pos += 1;
        // Self-describing layouts lead with a version byte; the legacy
        // layout leads directly with the codec tag (no stored flags).
        let checksummed = first_byte == META_VERSION_CHECKSUMMED;
        let self_describing = checksummed || first_byte == META_VERSION_SELF_DESCRIBING;
        let tag = if self_describing {
            let Some(&tag) = meta.get(pos) else {
                return Err(StoreError::corrupt("truncated blocked-store metadata"));
            };
            pos += 1;
            tag
        } else {
            first_byte
        };
        let codec = BlockCodec::from_tag(tag)?;
        let n = vbyte::read_u64(&meta, &mut pos)? as usize;
        // Every entry takes at least 5 bytes, so a count claiming more
        // entries than the metadata could possibly hold is corrupt — and
        // must be rejected *before* it sizes an allocation.
        if n > meta.len() {
            return Err(StoreError::corrupt(
                "blocked-store block count exceeds metadata size",
            ));
        }
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            let file_offset = vbyte::read_u64(&meta, &mut pos)?;
            let comp_len = vbyte::read_u32(&meta, &mut pos)?;
            let first_doc = vbyte::read_u32(&meta, &mut pos)?;
            let raw_start = vbyte::read_u64(&meta, &mut pos)?;
            let stored = if self_describing {
                let Some(&flag) = meta.get(pos) else {
                    return Err(StoreError::corrupt("truncated blocked-store metadata"));
                };
                pos += 1;
                match flag {
                    0 => false,
                    1 => true,
                    _ => return Err(StoreError::corrupt("invalid stored-block flag")),
                }
            } else {
                false
            };
            let crc = if checksummed {
                let Some(bytes) = meta.get(pos..pos + 4) else {
                    return Err(StoreError::corrupt("truncated blocked-store metadata"));
                };
                pos += 4;
                u32::from_le_bytes(bytes.try_into().expect("4-byte slice"))
            } else {
                0
            };
            blocks.push(BlockEntry {
                file_offset,
                comp_len,
                first_doc,
                raw_start,
                stored,
                crc,
            });
        }
        // Structural validation before any read can trust the table:
        // `block_of_doc` indexes `partition_point(..) - 1`, which is only
        // safe when block 0 covers doc 0; extents must stay inside the
        // payload and blocks must be laid out in order.
        let payload_len = payload.len();
        let mut prev_first = 0u32;
        let mut prev_end = 0u64;
        for (i, b) in blocks.iter().enumerate() {
            if i == 0 && b.first_doc != 0 {
                return Err(StoreError::corrupt("first block does not start at doc 0"));
            }
            if b.first_doc < prev_first {
                return Err(StoreError::corrupt("block table doc ids not monotone"));
            }
            if b.file_offset < prev_end {
                return Err(StoreError::corrupt("block table offsets not monotone"));
            }
            let end = b
                .file_offset
                .checked_add(b.comp_len as u64)
                .ok_or_else(|| StoreError::corrupt("block extent overflows"))?;
            if end > payload_len {
                return Err(StoreError::corrupt("block extent exceeds payload"));
            }
            prev_first = b.first_doc;
            prev_end = end;
        }
        let map = Arc::new(DocMap::deserialize(&read_file(&dir.join(MAP_FILE))?)?);
        if map.num_docs() > 0 && blocks.is_empty() {
            return Err(StoreError::corrupt(
                "document map names docs but block table is empty",
            ));
        }
        let quarantine = Arc::new(load_quarantine(dir)?);
        Ok(BlockedStore {
            payload,
            codec,
            blocks: Arc::new(blocks),
            map,
            cache: None,
            stored_bytes: payload_len,
            integrity: if checksummed {
                Integrity::Crc32c
            } else {
                Integrity::None
            },
            quarantine,
        })
    }

    /// Enables or disables the shared decompressed-block cache (an
    /// extension over the paper's baselines; used by the ablation
    /// benchmarks). Enabling installs a fresh sharded LRU of
    /// [`DEFAULT_CACHE_BLOCKS`](Self::set_block_cache_capacity) blocks,
    /// shared with every clone made afterwards.
    pub fn set_block_cache(&mut self, enabled: bool) {
        self.cache = enabled.then(|| Arc::new(ShardedLru::new(DEFAULT_CACHE_BLOCKS)));
    }

    /// Enables the shared block cache with room for `blocks` decompressed
    /// blocks (`0` disables).
    pub fn set_block_cache_capacity(&mut self, blocks: usize) {
        self.cache = (blocks > 0).then(|| Arc::new(ShardedLru::new(blocks)));
    }

    /// Compressed payload size in bytes.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn block_of_doc(&self, id: usize) -> usize {
        // Last block whose first_doc <= id; open-time validation pins
        // block 0's first_doc to 0, so the subtraction cannot underflow for
        // any id the document map accepted.
        self.blocks.partition_point(|b| b.first_doc as usize <= id) - 1
    }

    /// CRC-checks block `b`'s on-disk bytes against its table entry
    /// (checksummed layout only; legacy stores have nothing to verify).
    fn verify_block_bytes(&self, b: usize, bytes: &[u8]) -> Result<(), StoreError> {
        if self.integrity == Integrity::Crc32c && crc32c(bytes) != self.blocks[b].crc {
            return Err(StoreError::Corrupt {
                what: "block checksum mismatch",
                block: Some(b as u32),
                doc_id: None,
            });
        }
        Ok(())
    }

    /// Reads, CRC-verifies and decompresses block `b` into `out` (no cache
    /// involvement), replacing `out`'s contents while reusing its capacity.
    /// Stored blocks pass straight from the backend into `out` — no codec,
    /// no staging copy.
    fn decompress_block_into(&self, b: usize, out: &mut Vec<u8>) -> Result<(), StoreError> {
        let entry = self.blocks[b];
        if entry.stored {
            out.clear();
            out.resize(entry.comp_len as usize, 0);
            self.payload.read_exact_at(out, entry.file_offset)?;
            return self.verify_block_bytes(b, out);
        }
        crate::with_scratch(entry.comp_len as usize, |comp| {
            self.payload.read_exact_at(comp, entry.file_offset)?;
            self.verify_block_bytes(b, comp)?;
            self.codec.decompress_into(comp, out)
        })
    }

    /// Reads and decompresses block `b` into a fresh buffer.
    fn decompress_block(&self, b: usize) -> Result<Vec<u8>, StoreError> {
        let mut out = Vec::new();
        self.decompress_block_into(b, &mut out)?;
        Ok(out)
    }

    /// Decompressed bytes of block `b`, through the shared cache when one
    /// is enabled.
    fn load_block(&self, b: usize) -> Result<Arc<Vec<u8>>, StoreError> {
        let Some(cache) = &self.cache else {
            return Ok(Arc::new(self.decompress_block(b)?));
        };
        match cache.get(b) {
            Some(hit) => Ok(hit),
            None => {
                let raw = Arc::new(self.decompress_block(b)?);
                cache.insert(b, Arc::clone(&raw));
                Ok(raw)
            }
        }
    }

    /// Pre-fails a doc id quarantined by `rlz-verify`.
    fn check_quarantine(&self, id: usize) -> Result<(), StoreError> {
        if id <= u32::MAX as usize && self.quarantine.binary_search(&(id as u32)).is_ok() {
            return Err(StoreError::Corrupt {
                what: "document quarantined by rlz-verify",
                block: None,
                doc_id: Some(id as u32),
            });
        }
        Ok(())
    }

    /// Walks every block, verifying checksums (checksummed layout) or
    /// attempting a full decompression (legacy layouts), and reports the
    /// blocks that fail along with the doc ids they take down. Never
    /// panics on corrupt input; used by the `rlz-verify` scrub bin.
    pub fn scrub(&self) -> ScrubReport {
        let mut report = ScrubReport::new(self.integrity);
        let num_docs = self.map.num_docs() as u32;
        let mut raw = Vec::new();
        for (b, entry) in self.blocks.iter().enumerate() {
            report.units += 1;
            report.bytes += entry.comp_len as u64;
            if let Err(e) = self.decompress_block_into(b, &mut raw) {
                let first = entry.first_doc;
                let end = self
                    .blocks
                    .get(b + 1)
                    .map_or(num_docs, |next| next.first_doc);
                report.bad.push(BadUnit {
                    block: Some(b as u32),
                    doc_ids: (first..end.max(first)).collect(),
                    error: e,
                });
            }
        }
        report
    }

    fn slice_doc(
        raw: &[u8],
        entry: BlockEntry,
        doc_off: u64,
        doc_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        let chunk = doc_off
            .checked_sub(entry.raw_start)
            .map(|s| s as usize)
            .and_then(|start| raw.get(start..)?.get(..doc_len))
            .ok_or_else(|| StoreError::corrupt("document extent exceeds block"))?;
        out.extend_from_slice(chunk);
        Ok(())
    }
}

impl DocStore for BlockedStore {
    fn num_docs(&self) -> usize {
        self.map.num_docs()
    }

    fn quarantined_docs(&self) -> u64 {
        self.quarantine.len() as u64
    }

    fn stats(&self) -> crate::StoreStats {
        crate::StoreStats {
            num_docs: self.map.num_docs() as u64,
            payload_bytes: self.stored_bytes,
            // The blocked map delimits *uncompressed* documents, so this is
            // the longest raw document in the collection.
            max_record_len: self.map.max_extent_len(),
            integrity: self.integrity,
        }
    }

    fn record_offset(&self, id: usize) -> Option<u64> {
        // Position of the *block* holding the document: ordering a batch by
        // it both sweeps the payload forward and lands same-block ids next
        // to each other.
        self.map.extent(id)?;
        Some(self.blocks[self.block_of_doc(id)].file_offset)
    }

    fn get_into(&self, id: usize, out: &mut Vec<u8>) -> Result<(), StoreError> {
        let (doc_off, doc_len) = self.map.extent(id).ok_or(StoreError::DocOutOfRange(id))?;
        self.check_quarantine(id)?;
        let b = self.block_of_doc(id);
        let entry = self.blocks[b];
        if self.cache.is_some() {
            let raw = self.load_block(b)?;
            return Self::slice_doc(&raw, entry, doc_off, doc_len, out);
        }
        // Uncached (the paper's baseline): inflate into the thread's block
        // scratch instead of allocating a block-sized buffer per get.
        crate::with_block_scratch(|raw| {
            self.decompress_block_into(b, raw)?;
            Self::slice_doc(raw, entry, doc_off, doc_len, out)
        })
    }

    /// Seek-coalesced multi-get: ids landing in the same block are grouped
    /// so each block is read and decompressed **once** per batch, however
    /// many documents it serves; groups are processed in file order across
    /// the workers. Results come back in request order.
    fn get_batch(&self, ids: &[u32], threads: usize) -> Result<Vec<Vec<u8>>, StoreError> {
        if ids.is_empty() {
            return Ok(Vec::new());
        }
        // (request slot, block, doc offset, doc len); out-of-range ids fail
        // the batch up front, before any I/O.
        let mut reqs = Vec::with_capacity(ids.len());
        for (slot, &id) in ids.iter().enumerate() {
            let id = id as usize;
            let (doc_off, doc_len) = self.map.extent(id).ok_or(StoreError::DocOutOfRange(id))?;
            self.check_quarantine(id)?;
            reqs.push((slot, self.block_of_doc(id), doc_off, doc_len));
        }
        // Blocks are written to the payload in index order, so sorting by
        // block index is sorting by file offset.
        reqs.sort_by_key(|&(_, b, doc_off, _)| (b, doc_off));
        let runs: Vec<&[(usize, usize, u64, usize)]> = reqs.chunk_by(|a, b| a.1 == b.1).collect();
        let threads = threads.max(1).min(runs.len());
        crate::scatter_chunks(ids.len(), &runs, threads, |run| {
            let b = run[0].1;
            let entry = self.blocks[b];
            let raw = self.load_block(b)?;
            run.iter()
                .map(|&(slot, _, doc_off, doc_len)| {
                    let mut out = Vec::with_capacity(doc_len);
                    Self::slice_doc(&raw, entry, doc_off, doc_len, &mut out)?;
                    Ok((slot, out))
                })
                .collect()
        })
    }

    /// Per-id containment with the same block coalescing as
    /// [`get_batch`](DocStore::get_batch): a block that fails its checksum
    /// (or its read, or its decompression) is still touched only **once**,
    /// and its failure is fanned out to exactly the ids living in it —
    /// every other id in the batch decodes normally.
    fn get_batch_results(&self, ids: &[u32], threads: usize) -> Vec<Result<Vec<u8>, StoreError>> {
        if ids.is_empty() {
            return Vec::new();
        }
        // (request slot, id, block, doc offset, doc len); ids that fail up
        // front (out of range, quarantined) go to a pseudo-run keyed by
        // usize::MAX so the scatter still fills every slot.
        let mut reqs = Vec::with_capacity(ids.len());
        for (slot, &id) in ids.iter().enumerate() {
            let idx = id as usize;
            let b = match self.map.extent(idx) {
                Some(_) => self.block_of_doc(idx),
                None => usize::MAX,
            };
            reqs.push((slot, id, b));
        }
        reqs.sort_by_key(|&(_, id, b)| (b, id));
        let runs: Vec<&[(usize, u32, usize)]> = reqs.chunk_by(|a, b| a.2 == b.2).collect();
        let threads = threads.max(1).min(runs.len());
        crate::scatter_chunks(ids.len(), &runs, threads, |run| {
            let b = run[0].2;
            if b == usize::MAX {
                // Out-of-range pseudo-run.
                return Ok(run
                    .iter()
                    .map(|&(slot, id, _)| (slot, Err(StoreError::DocOutOfRange(id as usize))))
                    .collect());
            }
            // One decode attempt per block; on failure, the error fans out
            // to every id in the run, each tagged with its own doc id.
            let entry = self.blocks[b];
            let shared = self.load_block(b);
            Ok(run
                .iter()
                .map(|&(slot, id, _)| {
                    let idx = id as usize;
                    let r = (|| {
                        let (doc_off, doc_len) =
                            self.map.extent(idx).ok_or(StoreError::DocOutOfRange(idx))?;
                        self.check_quarantine(idx)?;
                        let raw = match &shared {
                            Ok(raw) => raw,
                            Err(e) => return Err(e.duplicate()),
                        };
                        let mut out = Vec::with_capacity(doc_len);
                        Self::slice_doc(raw, entry, doc_off, doc_len, &mut out)?;
                        Ok(out)
                    })()
                    .map_err(|e| e.for_doc(id));
                    (slot, r)
                })
                .collect())
        })
        .expect("per-id tasks are infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;

    fn docs() -> Vec<Vec<u8>> {
        (0..120)
            .map(|i| {
                format!(
                    "<doc id={i}><body>{} shared boilerplate trailer</body></doc>",
                    "text ".repeat(i % 40)
                )
                .into_bytes()
            })
            .collect()
    }

    fn check_store(codec: BlockCodec, block_size: usize) {
        let dir = TestDir::new(&format!("blocked-{}-{}", codec.name(), block_size));
        let d = docs();
        BlockedStore::build(
            dir.path(),
            d.iter().map(|v| v.as_slice()),
            codec,
            block_size,
            4,
        )
        .unwrap();
        for store in [
            BlockedStore::open(dir.path()).unwrap(),
            BlockedStore::open_resident(dir.path()).unwrap(),
        ] {
            assert_eq!(store.num_docs(), d.len());
            for (i, doc) in d.iter().enumerate() {
                assert_eq!(&store.get(i).unwrap(), doc, "doc {i}");
            }
            // Reverse order hits different blocks each time.
            for i in (0..d.len()).rev() {
                assert_eq!(&store.get(i).unwrap(), &d[i]);
            }
        }
    }

    #[test]
    fn zlite_one_doc_per_block() {
        check_store(BlockCodec::Zlite(rlz_zlite::Level::Default), 0);
    }

    #[test]
    fn zlite_fixed_blocks() {
        check_store(BlockCodec::Zlite(rlz_zlite::Level::Default), 4096);
    }

    #[test]
    fn lzlite_fixed_blocks() {
        check_store(BlockCodec::Lzlite(rlz_lzlite::Level::Default), 8192);
    }

    #[test]
    fn fse_blocks() {
        check_store(BlockCodec::Fse, 0);
        check_store(BlockCodec::Fse, 8192);
    }

    #[test]
    fn lz4_blocks() {
        check_store(BlockCodec::Lz4, 0);
        check_store(BlockCodec::Lz4, 8192);
    }

    #[test]
    fn incompressible_blocks_are_stored_verbatim() {
        // A xorshift byte stream defeats every codec, so each block must be
        // marked stored and the payload must be exactly the raw collection.
        let mut state = 0x2545_F491u32;
        let d: Vec<Vec<u8>> = (0..16)
            .map(|_| {
                (0..1500)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 17;
                        state ^= state << 5;
                        state as u8
                    })
                    .collect()
            })
            .collect();
        let raw_total: u64 = d.iter().map(|v| v.len() as u64).sum();
        for codec in [
            BlockCodec::Zlite(rlz_zlite::Level::Default),
            BlockCodec::Fse,
            BlockCodec::Lz4,
        ] {
            let dir = TestDir::new(&format!("blocked-stored-{}", codec.name()));
            BlockedStore::build(dir.path(), d.iter().map(|v| v.as_slice()), codec, 4096, 2)
                .unwrap();
            let store = BlockedStore::open(dir.path()).unwrap();
            assert_eq!(
                store.stored_bytes(),
                raw_total,
                "{}: stored blocks should be written verbatim",
                codec.name()
            );
            for (i, doc) in d.iter().enumerate() {
                assert_eq!(&store.get(i).unwrap(), doc, "doc {i}");
            }
        }
    }

    /// Re-encodes a freshly built (checksummed, 0xF6) metadata file into an
    /// older layout: `0xF5` keeps stored flags but drops CRCs; `legacy`
    /// leads with the codec tag and drops both.
    fn downgrade_meta(meta: &[u8], to_self_describing: bool) -> Vec<u8> {
        assert_eq!(meta[0], META_VERSION_CHECKSUMMED);
        let mut pos = 2usize; // skip version + tag
        let n = vbyte::read_u64(meta, &mut pos).unwrap() as usize;
        let mut out = if to_self_describing {
            vec![META_VERSION_SELF_DESCRIBING, meta[1]]
        } else {
            vec![meta[1]]
        };
        vbyte::write_u64(n as u64, &mut out);
        for _ in 0..n {
            let start = pos;
            vbyte::read_u64(meta, &mut pos).unwrap();
            vbyte::read_u32(meta, &mut pos).unwrap();
            vbyte::read_u32(meta, &mut pos).unwrap();
            vbyte::read_u64(meta, &mut pos).unwrap();
            out.extend_from_slice(&meta[start..pos]);
            if to_self_describing {
                out.push(meta[pos]);
            } else {
                assert_eq!(meta[pos], 0, "legacy layout cannot express stored blocks");
            }
            pos += 5; // drop the stored flag + 4 CRC bytes
        }
        out
    }

    #[test]
    fn older_meta_formats_still_open() {
        // Stores written before the checksummed layout must keep opening:
        // both the 0xF5 self-describing layout and the tag-first legacy
        // layout, each reporting `integrity: none`.
        let d = docs();
        for to_self_describing in [true, false] {
            let dir = TestDir::new(&format!("blocked-older-meta-{to_self_describing}"));
            BlockedStore::build(
                dir.path(),
                d.iter().map(|v| v.as_slice()),
                BlockCodec::Zlite(rlz_zlite::Level::Default),
                4096,
                2,
            )
            .unwrap();
            let meta = read_file(&dir.path().join(META_FILE)).unwrap();
            let older = downgrade_meta(&meta, to_self_describing);
            std::fs::write(dir.path().join(META_FILE), older).unwrap();
            let store = BlockedStore::open(dir.path()).unwrap();
            assert_eq!(store.num_docs(), d.len());
            assert_eq!(store.stats().integrity, crate::Integrity::None);
            for (i, doc) in d.iter().enumerate() {
                assert_eq!(&store.get(i).unwrap(), doc, "doc {i}");
            }
        }
    }

    #[test]
    fn checksummed_store_reports_integrity_and_detects_flips() {
        let dir = TestDir::new("blocked-crc");
        let d = docs();
        BlockedStore::build(
            dir.path(),
            d.iter().map(|v| v.as_slice()),
            BlockCodec::Zlite(rlz_zlite::Level::Default),
            4096,
            2,
        )
        .unwrap();
        let store = BlockedStore::open(dir.path()).unwrap();
        assert_eq!(store.stats().integrity, crate::Integrity::Crc32c);

        // Flip one bit in the middle of the payload: the block holding it
        // must fail with a typed error naming the block, and every id in
        // other blocks must still decode.
        let path = dir.path().join(BLOCKS_FILE);
        let mut payload = std::fs::read(&path).unwrap();
        let victim = payload.len() / 2;
        payload[victim] ^= 0x10;
        std::fs::write(&path, payload).unwrap();
        let store = BlockedStore::open(dir.path()).unwrap();

        let bad_block = store
            .blocks
            .partition_point(|b| b.file_offset <= victim as u64)
            - 1;
        let mut bad_ids = 0;
        for (i, doc) in d.iter().enumerate() {
            match store.get(i) {
                Ok(bytes) => {
                    assert_ne!(store.block_of_doc(i), bad_block);
                    assert_eq!(&bytes, doc, "doc {i}");
                }
                Err(StoreError::Corrupt { what, block, .. }) => {
                    assert_eq!(what, "block checksum mismatch");
                    assert_eq!(block, Some(bad_block as u32));
                    assert_eq!(store.block_of_doc(i), bad_block);
                    bad_ids += 1;
                }
                Err(other) => panic!("doc {i}: unexpected error {other}"),
            }
        }
        assert!(bad_ids > 0, "the flipped bit must land in some block");

        // Per-id batch semantics: one call, same containment.
        let ids: Vec<u32> = (0..d.len() as u32).collect();
        let results = store.get_batch_results(&ids, 2);
        for (i, r) in results.iter().enumerate() {
            if store.block_of_doc(i) == bad_block {
                assert!(
                    matches!(
                        r,
                        Err(StoreError::Corrupt {
                            doc_id: Some(did), ..
                        }) if *did == i as u32
                    ),
                    "doc {i} should carry its own id in the corruption error"
                );
            } else {
                assert_eq!(r.as_ref().unwrap(), &d[i], "doc {i}");
            }
        }
        // Whole-batch get_batch, by contrast, must refuse the batch.
        assert!(store.get_batch(&ids, 2).is_err());
    }

    #[test]
    fn block_larger_than_collection() {
        check_store(BlockCodec::Zlite(rlz_zlite::Level::Fast), usize::MAX);
    }

    #[test]
    fn bigger_blocks_compress_better() {
        let dir_small = TestDir::new("blocked-ratio-small");
        let dir_big = TestDir::new("blocked-ratio-big");
        let d = docs();
        let codec = BlockCodec::Zlite(rlz_zlite::Level::Default);
        BlockedStore::build(
            dir_small.path(),
            d.iter().map(|v| v.as_slice()),
            codec,
            0,
            4,
        )
        .unwrap();
        BlockedStore::build(
            dir_big.path(),
            d.iter().map(|v| v.as_slice()),
            codec,
            1 << 20,
            4,
        )
        .unwrap();
        let small = BlockedStore::open(dir_small.path()).unwrap().stored_bytes();
        let big = BlockedStore::open(dir_big.path()).unwrap().stored_bytes();
        assert!(big < small, "big-block {big} should beat per-doc {small}");
    }

    #[test]
    fn cache_changes_speed_not_results() {
        let dir = TestDir::new("blocked-cache");
        let d = docs();
        let codec = BlockCodec::Zlite(rlz_zlite::Level::Default);
        BlockedStore::build(dir.path(), d.iter().map(|v| v.as_slice()), codec, 16384, 2).unwrap();
        let mut store = BlockedStore::open(dir.path()).unwrap();
        store.set_block_cache(true);
        for (i, doc) in d.iter().enumerate() {
            assert_eq!(&store.get(i).unwrap(), doc);
        }
        // And again in reverse, now served partly from cache.
        for (i, doc) in d.iter().enumerate().rev() {
            assert_eq!(&store.get(i).unwrap(), doc);
        }
        store.set_block_cache(false);
        assert_eq!(&store.get(7).unwrap(), &d[7]);
    }

    #[test]
    fn cache_is_shared_across_clones_and_threads() {
        let dir = TestDir::new("blocked-cache-shared");
        let d = docs();
        let codec = BlockCodec::Zlite(rlz_zlite::Level::Default);
        BlockedStore::build(dir.path(), d.iter().map(|v| v.as_slice()), codec, 8192, 2).unwrap();
        let mut store = BlockedStore::open(dir.path()).unwrap();
        store.set_block_cache_capacity(16);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let handle = store.clone();
                let d = &d;
                scope.spawn(move || {
                    for round in 0..3 {
                        for (i, doc) in d.iter().enumerate() {
                            if (i + t + round) % 2 == 0 {
                                assert_eq!(&handle.get(i).unwrap(), doc);
                            }
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn empty_collection_is_valid() {
        let dir = TestDir::new("blocked-empty");
        let codec = BlockCodec::Zlite(rlz_zlite::Level::Default);
        BlockedStore::build(dir.path(), std::iter::empty(), codec, 4096, 1).unwrap();
        let store = BlockedStore::open(dir.path()).unwrap();
        assert_eq!(store.num_docs(), 0);
    }
}
