//! Blocked-compression stores — the paper's baselines (§2.2, §4).
//!
//! "Collections are split into fixed size blocks and compressed with an
//! adaptive algorithm (zlib)." Retrieval of one document decompresses its
//! whole block; block size trades compression (bigger = better ratio)
//! against access latency (bigger = slower), the exact trade-off of
//! Tables 6, 7 and 9. A block size of zero puts one document per block
//! (the paper's "0.0MB" rows).

use crate::backend::{FileBackend, MemBackend, StorageBackend};
use crate::cache::ShardedLru;
use crate::docmap::DocMap;
use crate::{read_file, DocStore, StoreError};
use rlz_codecs::vbyte;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

const BLOCKS_FILE: &str = "blocks.bin";
const META_FILE: &str = "meta.bin";
const MAP_FILE: &str = "docmap.bin";

/// Default block-cache capacity when enabled without an explicit size.
const DEFAULT_CACHE_BLOCKS: usize = 32;

/// Which general-purpose codec compresses each block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockCodec {
    /// DEFLATE-class (the paper's zlib baseline).
    Zlite(rlz_zlite::Level),
    /// LZMA-class (the paper's lzma baseline).
    Lzlite(rlz_lzlite::Level),
}

impl BlockCodec {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            BlockCodec::Zlite(_) => "zlib",
            BlockCodec::Lzlite(_) => "lzma",
        }
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        match *self {
            BlockCodec::Zlite(level) => rlz_zlite::compress(data, level),
            BlockCodec::Lzlite(level) => rlz_lzlite::compress(data, level),
        }
    }

    /// Decompresses one block into `out`, replacing its contents while
    /// reusing its capacity.
    fn decompress_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<(), StoreError> {
        match self {
            BlockCodec::Zlite(_) => Ok(rlz_zlite::decompress_into(data, out)?),
            BlockCodec::Lzlite(_) => Ok(rlz_lzlite::decompress_into(data, out)?),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            BlockCodec::Zlite(_) => 0,
            BlockCodec::Lzlite(_) => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, StoreError> {
        match tag {
            0 => Ok(BlockCodec::Zlite(rlz_zlite::Level::Default)),
            1 => Ok(BlockCodec::Lzlite(rlz_lzlite::Level::Default)),
            _ => Err(StoreError::Corrupt("unknown block codec tag")),
        }
    }
}

/// One block's location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockEntry {
    /// Offset of the compressed block in `blocks.bin`.
    file_offset: u64,
    /// Compressed size.
    comp_len: u32,
    /// First document stored in this block.
    first_doc: u32,
    /// Uncompressed offset of the block's first byte in the collection.
    raw_start: u64,
}

/// Blocked store reader. Clones are cheap handles sharing the backend,
/// block table, document map and (if enabled) the block cache.
#[derive(Debug, Clone)]
pub struct BlockedStore {
    payload: Arc<dyn StorageBackend>,
    codec: BlockCodec,
    blocks: Arc<Vec<BlockEntry>>,
    /// Uncompressed document extents over the whole collection.
    map: Arc<DocMap>,
    /// Optional decompressed-block cache — OFF by default to match the
    /// paper's baselines, which pay the full block decompression on every
    /// request. When enabled it is a thread-safe sharded LRU shared by all
    /// clones of this store.
    cache: Option<Arc<ShardedLru>>,
    stored_bytes: u64,
}

impl BlockedStore {
    /// Builds a blocked store in `dir`.
    ///
    /// `block_size == 0` places one document per block; otherwise documents
    /// are appended to a block until it reaches `block_size` bytes
    /// (documents are never split). Blocks are compressed in parallel on
    /// `threads` OS threads.
    pub fn build<'a>(
        dir: &Path,
        docs: impl Iterator<Item = &'a [u8]>,
        codec: BlockCodec,
        block_size: usize,
        threads: usize,
    ) -> Result<(), StoreError> {
        std::fs::create_dir_all(dir)?;
        // Group documents into raw blocks.
        let mut lens = Vec::new();
        let mut raw_blocks: Vec<Vec<u8>> = Vec::new();
        let mut firsts: Vec<u32> = Vec::new();
        let mut raw_starts: Vec<u64> = Vec::new();
        let mut current = Vec::new();
        let mut raw_at = 0u64;
        let mut doc_id = 0u32;
        let mut block_first = 0u32;
        let mut block_start = 0u64;
        for doc in docs {
            if !current.is_empty() && (block_size == 0 || current.len() + doc.len() > block_size) {
                raw_blocks.push(std::mem::take(&mut current));
                firsts.push(block_first);
                raw_starts.push(block_start);
                block_first = doc_id;
                block_start = raw_at;
            }
            current.extend_from_slice(doc);
            lens.push(doc.len());
            raw_at += doc.len() as u64;
            doc_id += 1;
        }
        if !current.is_empty() || doc_id == 0 {
            raw_blocks.push(current);
            firsts.push(block_first);
            raw_starts.push(block_start);
        }

        // Compress blocks in parallel.
        let compressed = crate::parallel_map(&raw_blocks, threads, |raw| codec.compress(raw));

        // Write payload and metadata.
        let mut payload = std::io::BufWriter::new(File::create(dir.join(BLOCKS_FILE))?);
        let mut entries = Vec::with_capacity(compressed.len());
        let mut file_at = 0u64;
        for ((comp, &first), &raw_start) in compressed.iter().zip(&firsts).zip(&raw_starts) {
            payload.write_all(comp)?;
            entries.push(BlockEntry {
                file_offset: file_at,
                comp_len: comp.len() as u32,
                first_doc: first,
                raw_start,
            });
            file_at += comp.len() as u64;
        }
        payload.flush()?;

        let mut meta = Vec::new();
        meta.push(codec.tag());
        vbyte::write_u64(entries.len() as u64, &mut meta);
        for e in &entries {
            vbyte::write_u64(e.file_offset, &mut meta);
            vbyte::write_u32(e.comp_len, &mut meta);
            vbyte::write_u32(e.first_doc, &mut meta);
            vbyte::write_u64(e.raw_start, &mut meta);
        }
        std::fs::write(dir.join(META_FILE), meta)?;
        std::fs::write(dir.join(MAP_FILE), DocMap::from_lens(lens).serialize())?;
        Ok(())
    }

    /// Opens a previously built store with a file-backed payload.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Self::with_backend(dir, Arc::new(FileBackend::open(&dir.join(BLOCKS_FILE))?))
    }

    /// Opens a previously built store with the compressed payload fully
    /// resident in memory (blocks still decompress per request).
    pub fn open_resident(dir: &Path) -> Result<Self, StoreError> {
        Self::with_backend(dir, Arc::new(MemBackend::load(&dir.join(BLOCKS_FILE))?))
    }

    fn with_backend(dir: &Path, payload: Arc<dyn StorageBackend>) -> Result<Self, StoreError> {
        let meta = read_file(&dir.join(META_FILE))?;
        let mut pos = 0usize;
        let Some(&tag) = meta.first() else {
            return Err(StoreError::Corrupt("empty blocked-store metadata"));
        };
        pos += 1;
        let codec = BlockCodec::from_tag(tag)?;
        let n = vbyte::read_u64(&meta, &mut pos)? as usize;
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            blocks.push(BlockEntry {
                file_offset: vbyte::read_u64(&meta, &mut pos)?,
                comp_len: vbyte::read_u32(&meta, &mut pos)?,
                first_doc: vbyte::read_u32(&meta, &mut pos)?,
                raw_start: vbyte::read_u64(&meta, &mut pos)?,
            });
        }
        let map = Arc::new(DocMap::deserialize(&read_file(&dir.join(MAP_FILE))?)?);
        let stored_bytes = payload.len();
        Ok(BlockedStore {
            payload,
            codec,
            blocks: Arc::new(blocks),
            map,
            cache: None,
            stored_bytes,
        })
    }

    /// Enables or disables the shared decompressed-block cache (an
    /// extension over the paper's baselines; used by the ablation
    /// benchmarks). Enabling installs a fresh sharded LRU of
    /// [`DEFAULT_CACHE_BLOCKS`](Self::set_block_cache_capacity) blocks,
    /// shared with every clone made afterwards.
    pub fn set_block_cache(&mut self, enabled: bool) {
        self.cache = enabled.then(|| Arc::new(ShardedLru::new(DEFAULT_CACHE_BLOCKS)));
    }

    /// Enables the shared block cache with room for `blocks` decompressed
    /// blocks (`0` disables).
    pub fn set_block_cache_capacity(&mut self, blocks: usize) {
        self.cache = (blocks > 0).then(|| Arc::new(ShardedLru::new(blocks)));
    }

    /// Compressed payload size in bytes.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn block_of_doc(&self, id: usize) -> usize {
        // Last block whose first_doc <= id.
        self.blocks.partition_point(|b| b.first_doc as usize <= id) - 1
    }

    /// Reads and decompresses block `b` into `out` (no cache involvement),
    /// replacing `out`'s contents while reusing its capacity.
    fn decompress_block_into(
        &self,
        entry: BlockEntry,
        out: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        crate::with_scratch(entry.comp_len as usize, |comp| {
            self.payload.read_exact_at(comp, entry.file_offset)?;
            self.codec.decompress_into(comp, out)
        })
    }

    /// Reads and decompresses block `b` into a fresh buffer.
    fn decompress_block(&self, entry: BlockEntry) -> Result<Vec<u8>, StoreError> {
        let mut out = Vec::new();
        self.decompress_block_into(entry, &mut out)?;
        Ok(out)
    }

    /// Decompressed bytes of block `b`, through the shared cache when one
    /// is enabled.
    fn load_block(&self, b: usize) -> Result<Arc<Vec<u8>>, StoreError> {
        let Some(cache) = &self.cache else {
            return Ok(Arc::new(self.decompress_block(self.blocks[b])?));
        };
        match cache.get(b) {
            Some(hit) => Ok(hit),
            None => {
                let raw = Arc::new(self.decompress_block(self.blocks[b])?);
                cache.insert(b, Arc::clone(&raw));
                Ok(raw)
            }
        }
    }

    fn slice_doc(
        raw: &[u8],
        entry: BlockEntry,
        doc_off: u64,
        doc_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        let start = (doc_off - entry.raw_start) as usize;
        let chunk = raw
            .get(start..start + doc_len)
            .ok_or(StoreError::Corrupt("document extent exceeds block"))?;
        out.extend_from_slice(chunk);
        Ok(())
    }
}

impl DocStore for BlockedStore {
    fn num_docs(&self) -> usize {
        self.map.num_docs()
    }

    fn stats(&self) -> crate::StoreStats {
        crate::StoreStats {
            num_docs: self.map.num_docs() as u64,
            payload_bytes: self.stored_bytes,
            // The blocked map delimits *uncompressed* documents, so this is
            // the longest raw document in the collection.
            max_record_len: self.map.max_extent_len(),
        }
    }

    fn record_offset(&self, id: usize) -> Option<u64> {
        // Position of the *block* holding the document: ordering a batch by
        // it both sweeps the payload forward and lands same-block ids next
        // to each other.
        self.map.extent(id)?;
        Some(self.blocks[self.block_of_doc(id)].file_offset)
    }

    fn get_into(&self, id: usize, out: &mut Vec<u8>) -> Result<(), StoreError> {
        let (doc_off, doc_len) = self.map.extent(id).ok_or(StoreError::DocOutOfRange(id))?;
        let b = self.block_of_doc(id);
        let entry = self.blocks[b];
        if self.cache.is_some() {
            let raw = self.load_block(b)?;
            return Self::slice_doc(&raw, entry, doc_off, doc_len, out);
        }
        // Uncached (the paper's baseline): inflate into the thread's block
        // scratch instead of allocating a block-sized buffer per get.
        crate::with_block_scratch(|raw| {
            self.decompress_block_into(entry, raw)?;
            Self::slice_doc(raw, entry, doc_off, doc_len, out)
        })
    }

    /// Seek-coalesced multi-get: ids landing in the same block are grouped
    /// so each block is read and decompressed **once** per batch, however
    /// many documents it serves; groups are processed in file order across
    /// the workers. Results come back in request order.
    fn get_batch(&self, ids: &[u32], threads: usize) -> Result<Vec<Vec<u8>>, StoreError> {
        if ids.is_empty() {
            return Ok(Vec::new());
        }
        // (request slot, block, doc offset, doc len); out-of-range ids fail
        // the batch up front, before any I/O.
        let mut reqs = Vec::with_capacity(ids.len());
        for (slot, &id) in ids.iter().enumerate() {
            let id = id as usize;
            let (doc_off, doc_len) = self.map.extent(id).ok_or(StoreError::DocOutOfRange(id))?;
            reqs.push((slot, self.block_of_doc(id), doc_off, doc_len));
        }
        // Blocks are written to the payload in index order, so sorting by
        // block index is sorting by file offset.
        reqs.sort_by_key(|&(_, b, doc_off, _)| (b, doc_off));
        let runs: Vec<&[(usize, usize, u64, usize)]> = reqs.chunk_by(|a, b| a.1 == b.1).collect();
        let threads = threads.max(1).min(runs.len());
        crate::scatter_chunks(ids.len(), &runs, threads, |run| {
            let b = run[0].1;
            let entry = self.blocks[b];
            let raw = self.load_block(b)?;
            run.iter()
                .map(|&(slot, _, doc_off, doc_len)| {
                    let mut out = Vec::with_capacity(doc_len);
                    Self::slice_doc(&raw, entry, doc_off, doc_len, &mut out)?;
                    Ok((slot, out))
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;

    fn docs() -> Vec<Vec<u8>> {
        (0..120)
            .map(|i| {
                format!(
                    "<doc id={i}><body>{} shared boilerplate trailer</body></doc>",
                    "text ".repeat(i % 40)
                )
                .into_bytes()
            })
            .collect()
    }

    fn check_store(codec: BlockCodec, block_size: usize) {
        let dir = TestDir::new(&format!("blocked-{}-{}", codec.name(), block_size));
        let d = docs();
        BlockedStore::build(
            dir.path(),
            d.iter().map(|v| v.as_slice()),
            codec,
            block_size,
            4,
        )
        .unwrap();
        for store in [
            BlockedStore::open(dir.path()).unwrap(),
            BlockedStore::open_resident(dir.path()).unwrap(),
        ] {
            assert_eq!(store.num_docs(), d.len());
            for (i, doc) in d.iter().enumerate() {
                assert_eq!(&store.get(i).unwrap(), doc, "doc {i}");
            }
            // Reverse order hits different blocks each time.
            for i in (0..d.len()).rev() {
                assert_eq!(&store.get(i).unwrap(), &d[i]);
            }
        }
    }

    #[test]
    fn zlite_one_doc_per_block() {
        check_store(BlockCodec::Zlite(rlz_zlite::Level::Default), 0);
    }

    #[test]
    fn zlite_fixed_blocks() {
        check_store(BlockCodec::Zlite(rlz_zlite::Level::Default), 4096);
    }

    #[test]
    fn lzlite_fixed_blocks() {
        check_store(BlockCodec::Lzlite(rlz_lzlite::Level::Default), 8192);
    }

    #[test]
    fn block_larger_than_collection() {
        check_store(BlockCodec::Zlite(rlz_zlite::Level::Fast), usize::MAX);
    }

    #[test]
    fn bigger_blocks_compress_better() {
        let dir_small = TestDir::new("blocked-ratio-small");
        let dir_big = TestDir::new("blocked-ratio-big");
        let d = docs();
        let codec = BlockCodec::Zlite(rlz_zlite::Level::Default);
        BlockedStore::build(
            dir_small.path(),
            d.iter().map(|v| v.as_slice()),
            codec,
            0,
            4,
        )
        .unwrap();
        BlockedStore::build(
            dir_big.path(),
            d.iter().map(|v| v.as_slice()),
            codec,
            1 << 20,
            4,
        )
        .unwrap();
        let small = BlockedStore::open(dir_small.path()).unwrap().stored_bytes();
        let big = BlockedStore::open(dir_big.path()).unwrap().stored_bytes();
        assert!(big < small, "big-block {big} should beat per-doc {small}");
    }

    #[test]
    fn cache_changes_speed_not_results() {
        let dir = TestDir::new("blocked-cache");
        let d = docs();
        let codec = BlockCodec::Zlite(rlz_zlite::Level::Default);
        BlockedStore::build(dir.path(), d.iter().map(|v| v.as_slice()), codec, 16384, 2).unwrap();
        let mut store = BlockedStore::open(dir.path()).unwrap();
        store.set_block_cache(true);
        for (i, doc) in d.iter().enumerate() {
            assert_eq!(&store.get(i).unwrap(), doc);
        }
        // And again in reverse, now served partly from cache.
        for (i, doc) in d.iter().enumerate().rev() {
            assert_eq!(&store.get(i).unwrap(), doc);
        }
        store.set_block_cache(false);
        assert_eq!(&store.get(7).unwrap(), &d[7]);
    }

    #[test]
    fn cache_is_shared_across_clones_and_threads() {
        let dir = TestDir::new("blocked-cache-shared");
        let d = docs();
        let codec = BlockCodec::Zlite(rlz_zlite::Level::Default);
        BlockedStore::build(dir.path(), d.iter().map(|v| v.as_slice()), codec, 8192, 2).unwrap();
        let mut store = BlockedStore::open(dir.path()).unwrap();
        store.set_block_cache_capacity(16);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let handle = store.clone();
                let d = &d;
                scope.spawn(move || {
                    for round in 0..3 {
                        for (i, doc) in d.iter().enumerate() {
                            if (i + t + round) % 2 == 0 {
                                assert_eq!(&handle.get(i).unwrap(), doc);
                            }
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn empty_collection_is_valid() {
        let dir = TestDir::new("blocked-empty");
        let codec = BlockCodec::Zlite(rlz_zlite::Level::Default);
        BlockedStore::build(dir.path(), std::iter::empty(), codec, 4096, 1).unwrap();
        let store = BlockedStore::open(dir.path()).unwrap();
        assert_eq!(store.num_docs(), 0);
    }
}
