//! `rlz-verify` — offline integrity scrub for any store directory.
//!
//! Walks a store's payload verifying every block/record checksum (or, on
//! legacy layouts without checksums, attempting a full decode), prints a
//! report, and exits nonzero if anything is corrupt. With `--quarantine`,
//! the unreadable doc ids are written to the store's `quarantine.bin`
//! sidecar so subsequent opens pre-fail them with a typed error instead of
//! re-reading known-bad bytes.
//!
//! Live stores (detected by their `MANIFEST`) are scrubbed end to end:
//! every WAL frame is re-parsed and CRC-checked and every sealed-segment
//! record is CRC-verified, so one tool audits the whole directory.
//!
//! ```text
//! rlz-verify --store DIR [--family rlz|blocked|ascii|live] [--resident] [--quarantine]
//! ```

use rlz_store::{scrub_live, AsciiStore, BlockedStore, RlzStore, ScrubReport};
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Args {
    store: PathBuf,
    family: String,
    resident: bool,
    quarantine: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: rlz-verify --store DIR [--family rlz|blocked|ascii|live] [--resident] [--quarantine]\n\
         \n\
         Scrubs a store offline: verifies every block/record checksum (legacy\n\
         layouts fall back to trial decodes), prints what is corrupt, and exits\n\
         nonzero if anything is. --quarantine records the unreadable doc ids in\n\
         the store's quarantine.bin sidecar; a clean scrub removes the sidecar."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        store: PathBuf::new(),
        family: "auto".to_string(),
        resident: false,
        quarantine: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => args.store = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--family" => args.family = it.next().unwrap_or_else(|| usage()),
            "--resident" => args.resident = true,
            "--quarantine" => args.quarantine = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if args.store.as_os_str().is_empty() {
        usage();
    }
    args
}

/// Store family by directory content, mirroring `rlz-serve`'s autodetect.
/// Live stores also carry `dict.bin`, so the `MANIFEST` probe comes first.
fn detect_family(dir: &Path) -> &'static str {
    if dir.join(rlz_store::MANIFEST_FILE).exists() {
        "live"
    } else if dir.join("dict.bin").exists() {
        "rlz"
    } else if dir.join("blocks.bin").exists() {
        "blocked"
    } else {
        "ascii"
    }
}

fn scrub(args: &Args) -> Result<ScrubReport, rlz_store::StoreError> {
    let dir = &args.store;
    let family = if args.family == "auto" {
        detect_family(dir)
    } else {
        args.family.as_str()
    };
    match family {
        "rlz" => Ok(if args.resident {
            RlzStore::open_resident(dir)?.scrub()
        } else {
            RlzStore::open(dir)?.scrub()
        }),
        "blocked" => Ok(if args.resident {
            BlockedStore::open_resident(dir)?.scrub()
        } else {
            BlockedStore::open(dir)?.scrub()
        }),
        "ascii" => Ok(if args.resident {
            AsciiStore::open_resident(dir)?.scrub()
        } else {
            AsciiStore::open(dir)?.scrub()
        }),
        // Read-only scrub of WAL + sealed segments; never truncates or
        // repairs (that is recovery's job, on open).
        "live" => scrub_live(dir),
        other => {
            eprintln!("unknown store family: {other}");
            usage();
        }
    }
}

fn main() {
    let args = parse_args();
    let start = Instant::now();
    let report = match scrub(&args) {
        Ok(report) => report,
        Err(e) => {
            // The store would not even open — metadata-level corruption.
            eprintln!("rlz-verify: cannot open {}: {e}", args.store.display());
            std::process::exit(1);
        }
    };
    let secs = start.elapsed().as_secs_f64();
    let mb = report.bytes as f64 / (1024.0 * 1024.0);
    println!(
        "scrubbed {} units / {:.2} MiB in {:.3}s ({:.1} MB/s), integrity {}",
        report.units,
        mb,
        secs,
        if secs > 0.0 { mb / secs } else { 0.0 },
        report.integrity.name(),
    );
    for unit in &report.bad {
        let ids = &unit.doc_ids;
        let span = match (ids.first(), ids.last()) {
            (Some(a), Some(b)) if a != b => format!("docs {a}..={b}"),
            (Some(a), _) => format!("doc {a}"),
            _ => "no docs".to_string(),
        };
        match unit.block {
            Some(b) => println!("  CORRUPT block {b} ({span}): {}", unit.error),
            None => println!("  CORRUPT {span}: {}", unit.error),
        }
    }
    if args.quarantine {
        let ids = report.bad_doc_ids();
        if let Err(e) = rlz_store::write_quarantine(&args.store, &ids) {
            eprintln!("rlz-verify: cannot write quarantine sidecar: {e}");
            std::process::exit(1);
        }
        if ids.is_empty() {
            println!("clean scrub: quarantine sidecar removed (if any)");
        } else {
            println!("quarantined {} doc id(s) in quarantine.bin", ids.len());
        }
    }
    if !report.is_clean() {
        eprintln!(
            "rlz-verify: {} corrupt unit(s), {} unreadable doc id(s)",
            report.bad.len(),
            report.bad_doc_ids().len()
        );
        std::process::exit(1);
    }
}
