//! Document stores with fast random access — the storage layer of the
//! paper's evaluation (§4, "Systems Tested").
//!
//! Three store families, all sharing one [`DocStore`] trait and an on-disk
//! directory layout:
//!
//! * [`AsciiStore`] — raw concatenation + document map (the uncompressed
//!   baseline),
//! * [`BlockedStore`] — fixed-size blocks compressed with
//!   [`BlockCodec::Zlite`] (zlib-class) or [`BlockCodec::Lzlite`]
//!   (lzma-class); block size 0 = one document per block,
//! * [`RlzStore`] — the paper's contribution: per-document RLZ encodings
//!   decoded against a memory-resident dictionary.
//!
//! # Example
//!
//! ```
//! use rlz_store::{DocStore, RlzStore, RlzStoreBuilder};
//! use rlz_core::{Dictionary, PairCoding, SampleStrategy};
//!
//! let docs: Vec<Vec<u8>> = (0..50)
//!     .map(|i| format!("<page>{i} shared header</page>").into_bytes())
//!     .collect();
//! let all: Vec<u8> = docs.concat();
//! let dict = Dictionary::sample(&all, 256, 64, SampleStrategy::Evenly);
//!
//! let dir = std::env::temp_dir().join("rlz-doc-example");
//! let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
//! RlzStoreBuilder::new(dict, PairCoding::UV).build(&dir, &slices).unwrap();
//!
//! let mut store = RlzStore::open(&dir).unwrap();
//! assert_eq!(store.get(7).unwrap(), docs[7]);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod blocked;
mod docmap;
mod rlz_store;
#[cfg(test)]
pub(crate) mod testutil;

pub use ascii::AsciiStore;
pub use blocked::{BlockCodec, BlockedStore};
pub use docmap::DocMap;
pub use rlz_store::{RlzStore, RlzStoreBuilder};

use std::fmt;
use std::io;
use std::path::Path;

/// Errors from building or reading stores.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// A compressed payload failed to decode.
    Codec(rlz_codecs::CodecError),
    /// An lzlite block failed to decode.
    Lz(rlz_lzlite::Error),
    /// Structural corruption in store metadata.
    Corrupt(&'static str),
    /// Requested document does not exist.
    DocOutOfRange(usize),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Codec(e) => write!(f, "store codec error: {e}"),
            StoreError::Lz(e) => write!(f, "store lzlite error: {e}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store: {what}"),
            StoreError::DocOutOfRange(id) => write!(f, "document {id} out of range"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            StoreError::Lz(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<rlz_codecs::CodecError> for StoreError {
    fn from(e: rlz_codecs::CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<rlz_lzlite::Error> for StoreError {
    fn from(e: rlz_lzlite::Error) -> Self {
        StoreError::Lz(e)
    }
}

/// Random access to documents by ID.
pub trait DocStore {
    /// Number of documents stored.
    fn num_docs(&self) -> usize;

    /// Appends document `id`'s bytes to `out`.
    fn get_into(&mut self, id: usize, out: &mut Vec<u8>) -> Result<(), StoreError>;

    /// Fetches document `id` into a fresh buffer.
    fn get(&mut self, id: usize) -> Result<Vec<u8>, StoreError> {
        let mut out = Vec::new();
        self.get_into(id, &mut out)?;
        Ok(out)
    }
}

/// Reads a whole file (helper shared by store readers).
pub(crate) fn read_file(path: &Path) -> Result<Vec<u8>, StoreError> {
    Ok(std::fs::read(path)?)
}
