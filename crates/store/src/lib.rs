//! Document stores with fast random access — the storage layer of the
//! paper's evaluation (§4, "Systems Tested").
//!
//! Three store families, all sharing one [`DocStore`] trait and an on-disk
//! directory layout:
//!
//! * [`AsciiStore`] — raw concatenation + document map (the uncompressed
//!   baseline),
//! * [`BlockedStore`] — fixed-size blocks compressed with
//!   [`BlockCodec::Zlite`] (zlib-class) or [`BlockCodec::Lzlite`]
//!   (lzma-class); block size 0 = one document per block,
//! * [`RlzStore`] — the paper's contribution: per-document RLZ encodings
//!   decoded against a memory-resident dictionary.
//!
//! # Shared-reader architecture
//!
//! The paper's headline result is that RLZ retrieval is just a document-map
//! lookup, one positioned read, and memcpy expansion against an in-memory
//! dictionary — a read path that scales with reader threads. The store
//! layer is built around that:
//!
//! * every retrieval method takes **`&self`**: one opened store serves any
//!   number of threads concurrently;
//! * disk access goes through [`StorageBackend`] (positional
//!   `read_exact_at`; no shared file cursor), with a file-backed
//!   ([`FileBackend`]) and a memory-resident ([`MemBackend`]) variant —
//!   see each store's `open` / `open_resident`;
//! * stores are `Clone`, and clones are cheap handles sharing the
//!   dictionary, document map and backend via `Arc` — hand one to each
//!   worker thread, or just share a reference;
//! * [`DocStore::get_batch`] serves a batch of requests on N threads,
//!   seek-aware: requests are ordered by on-disk offset
//!   ([`DocStore::record_offset`]) so workers sweep the payload forward,
//!   and [`BlockedStore`] coalesces same-block ids so one decompression
//!   serves every document in the block (results return in request
//!   order; [`get_batch_unordered`] keeps the naive fan-out as the
//!   benchmark ablation);
//! * [`BlockedStore`]'s optional block cache is a thread-safe sharded LRU
//!   ([`ShardedLru`]) shared by all clones of the store.
//!
//! # Example
//!
//! ```
//! use rlz_store::{DocStore, RlzStore, RlzStoreBuilder};
//! use rlz_core::{Dictionary, PairCoding, SampleStrategy};
//!
//! let docs: Vec<Vec<u8>> = (0..50)
//!     .map(|i| format!("<page>{i} shared header</page>").into_bytes())
//!     .collect();
//! let all: Vec<u8> = docs.concat();
//! let dict = Dictionary::sample(&all, 256, 64, SampleStrategy::Evenly);
//!
//! let dir = std::env::temp_dir().join("rlz-doc-example");
//! let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
//! RlzStoreBuilder::new(dict, PairCoding::UV).build(&dir, &slices).unwrap();
//!
//! let store = RlzStore::open(&dir).unwrap();
//! assert_eq!(store.get(7).unwrap(), docs[7]);
//!
//! // Concurrent multi-get: one shared store, four worker threads.
//! let ids: Vec<u32> = (0..50).collect();
//! let batch = store.get_batch(&ids, 4).unwrap();
//! assert_eq!(batch[13], docs[13]);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod backend;
mod blocked;
mod build;
mod cache;
mod docmap;
mod fault;
mod live;
mod rlz_store;
mod segment;
#[cfg(test)]
pub(crate) mod testutil;
mod verify;
mod wal;

pub use ascii::{AsciiStore, AsciiWriter};
pub use backend::{FileBackend, MemBackend, StorageBackend};
pub use blocked::{BlockCodec, BlockedStore, BlockedWriter};
pub use build::{
    build_ascii_chunked, build_blocked_chunked, build_rlz_chunked, BuildConfig, BuildReport,
};
pub use cache::ShardedLru;
pub use docmap::DocMap;
pub use fault::{FaultBackend, FaultMedia, FaultPlan};
pub use live::{scrub_live, LiveConfig, LiveSnapshot, LiveStore, RecoveryInfo};
pub use rlz_store::{RlzStore, RlzStoreBuilder, RlzWriter};
pub use segment::{segment_file_name, Manifest, SegmentReader, MANIFEST_FILE};
pub use verify::{write_quarantine, BadUnit, ScrubReport, QUARANTINE_FILE};
pub use wal::{FileMedia, FsyncPolicy, Wal, WalMedia, WalOp, WalRecord, WalRecovery, WAL_FILE};

use std::cell::RefCell;
use std::fmt;
use std::io;
use std::path::Path;

/// Errors from building or reading stores.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// A compressed payload failed to decode.
    Codec(rlz_codecs::CodecError),
    /// An lzlite block failed to decode.
    Lz(rlz_lzlite::Error),
    /// Structural corruption or checksum mismatch in store data.
    ///
    /// `block` and `doc_id` bound the blast radius when it is known: a
    /// failed block checksum names the block, a failed record verification
    /// names the document. Open-time metadata corruption carries neither.
    /// Construct via [`StoreError::corrupt`] when no context is known.
    Corrupt {
        /// Which invariant or checksum failed.
        what: &'static str,
        /// Compressed block containing the corruption, when known.
        block: Option<u32>,
        /// Document id whose bytes are unreadable, when known.
        doc_id: Option<u32>,
    },
    /// Requested document does not exist.
    DocOutOfRange(usize),
    /// A write was attempted on a store opened without a write path.
    ReadOnly,
    /// The write-ahead log hit its hard size bound; writes fail until a
    /// seal drains it.
    WalFull,
}

impl StoreError {
    /// Structural corruption with no localized blast radius (open-time
    /// metadata failures, unknown codec tags, and the like).
    pub fn corrupt(what: &'static str) -> Self {
        StoreError::Corrupt {
            what,
            block: None,
            doc_id: None,
        }
    }

    /// Attaches a document id to a corruption error that does not already
    /// name one, so per-id containment paths can report which document a
    /// shared failure (e.g. one bad block) took down. Other variants pass
    /// through unchanged.
    pub fn for_doc(self, doc_id: u32) -> Self {
        match self {
            StoreError::Corrupt {
                what,
                block,
                doc_id: None,
            } => StoreError::Corrupt {
                what,
                block,
                doc_id: Some(doc_id),
            },
            other => other,
        }
    }

    /// Structural copy of this error, for fanning one failure out to every
    /// document it affects (`io::Error` is not `Clone`; the `Io` variant is
    /// rebuilt from its kind and message).
    pub fn duplicate(&self) -> Self {
        match self {
            StoreError::Io(e) => StoreError::Io(io::Error::new(e.kind(), e.to_string())),
            StoreError::Codec(e) => StoreError::Codec(e.clone()),
            StoreError::Lz(e) => StoreError::Lz(e.clone()),
            StoreError::Corrupt {
                what,
                block,
                doc_id,
            } => StoreError::Corrupt {
                what,
                block: *block,
                doc_id: *doc_id,
            },
            StoreError::DocOutOfRange(id) => StoreError::DocOutOfRange(*id),
            StoreError::ReadOnly => StoreError::ReadOnly,
            StoreError::WalFull => StoreError::WalFull,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Codec(e) => write!(f, "store codec error: {e}"),
            StoreError::Lz(e) => write!(f, "store lzlite error: {e}"),
            StoreError::Corrupt {
                what,
                block,
                doc_id,
            } => {
                write!(f, "corrupt store: {what}")?;
                if let Some(b) = block {
                    write!(f, " [block {b}]")?;
                }
                if let Some(d) = doc_id {
                    write!(f, " [doc {d}]")?;
                }
                Ok(())
            }
            StoreError::DocOutOfRange(id) => write!(f, "document {id} out of range"),
            StoreError::ReadOnly => write!(f, "store is read-only"),
            StoreError::WalFull => write!(f, "write-ahead log is full"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            StoreError::Lz(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<rlz_codecs::CodecError> for StoreError {
    fn from(e: rlz_codecs::CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<rlz_lzlite::Error> for StoreError {
    fn from(e: rlz_lzlite::Error) -> Self {
        StoreError::Lz(e)
    }
}

/// Integrity protection level of a store's on-disk layout.
///
/// Reported in [`StoreStats`] (and over the wire in `rlz-serve`'s STAT
/// frame) so operators can see whether a store's reads are
/// checksum-verified. Legacy layouts open fine and report
/// [`Integrity::None`]; stores written by this version carry per-block /
/// per-record CRC32C sums that are verified on every read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrity {
    /// Legacy layout without checksums; corruption may surface as decoder
    /// errors or silently wrong bytes.
    #[default]
    None,
    /// CRC32C over every compressed block / encoded record, verified
    /// before bytes are returned.
    Crc32c,
}

impl Integrity {
    /// Short label for STAT output and benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            Integrity::None => "none",
            Integrity::Crc32c => "crc32c",
        }
    }

    /// One-byte wire encoding for the STAT frame.
    pub fn tag(self) -> u8 {
        match self {
            Integrity::None => 0,
            Integrity::Crc32c => 1,
        }
    }

    /// Inverse of [`Integrity::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Integrity::None),
            1 => Some(Integrity::Crc32c),
            _ => None,
        }
    }
}

/// Cheap aggregate statistics about an opened store.
///
/// Serving frontends (`rlz-serve`'s STAT opcode) and monitoring read these
/// without touching the payload: every field comes from metadata already
/// resident after `open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of documents stored.
    pub num_docs: u64,
    /// Stored payload bytes (compressed where the store compresses;
    /// excludes dictionary/metadata). 0 when the store cannot say cheaply.
    pub payload_bytes: u64,
    /// Largest single record in the payload: the raw document for
    /// [`AsciiStore`] and [`BlockedStore`], the *encoded* record for
    /// [`RlzStore`] (decoded sizes are unknowable without decoding).
    /// 0 when the store cannot say cheaply.
    pub max_record_len: u64,
    /// Whether reads from this store are checksum-verified.
    pub integrity: Integrity,
}

/// Random access to documents by ID, shareable across reader threads.
///
/// All retrieval takes `&self`: implementations use positional I/O and
/// interior synchronization (never a shared cursor), so one opened store can
/// serve concurrent requests. `Send + Sync` is part of the contract.
pub trait DocStore: Send + Sync {
    /// Number of documents stored.
    fn num_docs(&self) -> usize;

    /// Cheap aggregate statistics (metadata only; never touches the
    /// payload). The default reports the document count and leaves the
    /// other fields 0; the concrete stores override with exact values.
    fn stats(&self) -> StoreStats {
        StoreStats {
            num_docs: self.num_docs() as u64,
            ..StoreStats::default()
        }
    }

    /// Appends document `id`'s bytes to `out`.
    fn get_into(&self, id: usize, out: &mut Vec<u8>) -> Result<(), StoreError>;

    /// Fetches document `id` into a fresh buffer.
    fn get(&self, id: usize) -> Result<Vec<u8>, StoreError> {
        let mut out = Vec::new();
        self.get_into(id, &mut out)?;
        Ok(out)
    }

    /// Byte offset of document `id`'s record within the store's payload,
    /// when the store keeps one (used by [`DocStore::get_batch`] to order
    /// batched reads by on-disk position). `None` for out-of-range ids or
    /// stores without a meaningful payload offset.
    fn record_offset(&self, id: usize) -> Option<u64> {
        let _ = id;
        None
    }

    /// Fetches every document in `ids`, **in request order**, using up to
    /// `threads` worker threads sharing this store.
    ///
    /// The default implementation is seek-aware ([`get_batch_ordered`]):
    /// requests are sorted by [`record_offset`](DocStore::record_offset) so
    /// each worker sweeps forward through a contiguous region of the
    /// payload instead of seeking randomly — the win is largest on cold
    /// file-backed stores. Results are scattered back into request order,
    /// duplicates served independently, and any out-of-range id fails the
    /// whole batch. [`BlockedStore`] overrides this to additionally
    /// coalesce ids sharing a block, so one decompression serves every
    /// document in the block.
    fn get_batch(&self, ids: &[u32], threads: usize) -> Result<Vec<Vec<u8>>, StoreError> {
        get_batch_ordered(self, ids, threads)
    }

    /// Number of doc ids quarantined by `rlz-verify` (reads of them
    /// pre-fail with [`StoreError::Corrupt`]). The default reports 0;
    /// families that load the `quarantine.bin` sidecar override it.
    fn quarantined_docs(&self) -> u64 {
        0
    }

    /// Fetches every document in `ids` with **per-id** error containment:
    /// one unreadable document (a corrupt block, an I/O error, an
    /// out-of-range id) yields an `Err` in its slot while every other slot
    /// still carries its bytes. Results are in request order.
    ///
    /// This is the fault-containment counterpart of
    /// [`get_batch`](DocStore::get_batch), which fails the whole batch on
    /// the first error. [`BlockedStore`] overrides this so a block that
    /// fails its checksum fails exactly the ids living in that block — and
    /// is still decompressed only once per batch.
    fn get_batch_results(&self, ids: &[u32], threads: usize) -> Vec<Result<Vec<u8>, StoreError>> {
        get_batch_results_ordered(self, ids, threads)
    }
}

/// A store that accepts writes. [`LiveStore`] is the one implementation;
/// the trait exists so the serving layer can hold `Arc<dyn WriteStore>`
/// without knowing the store family.
///
/// Durability contract: under [`FsyncPolicy::Always`] an `Ok` return means
/// the mutation's WAL frame is on stable storage — it survives `kill -9`
/// and power loss. Under `Interval`/`Never` an `Ok` means the mutation is
/// logged and visible, with durability following by the policy's window.
pub trait WriteStore: DocStore {
    /// Stores a new document, returning its assigned id.
    fn put(&self, doc: &[u8]) -> Result<u32, StoreError>;

    /// Appends bytes to an existing document.
    fn append(&self, id: u32, bytes: &[u8]) -> Result<(), StoreError>;

    /// Deletes a document; subsequent gets fail with
    /// [`StoreError::DocOutOfRange`].
    fn delete(&self, id: u32) -> Result<(), StoreError>;

    /// True when the write backlog (WAL length) passed its soft bound and
    /// new writes should be shed with `ERR_BUSY`. Reads are unaffected.
    fn write_pressure(&self) -> bool {
        false
    }

    /// Point-in-time write-path accounting for monitoring (WAL backlog,
    /// seal counts, what the last open recovered). The default reports
    /// zeros; [`LiveStore`] overrides with live values. May take the
    /// writer lock briefly — call it from scrape paths, not hot paths.
    fn write_stats(&self) -> WriteStats {
        WriteStats::default()
    }
}

/// Write-path accounting reported by [`WriteStore::write_stats`].
///
/// Counters (`wal_frames`, `seals`, `seal_failures`) accumulate from the
/// store's open; gauges (`wal_bytes`, `unsynced_frames`) are current
/// values; the `recovery_*` fields describe what the most recent open
/// replayed (see [`RecoveryInfo`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteStats {
    /// Current WAL backlog in bytes.
    pub wal_bytes: u64,
    /// WAL frames logged since open (PUT/APPEND/DELETE).
    pub wal_frames: u64,
    /// WAL frames appended but not yet on stable storage.
    pub unsynced_frames: u64,
    /// Tail seals published since open (manifest generations advanced).
    pub seals: u64,
    /// Post-write opportunistic seals that failed (retried on the next
    /// write; the writes they followed were already durable).
    pub seal_failures: u64,
    /// Pre-write seals that failed and rejected the incoming write (the
    /// WAL was at its hard bound and could not be drained) — each one is
    /// an error a writer saw.
    pub pre_seal_failures: u64,
    /// WAL frames the most recent open replayed.
    pub recovery_replayed_frames: u64,
    /// WAL bytes the most recent open read back.
    pub recovery_wal_bytes: u64,
    /// Torn/corrupt WAL tail bytes the most recent open truncated away.
    pub recovery_torn_bytes: u64,
    /// Seal-debris files the most recent open deleted.
    pub recovery_debris_removed: u64,
}

/// Seek-aware multi-get: orders requests by payload offset, fans contiguous
/// runs out to `threads` workers, and scatters results back into request
/// order. This is the default [`DocStore::get_batch`].
pub fn get_batch_ordered<S: DocStore + ?Sized>(
    store: &S,
    ids: &[u32],
    threads: usize,
) -> Result<Vec<Vec<u8>>, StoreError> {
    if ids.is_empty() {
        return Ok(Vec::new());
    }
    let mut order: Vec<(usize, u32)> = ids.iter().copied().enumerate().collect();
    // Stable sort by on-disk position; `None` (offset-less or out-of-range
    // ids — the latter error inside get) sorts first, which is harmless.
    order.sort_by_cached_key(|&(_, id)| store.record_offset(id as usize));
    let threads = threads.max(1).min(ids.len());
    let chunk = order.len().div_ceil(threads);
    let tasks: Vec<&[(usize, u32)]> = order.chunks(chunk).collect();
    scatter_chunks(ids.len(), &tasks, threads, |part| {
        part.iter()
            .map(|&(slot, id)| Ok((slot, store.get(id as usize)?)))
            .collect()
    })
}

/// Seek-aware multi-get with per-id error containment: like
/// [`get_batch_ordered`], but an id that cannot be served puts a
/// [`StoreError`] in its own slot instead of failing the batch. This is the
/// default [`DocStore::get_batch_results`].
pub fn get_batch_results_ordered<S: DocStore + ?Sized>(
    store: &S,
    ids: &[u32],
    threads: usize,
) -> Vec<Result<Vec<u8>, StoreError>> {
    if ids.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<(usize, u32)> = ids.iter().copied().enumerate().collect();
    order.sort_by_cached_key(|&(_, id)| store.record_offset(id as usize));
    let threads = threads.max(1).min(ids.len());
    let chunk = order.len().div_ceil(threads);
    let tasks: Vec<&[(usize, u32)]> = order.chunks(chunk).collect();
    scatter_chunks(ids.len(), &tasks, threads, |part| {
        Ok(part
            .iter()
            .map(|&(slot, id)| (slot, store.get(id as usize).map_err(|e| e.for_doc(id))))
            .collect())
    })
    .expect("per-id tasks are infallible")
}

/// Request-order multi-get without seek awareness: every worker pulls the
/// next id from a shared counter, whatever its disk position. Kept as the
/// ablation baseline for the batch-retrieval benchmark (`--bin batch`).
pub fn get_batch_unordered<S: DocStore + ?Sized>(
    store: &S,
    ids: &[u32],
    threads: usize,
) -> Result<Vec<Vec<u8>>, StoreError> {
    let threads = threads.max(1).min(ids.len().max(1));
    if threads <= 1 {
        return ids.iter().map(|&id| store.get(id as usize)).collect();
    }
    parallel_map(ids, threads, |&id| store.get(id as usize))
        .into_iter()
        .collect()
}

/// Runs `tasks` on up to `threads` scoped workers; each task yields
/// `(slot, value)` pairs that are scattered into a `n_out`-slot result
/// vector. Every slot must be filled exactly once across all tasks. The
/// first task error fails the whole call.
pub(crate) fn scatter_chunks<T: Sync, R: Send>(
    n_out: usize,
    tasks: &[T],
    threads: usize,
    f: impl Fn(&T) -> Result<Vec<(usize, R)>, StoreError> + Sync,
) -> Result<Vec<R>, StoreError> {
    let threads = threads.max(1).min(tasks.len().max(1));
    let mut slots: Vec<Option<R>> = (0..n_out).map(|_| None).collect();
    let fill = |slots: &mut Vec<Option<R>>, pairs: Vec<(usize, R)>| {
        for (slot, r) in pairs {
            debug_assert!(slots[slot].is_none(), "slot {slot} filled twice");
            slots[slot] = Some(r);
        }
    };
    if threads <= 1 {
        for t in tasks {
            let pairs = f(t)?;
            fill(&mut slots, pairs);
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let f = &f;
        let next = &next;
        let results: Vec<Result<Vec<(usize, R)>, StoreError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut acc = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(t) = tasks.get(i) else { break };
                            acc.append(&mut f(t)?);
                        }
                        Ok(acc)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker panicked"))
                .collect()
        });
        for r in results {
            let pairs = r?;
            fill(&mut slots, pairs);
        }
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("every slot filled by exactly one task"))
        .collect())
}

/// Maps `f` over `items` using `threads` OS threads, preserving order.
/// Used for parallel compression at build time and parallel multi-gets at
/// read time.
pub(crate) fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let slots_mutex: Vec<std::sync::Mutex<&mut Option<R>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                **slots_mutex[i].lock().expect("no poisoning") = Some(r);
            });
        }
    });
    drop(slots_mutex);
    slots
        .into_iter()
        .map(|s| s.expect("all computed"))
        .collect()
}

thread_local! {
    /// Per-thread scratch for encoded records, so the hot read path does
    /// not allocate per get.
    static SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
    /// Per-thread factor-stream scratch for the fused RLZ decode pipeline
    /// (two `u32` buffers + one inflate buffer, see
    /// [`rlz_core::DecodeScratch`]). Together with `SCRATCH` this makes a
    /// warm `RlzStore::get_into` perform zero heap allocations.
    static DECODE_SCRATCH: RefCell<rlz_core::DecodeScratch> =
        RefCell::new(rlz_core::DecodeScratch::new());
    /// Per-thread decompressed-block buffer for `BlockedStore` gets that
    /// bypass the shared cache (the paper's baseline configuration), so a
    /// warm uncached get reuses one inflate target instead of allocating a
    /// block-sized `Vec` per request.
    static BLOCK_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
    /// Per-thread encode-side scratch mirroring `DECODE_SCRATCH`, used by
    /// the chunked build pipeline's workers so factorizing a master block
    /// reuses one set of factor/stream buffers per thread.
    static ENCODE_SCRATCH: RefCell<rlz_core::EncodeScratch> =
        RefCell::new(rlz_core::EncodeScratch::new());
}

/// Runs `f` over a `len`-byte per-thread scratch slice. Must not be nested
/// (the inner call would hit the RefCell's borrow check).
pub(crate) fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [u8]) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0);
        }
        f(&mut buf[..len])
    })
}

/// Runs `f` with this thread's RLZ factor-stream scratch. Safe to nest
/// inside [`with_scratch`] (different thread-local cells); must not be
/// nested within itself.
pub(crate) fn with_decode_scratch<R>(f: impl FnOnce(&mut rlz_core::DecodeScratch) -> R) -> R {
    DECODE_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// Runs `f` with this thread's decompressed-block buffer. Safe to nest
/// inside [`with_scratch`]; must not be nested within itself.
pub(crate) fn with_block_scratch<R>(f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
    BLOCK_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// Runs `f` with this thread's RLZ encode scratch. Must not be nested
/// within itself.
pub(crate) fn with_encode_scratch<R>(f: impl FnOnce(&mut rlz_core::EncodeScratch) -> R) -> R {
    ENCODE_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// Reads a whole file (helper shared by store readers).
pub(crate) fn read_file(path: &Path) -> Result<Vec<u8>, StoreError> {
    Ok(std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..1000).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let single = parallel_map(&items, 1, |&x| x + 1);
        assert_eq!(single[999], 1000);
    }

    #[test]
    fn scratch_reuses_capacity() {
        let p1 = with_scratch(64, |buf| {
            assert_eq!(buf.len(), 64);
            buf.as_ptr() as usize
        });
        let p2 = with_scratch(32, |buf| {
            assert_eq!(buf.len(), 32);
            buf.as_ptr() as usize
        });
        assert_eq!(p1, p2, "same thread must reuse the same scratch buffer");
    }
}
