//! The uncompressed baseline store: "simply a raw concatenation of
//! uncompressed documents with a map specifying offsets to each document
//! location" (§4, Systems Tested).

use crate::docmap::DocMap;
use crate::{read_file, DocStore, StoreError};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

const DATA_FILE: &str = "data.bin";
const MAP_FILE: &str = "docmap.bin";

/// Uncompressed document store with random access.
#[derive(Debug)]
pub struct AsciiStore {
    file: File,
    map: DocMap,
}

impl AsciiStore {
    /// Builds the store in `dir` from the given documents.
    pub fn build<'a>(
        dir: &Path,
        docs: impl Iterator<Item = &'a [u8]>,
    ) -> Result<(), StoreError> {
        std::fs::create_dir_all(dir)?;
        let mut data = std::io::BufWriter::new(File::create(dir.join(DATA_FILE))?);
        let mut lens = Vec::new();
        for doc in docs {
            data.write_all(doc)?;
            lens.push(doc.len());
        }
        data.flush()?;
        std::fs::write(dir.join(MAP_FILE), DocMap::from_lens(lens).serialize())?;
        Ok(())
    }

    /// Opens a previously built store.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let map = DocMap::deserialize(&read_file(&dir.join(MAP_FILE))?)?;
        let file = File::open(dir.join(DATA_FILE))?;
        Ok(AsciiStore { file, map })
    }

    /// Total stored payload bytes (equals the collection size).
    pub fn stored_bytes(&self) -> u64 {
        self.map.total_bytes()
    }
}

impl DocStore for AsciiStore {
    fn num_docs(&self) -> usize {
        self.map.num_docs()
    }

    fn get_into(&mut self, id: usize, out: &mut Vec<u8>) -> Result<(), StoreError> {
        let (offset, len) = self
            .map
            .extent(id)
            .ok_or(StoreError::DocOutOfRange(id))?;
        self.file.seek(SeekFrom::Start(offset))?;
        let start = out.len();
        out.resize(start + len, 0);
        self.file.read_exact(&mut out[start..])?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;

    #[test]
    fn build_open_get() {
        let dir = TestDir::new("ascii-basic");
        let docs: Vec<Vec<u8>> = (0..50)
            .map(|i| format!("document number {i} with body").into_bytes())
            .collect();
        AsciiStore::build(dir.path(), docs.iter().map(|d| d.as_slice())).unwrap();
        let mut store = AsciiStore::open(dir.path()).unwrap();
        assert_eq!(store.num_docs(), 50);
        for (i, doc) in docs.iter().enumerate() {
            assert_eq!(&store.get(i).unwrap(), doc);
        }
        // Random-ish order too.
        for i in [49usize, 0, 25, 13, 49, 1] {
            assert_eq!(&store.get(i).unwrap(), &docs[i]);
        }
    }

    #[test]
    fn empty_documents_are_fine() {
        let dir = TestDir::new("ascii-empty");
        let docs: Vec<&[u8]> = vec![b"", b"x", b"", b""];
        AsciiStore::build(dir.path(), docs.iter().copied()).unwrap();
        let mut store = AsciiStore::open(dir.path()).unwrap();
        assert_eq!(store.get(0).unwrap(), b"");
        assert_eq!(store.get(1).unwrap(), b"x");
        assert_eq!(store.get(3).unwrap(), b"");
    }

    #[test]
    fn out_of_range_is_an_error() {
        let dir = TestDir::new("ascii-oor");
        AsciiStore::build(dir.path(), [b"only".as_slice()].into_iter()).unwrap();
        let mut store = AsciiStore::open(dir.path()).unwrap();
        assert!(matches!(store.get(1), Err(StoreError::DocOutOfRange(1))));
    }

    #[test]
    fn missing_files_error_cleanly() {
        let dir = TestDir::new("ascii-missing");
        assert!(AsciiStore::open(dir.path()).is_err());
    }
}
