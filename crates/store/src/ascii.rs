//! The uncompressed baseline store: "simply a raw concatenation of
//! uncompressed documents with a map specifying offsets to each document
//! location" (§4, Systems Tested).
//!
//! The data file is headerless raw bytes, so integrity rides in the
//! self-describing `sums.bin` sidecar (one CRC32C per document, written at
//! build time and verified on every read). A store without the sidecar —
//! anything built by an earlier version — opens fine and reports
//! `integrity: none`.

use crate::backend::{FileBackend, MemBackend, StorageBackend};
use crate::docmap::DocMap;
use crate::verify::{encode_sums, load_quarantine, load_sums, BadUnit, ScrubReport, SUMS_FILE};
use crate::{read_file, DocStore, Integrity, StoreError};
use rlz_codecs::hash::crc32c;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

const DATA_FILE: &str = "data.bin";
const MAP_FILE: &str = "docmap.bin";

/// Uncompressed document store with random access. Clones are cheap
/// handles onto the same backend and document map.
#[derive(Debug, Clone)]
pub struct AsciiStore {
    data: Arc<dyn StorageBackend>,
    map: Arc<DocMap>,
    /// Per-document CRC32C, verified on every read; `None` for stores
    /// built before the checksum sidecar existed.
    sums: Option<Arc<Vec<u32>>>,
    /// Sorted doc ids quarantined by `rlz-verify`.
    quarantine: Arc<Vec<u32>>,
}

/// Streamed builder for [`AsciiStore`]: documents are appended one at a
/// time and land on disk immediately, so peak memory is one document plus
/// the per-document length/checksum tables — never the corpus. The batch
/// [`AsciiStore::build`] is a thin wrapper over this writer, so the two
/// emit byte-identical stores by construction.
#[derive(Debug)]
pub struct AsciiWriter {
    data: std::io::BufWriter<File>,
    dir: std::path::PathBuf,
    lens: Vec<usize>,
    sums: Vec<u32>,
}

impl AsciiWriter {
    /// Creates `dir` and opens the payload file for streaming appends.
    pub fn create(dir: &Path) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        Ok(AsciiWriter {
            data: std::io::BufWriter::new(File::create(dir.join(DATA_FILE))?),
            dir: dir.to_path_buf(),
            lens: Vec::new(),
            sums: Vec::new(),
        })
    }

    /// Appends one document to the store.
    pub fn append(&mut self, doc: &[u8]) -> Result<(), StoreError> {
        self.data.write_all(doc)?;
        self.lens.push(doc.len());
        self.sums.push(crc32c(doc));
        Ok(())
    }

    /// Flushes the payload and writes the docmap and checksum sidecar,
    /// completing the store.
    pub fn finish(mut self) -> Result<(), StoreError> {
        self.data.flush()?;
        std::fs::write(
            self.dir.join(MAP_FILE),
            DocMap::from_lens(self.lens).serialize(),
        )?;
        std::fs::write(self.dir.join(SUMS_FILE), encode_sums(&self.sums))?;
        Ok(())
    }
}

impl AsciiStore {
    /// Builds the store in `dir` from the given documents.
    pub fn build<'a>(dir: &Path, docs: impl Iterator<Item = &'a [u8]>) -> Result<(), StoreError> {
        let mut writer = AsciiWriter::create(dir)?;
        for doc in docs {
            writer.append(doc)?;
        }
        writer.finish()
    }

    /// Opens a previously built store with a file-backed payload.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Self::with_backend(dir, Arc::new(FileBackend::open(&dir.join(DATA_FILE))?))
    }

    /// Opens a previously built store with the payload fully resident in
    /// memory.
    pub fn open_resident(dir: &Path) -> Result<Self, StoreError> {
        Self::with_backend(dir, Arc::new(MemBackend::load(&dir.join(DATA_FILE))?))
    }

    /// Opens a previously built store over a caller-supplied backend
    /// (fault-injection harnesses, custom storage layers).
    pub fn open_with_backend(
        dir: &Path,
        data: Arc<dyn StorageBackend>,
    ) -> Result<Self, StoreError> {
        Self::with_backend(dir, data)
    }

    fn with_backend(dir: &Path, data: Arc<dyn StorageBackend>) -> Result<Self, StoreError> {
        let map = Arc::new(DocMap::deserialize(&read_file(&dir.join(MAP_FILE))?)?);
        let sums = load_sums(dir, map.num_docs())?.map(Arc::new);
        let quarantine = Arc::new(load_quarantine(dir)?);
        Ok(AsciiStore {
            data,
            map,
            sums,
            quarantine,
        })
    }

    /// Total stored payload bytes (equals the collection size).
    pub fn stored_bytes(&self) -> u64 {
        self.map.total_bytes()
    }

    /// Whether document reads are CRC-verified.
    pub fn integrity(&self) -> Integrity {
        if self.sums.is_some() {
            Integrity::Crc32c
        } else {
            Integrity::None
        }
    }

    /// Walks every document verifying its checksum (or just its
    /// readability, for stores without a sidecar) and reports the
    /// unreadable doc ids. Never panics on corrupt input; used by
    /// `rlz-verify`.
    pub fn scrub(&self) -> ScrubReport {
        let mut report = ScrubReport::new(self.integrity());
        let mut buf = Vec::new();
        for id in 0..self.map.num_docs() {
            report.units += 1;
            if let Some((_, len)) = self.map.extent(id) {
                report.bytes += len as u64;
            }
            buf.clear();
            if let Err(error) = self.get_into(id, &mut buf) {
                report.bad.push(BadUnit {
                    block: None,
                    doc_ids: vec![id as u32],
                    error,
                });
            }
        }
        report
    }
}

impl DocStore for AsciiStore {
    fn num_docs(&self) -> usize {
        self.map.num_docs()
    }

    fn stats(&self) -> crate::StoreStats {
        crate::StoreStats {
            num_docs: self.map.num_docs() as u64,
            payload_bytes: self.map.total_bytes(),
            max_record_len: self.map.max_extent_len(),
            integrity: self.integrity(),
        }
    }

    fn record_offset(&self, id: usize) -> Option<u64> {
        self.map.extent(id).map(|(offset, _)| offset)
    }

    fn get_into(&self, id: usize, out: &mut Vec<u8>) -> Result<(), StoreError> {
        let (offset, len) = self.map.extent(id).ok_or(StoreError::DocOutOfRange(id))?;
        if id <= u32::MAX as usize && self.quarantine.binary_search(&(id as u32)).is_ok() {
            return Err(StoreError::Corrupt {
                what: "document quarantined by rlz-verify",
                block: None,
                doc_id: Some(id as u32),
            });
        }
        let start = out.len();
        out.resize(start + len, 0);
        let result = self
            .data
            .read_exact_at(&mut out[start..], offset)
            .and_then(|()| {
                if let Some(sums) = &self.sums {
                    if crc32c(&out[start..]) != sums[id] {
                        return Err(StoreError::Corrupt {
                            what: "record checksum mismatch",
                            block: None,
                            doc_id: Some(id as u32),
                        });
                    }
                }
                Ok(())
            });
        if let Err(e) = result {
            out.truncate(start);
            return Err(e);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;

    #[test]
    fn build_open_get() {
        let dir = TestDir::new("ascii-basic");
        let docs: Vec<Vec<u8>> = (0..50)
            .map(|i| format!("document number {i} with body").into_bytes())
            .collect();
        AsciiStore::build(dir.path(), docs.iter().map(|d| d.as_slice())).unwrap();
        for store in [
            AsciiStore::open(dir.path()).unwrap(),
            AsciiStore::open_resident(dir.path()).unwrap(),
        ] {
            assert_eq!(store.num_docs(), 50);
            for (i, doc) in docs.iter().enumerate() {
                assert_eq!(&store.get(i).unwrap(), doc);
            }
            // Random-ish order too.
            for i in [49usize, 0, 25, 13, 49, 1] {
                assert_eq!(&store.get(i).unwrap(), &docs[i]);
            }
        }
    }

    #[test]
    fn empty_documents_are_fine() {
        let dir = TestDir::new("ascii-empty");
        let docs: Vec<&[u8]> = vec![b"", b"x", b"", b""];
        AsciiStore::build(dir.path(), docs.iter().copied()).unwrap();
        let store = AsciiStore::open(dir.path()).unwrap();
        assert_eq!(store.get(0).unwrap(), b"");
        assert_eq!(store.get(1).unwrap(), b"x");
        assert_eq!(store.get(3).unwrap(), b"");
    }

    #[test]
    fn out_of_range_is_an_error() {
        let dir = TestDir::new("ascii-oor");
        AsciiStore::build(dir.path(), [b"only".as_slice()].into_iter()).unwrap();
        let store = AsciiStore::open(dir.path()).unwrap();
        assert!(matches!(store.get(1), Err(StoreError::DocOutOfRange(1))));
    }

    #[test]
    fn missing_files_error_cleanly() {
        let dir = TestDir::new("ascii-missing");
        assert!(AsciiStore::open(dir.path()).is_err());
    }

    #[test]
    fn truncated_payload_leaves_out_unchanged() {
        let dir = TestDir::new("ascii-trunc-out");
        AsciiStore::build(dir.path(), [b"0123456789".as_slice()].into_iter()).unwrap();
        std::fs::write(dir.path().join(super::DATA_FILE), b"0123").unwrap();
        let store = AsciiStore::open(dir.path()).unwrap();
        let mut out = b"prefix".to_vec();
        assert!(store.get_into(0, &mut out).is_err());
        assert_eq!(out, b"prefix", "failed read must not leave partial bytes");
    }

    #[test]
    fn checksums_catch_flips_and_legacy_stores_open_without_them() {
        let dir = TestDir::new("ascii-crc");
        let docs: Vec<Vec<u8>> = (0..20)
            .map(|i| format!("document {i} {}", "payload ".repeat(10)).into_bytes())
            .collect();
        AsciiStore::build(dir.path(), docs.iter().map(|d| d.as_slice())).unwrap();
        let store = AsciiStore::open(dir.path()).unwrap();
        assert_eq!(store.stats().integrity, crate::Integrity::Crc32c);

        // Flip a bit in doc 7's bytes: exactly that doc must fail.
        let path = dir.path().join(super::DATA_FILE);
        let mut data = std::fs::read(&path).unwrap();
        let (off, _) = store.map.extent(7).unwrap();
        data[off as usize + 3] ^= 0x02;
        std::fs::write(&path, &data).unwrap();
        let store = AsciiStore::open(dir.path()).unwrap();
        for (i, doc) in docs.iter().enumerate() {
            if i == 7 {
                assert!(matches!(
                    store.get(i),
                    Err(StoreError::Corrupt {
                        what: "record checksum mismatch",
                        doc_id: Some(7),
                        ..
                    })
                ));
            } else {
                assert_eq!(&store.get(i).unwrap(), doc, "doc {i}");
            }
        }
        let report = store.scrub();
        assert_eq!(report.bad_doc_ids(), vec![7]);

        // Without the sidecar (a legacy store) the flip goes unnoticed but
        // the store still opens and serves.
        std::fs::remove_file(dir.path().join(super::SUMS_FILE)).unwrap();
        let store = AsciiStore::open(dir.path()).unwrap();
        assert_eq!(store.stats().integrity, crate::Integrity::None);
        assert_eq!(store.get(0).unwrap(), docs[0]);
        assert_ne!(store.get(7).unwrap(), docs[7]);
    }

    #[test]
    fn clones_share_the_backend() {
        let dir = TestDir::new("ascii-clone");
        let docs: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 100]).collect();
        AsciiStore::build(dir.path(), docs.iter().map(|d| d.as_slice())).unwrap();
        let store = AsciiStore::open(dir.path()).unwrap();
        let clone = store.clone();
        assert_eq!(store.get(3).unwrap(), clone.get(3).unwrap());
    }
}
