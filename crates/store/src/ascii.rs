//! The uncompressed baseline store: "simply a raw concatenation of
//! uncompressed documents with a map specifying offsets to each document
//! location" (§4, Systems Tested).

use crate::backend::{FileBackend, MemBackend, StorageBackend};
use crate::docmap::DocMap;
use crate::{read_file, DocStore, StoreError};
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

const DATA_FILE: &str = "data.bin";
const MAP_FILE: &str = "docmap.bin";

/// Uncompressed document store with random access. Clones are cheap
/// handles onto the same backend and document map.
#[derive(Debug, Clone)]
pub struct AsciiStore {
    data: Arc<dyn StorageBackend>,
    map: Arc<DocMap>,
}

impl AsciiStore {
    /// Builds the store in `dir` from the given documents.
    pub fn build<'a>(dir: &Path, docs: impl Iterator<Item = &'a [u8]>) -> Result<(), StoreError> {
        std::fs::create_dir_all(dir)?;
        let mut data = std::io::BufWriter::new(File::create(dir.join(DATA_FILE))?);
        let mut lens = Vec::new();
        for doc in docs {
            data.write_all(doc)?;
            lens.push(doc.len());
        }
        data.flush()?;
        std::fs::write(dir.join(MAP_FILE), DocMap::from_lens(lens).serialize())?;
        Ok(())
    }

    /// Opens a previously built store with a file-backed payload.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Self::with_backend(dir, Arc::new(FileBackend::open(&dir.join(DATA_FILE))?))
    }

    /// Opens a previously built store with the payload fully resident in
    /// memory.
    pub fn open_resident(dir: &Path) -> Result<Self, StoreError> {
        Self::with_backend(dir, Arc::new(MemBackend::load(&dir.join(DATA_FILE))?))
    }

    fn with_backend(dir: &Path, data: Arc<dyn StorageBackend>) -> Result<Self, StoreError> {
        let map = Arc::new(DocMap::deserialize(&read_file(&dir.join(MAP_FILE))?)?);
        Ok(AsciiStore { data, map })
    }

    /// Total stored payload bytes (equals the collection size).
    pub fn stored_bytes(&self) -> u64 {
        self.map.total_bytes()
    }
}

impl DocStore for AsciiStore {
    fn num_docs(&self) -> usize {
        self.map.num_docs()
    }

    fn stats(&self) -> crate::StoreStats {
        crate::StoreStats {
            num_docs: self.map.num_docs() as u64,
            payload_bytes: self.map.total_bytes(),
            max_record_len: self.map.max_extent_len(),
        }
    }

    fn record_offset(&self, id: usize) -> Option<u64> {
        self.map.extent(id).map(|(offset, _)| offset)
    }

    fn get_into(&self, id: usize, out: &mut Vec<u8>) -> Result<(), StoreError> {
        let (offset, len) = self.map.extent(id).ok_or(StoreError::DocOutOfRange(id))?;
        let start = out.len();
        out.resize(start + len, 0);
        match self.data.read_exact_at(&mut out[start..], offset) {
            Ok(()) => Ok(()),
            Err(e) => {
                out.truncate(start);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;

    #[test]
    fn build_open_get() {
        let dir = TestDir::new("ascii-basic");
        let docs: Vec<Vec<u8>> = (0..50)
            .map(|i| format!("document number {i} with body").into_bytes())
            .collect();
        AsciiStore::build(dir.path(), docs.iter().map(|d| d.as_slice())).unwrap();
        for store in [
            AsciiStore::open(dir.path()).unwrap(),
            AsciiStore::open_resident(dir.path()).unwrap(),
        ] {
            assert_eq!(store.num_docs(), 50);
            for (i, doc) in docs.iter().enumerate() {
                assert_eq!(&store.get(i).unwrap(), doc);
            }
            // Random-ish order too.
            for i in [49usize, 0, 25, 13, 49, 1] {
                assert_eq!(&store.get(i).unwrap(), &docs[i]);
            }
        }
    }

    #[test]
    fn empty_documents_are_fine() {
        let dir = TestDir::new("ascii-empty");
        let docs: Vec<&[u8]> = vec![b"", b"x", b"", b""];
        AsciiStore::build(dir.path(), docs.iter().copied()).unwrap();
        let store = AsciiStore::open(dir.path()).unwrap();
        assert_eq!(store.get(0).unwrap(), b"");
        assert_eq!(store.get(1).unwrap(), b"x");
        assert_eq!(store.get(3).unwrap(), b"");
    }

    #[test]
    fn out_of_range_is_an_error() {
        let dir = TestDir::new("ascii-oor");
        AsciiStore::build(dir.path(), [b"only".as_slice()].into_iter()).unwrap();
        let store = AsciiStore::open(dir.path()).unwrap();
        assert!(matches!(store.get(1), Err(StoreError::DocOutOfRange(1))));
    }

    #[test]
    fn missing_files_error_cleanly() {
        let dir = TestDir::new("ascii-missing");
        assert!(AsciiStore::open(dir.path()).is_err());
    }

    #[test]
    fn truncated_payload_leaves_out_unchanged() {
        let dir = TestDir::new("ascii-trunc-out");
        AsciiStore::build(dir.path(), [b"0123456789".as_slice()].into_iter()).unwrap();
        std::fs::write(dir.path().join(super::DATA_FILE), b"0123").unwrap();
        let store = AsciiStore::open(dir.path()).unwrap();
        let mut out = b"prefix".to_vec();
        assert!(store.get_into(0, &mut out).is_err());
        assert_eq!(out, b"prefix", "failed read must not leave partial bytes");
    }

    #[test]
    fn clones_share_the_backend() {
        let dir = TestDir::new("ascii-clone");
        let docs: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 100]).collect();
        AsciiStore::build(dir.path(), docs.iter().map(|d| d.as_slice())).unwrap();
        let store = AsciiStore::open(dir.path()).unwrap();
        let clone = store.clone();
        assert_eq!(store.get(3).unwrap(), clone.get(3).unwrap());
    }
}
