//! Cursor-free storage backends: positional reads through `&self`.
//!
//! The paper's retrieval model (§3.1) is a document-map lookup followed by
//! one positioned read. A shared `File` cursor (`seek` + `read`) serializes
//! that read path across threads; [`StorageBackend`] instead exposes
//! `read_exact_at`, which is independent of any cursor and therefore safe to
//! issue from any number of reader threads against one open store.
//!
//! Two implementations:
//!
//! * [`FileBackend`] — positional I/O on an open file (`pread` on Unix,
//!   `seek_read` on Windows);
//! * [`MemBackend`] — a fully resident payload, for serving from RAM.

use crate::StoreError;
use std::fmt;
use std::fs::File;
use std::io;
use std::path::Path;

/// Positional, cursor-free reads over an immutable payload.
///
/// Implementations must be safe to call concurrently from many threads —
/// this is what lets one opened store serve parallel requests.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Payload length in bytes.
    fn len(&self) -> u64;

    /// Whether the payload is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fills `buf` exactly from `offset`, erroring if the payload ends
    /// before `offset + buf.len()`.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<(), StoreError>;
}

/// File-backed payload using positional reads (no shared cursor).
#[derive(Debug)]
pub struct FileBackend {
    #[cfg(any(unix, windows))]
    file: File,
    /// Portable fallback: positional reads emulated under a lock.
    #[cfg(not(any(unix, windows)))]
    file: std::sync::Mutex<File>,
    len: u64,
}

impl FileBackend {
    /// Opens `path` for shared positional reads.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Ok(FileBackend {
            #[cfg(any(unix, windows))]
            file,
            #[cfg(not(any(unix, windows)))]
            file: std::sync::Mutex::new(file),
            len,
        })
    }
}

impl StorageBackend for FileBackend {
    fn len(&self) -> u64 {
        self.len
    }

    #[cfg(unix)]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<(), StoreError> {
        use std::os::unix::fs::FileExt;
        Ok(self.file.read_exact_at(buf, offset)?)
    }

    #[cfg(windows)]
    fn read_exact_at(&self, mut buf: &mut [u8], mut offset: u64) -> Result<(), StoreError> {
        use std::os::windows::fs::FileExt;
        while !buf.is_empty() {
            match self.file.seek_read(buf, offset) {
                Ok(0) => {
                    return Err(StoreError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "payload ended mid-record",
                    )))
                }
                Ok(n) => {
                    buf = &mut buf[n..];
                    offset += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(StoreError::Io(e)),
            }
        }
        Ok(())
    }

    #[cfg(not(any(unix, windows)))]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<(), StoreError> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = self.file.lock().expect("file lock poisoned");
        file.seek(SeekFrom::Start(offset))?;
        Ok(file.read_exact(buf)?)
    }
}

/// Memory-resident payload: the whole file held in RAM, reads are memcpy.
#[derive(Debug)]
pub struct MemBackend {
    data: Vec<u8>,
}

impl MemBackend {
    /// Wraps an in-memory payload.
    pub fn new(data: Vec<u8>) -> Self {
        MemBackend { data }
    }

    /// Loads `path` fully into memory.
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        Ok(MemBackend {
            data: std::fs::read(path)?,
        })
    }
}

impl StorageBackend for MemBackend {
    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<(), StoreError> {
        let start = usize::try_from(offset)
            .map_err(|_| StoreError::corrupt("offset exceeds resident payload"))?;
        let chunk = start
            .checked_add(buf.len())
            .and_then(|end| self.data.get(start..end))
            .ok_or_else(|| {
                StoreError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "read past end of resident payload",
                ))
            })?;
        buf.copy_from_slice(chunk);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;

    fn check_backend(b: &dyn StorageBackend) {
        assert_eq!(b.len(), 10);
        let mut buf = [0u8; 4];
        b.read_exact_at(&mut buf, 3).unwrap();
        assert_eq!(&buf, b"3456");
        b.read_exact_at(&mut buf, 6).unwrap();
        assert_eq!(&buf, b"6789");
        // Reading past the end must error, not panic.
        assert!(b.read_exact_at(&mut buf, 8).is_err());
        assert!(b.read_exact_at(&mut buf, 10_000).is_err());
        // Zero-length reads always succeed.
        b.read_exact_at(&mut [], 10).unwrap();
    }

    #[test]
    fn file_backend_positional_reads() {
        let dir = TestDir::new("backend-file");
        let path = dir.path().join("payload.bin");
        std::fs::write(&path, b"0123456789").unwrap();
        check_backend(&FileBackend::open(&path).unwrap());
    }

    #[test]
    fn mem_backend_positional_reads() {
        check_backend(&MemBackend::new(b"0123456789".to_vec()));
    }

    #[test]
    fn concurrent_reads_share_one_backend() {
        let dir = TestDir::new("backend-conc");
        let path = dir.path().join("payload.bin");
        let data: Vec<u8> = (0..=255u8).cycle().take(1 << 16).collect();
        std::fs::write(&path, &data).unwrap();
        let backend = FileBackend::open(&path).unwrap();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let backend = &backend;
                let data = &data;
                scope.spawn(move || {
                    let mut buf = [0u8; 97];
                    for i in 0..500 {
                        let off = (t * 131 + i * 257) % (data.len() - buf.len());
                        backend.read_exact_at(&mut buf, off as u64).unwrap();
                        assert_eq!(&buf[..], &data[off..off + buf.len()]);
                    }
                });
            }
        });
    }
}
