//! Write-ahead log for the live store: CRC32C-framed, torn-tail tolerant.
//!
//! Every mutation (PUT / APPEND / DELETE) is appended to `wal.bin` as one
//! self-checking frame *before* it touches any in-memory state, so a crash
//! at any instant loses at most the writes that were never acknowledged as
//! durable:
//!
//! ```text
//! frame := len:u32le  crc32c:u32le  payload:[u8; len]
//! payload := seq:u64le  op:u8  body…
//! ```
//!
//! `len` counts the payload only; `crc32c` covers the payload. Bodies:
//! PUT → the document bytes, APPEND → `id:u32le` + the appended bytes,
//! DELETE → `id:u32le`. Sequence numbers are assigned monotonically by the
//! writer and never reused; the segment manifest records the highest
//! sequence its sealed segments cover, so recovery replays exactly the
//! frames that are not yet in a sealed segment.
//!
//! **Recovery never panics.** [`Wal::open`] walks the file frame by frame;
//! the first frame that cannot be parsed — a short length prefix, a body
//! the file ends inside, a checksum mismatch — is treated as the torn tail
//! of an interrupted write: the file is truncated back to the last good
//! frame boundary and replay continues with what survived. A frame that
//! was acknowledged under [`FsyncPolicy::Always`] is durable and whole, so
//! it can never be the torn one.
//!
//! Durability is a policy, not an accident: [`FsyncPolicy::Always`] syncs
//! after every append (an ack implies durability), `Interval` bounds the
//! loss window to the configured duration, `Never` leaves syncing to the
//! OS (fastest, weakest — crash recovery still keeps the store readable,
//! it just may not contain recently acked writes).
//!
//! The byte device is abstracted behind [`WalMedia`] so the fault harness
//! ([`FaultMedia`](crate::fault::FaultMedia)) can inject crash points and
//! torn writes deterministically; production uses [`FileMedia`].

use crate::StoreError;
use rlz_codecs::hash::crc32c;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::time::{Duration, Instant};

/// WAL file name inside a live store directory.
pub const WAL_FILE: &str = "wal.bin";

/// Frame op tag: the body is a new document's bytes.
pub(crate) const WAL_OP_PUT: u8 = 1;
/// Frame op tag: the body is `id:u32le` + appended bytes.
pub(crate) const WAL_OP_APPEND: u8 = 2;
/// Frame op tag: the body is `id:u32le`.
pub(crate) const WAL_OP_DELETE: u8 = 3;

/// Frame header bytes: length prefix + checksum.
const FRAME_HEADER: usize = 8;
/// Payload bytes before the body: sequence number + op tag.
const PAYLOAD_HEADER: usize = 9;

/// When the WAL file is pushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every appended frame: an acknowledged write is
    /// durable before the ack exists. The strongest (and slowest) policy.
    Always,
    /// Sync at most once per interval: bounds the crash-loss window to the
    /// interval without paying a sync per write. The `Wal` itself only
    /// syncs when an append lands past the interval (or [`Wal::sync`] is
    /// called); [`LiveStore`](crate::LiveStore) runs a background flusher
    /// so the bound holds even when writes stop arriving.
    Interval(Duration),
    /// Never sync explicitly; the OS flushes when it pleases. Recovery is
    /// still safe (torn tails truncate cleanly) but recently acknowledged
    /// writes may be lost on power failure.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, or `interval:<ms>`.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            other => {
                let ms: u64 = other.strip_prefix("interval:")?.parse().ok()?;
                Some(FsyncPolicy::Interval(Duration::from_millis(ms)))
            }
        }
    }

    /// Short label for logs and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Interval(_) => "interval",
            FsyncPolicy::Never => "never",
        }
    }
}

/// One recovered WAL mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A new document (ids are assigned by replay order, not stored).
    Put(Vec<u8>),
    /// Bytes appended to an existing document.
    Append(u32, Vec<u8>),
    /// A document tombstone.
    Delete(u32),
}

/// A recovered frame: the writer-assigned sequence number plus its op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotone sequence number assigned when the frame was written.
    pub seq: u64,
    /// The mutation.
    pub op: WalOp,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalRecovery {
    /// Every intact frame, in file (= sequence) order.
    pub records: Vec<WalRecord>,
    /// Byte offset the file was truncated back to when a torn or corrupt
    /// tail frame was found; `None` for a clean log.
    pub truncated_at: Option<u64>,
    /// Bytes discarded by the truncation.
    pub dropped_bytes: u64,
}

/// The append-only byte device under a [`Wal`]. Production uses
/// [`FileMedia`]; the fault harness wraps one to inject crash points and
/// torn writes.
#[allow(clippy::len_without_is_empty)] // a zero-length log is just `len() == 0`
pub trait WalMedia: Send {
    /// Appends `buf` at the end of the log.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Pushes appended bytes to stable storage.
    fn sync(&mut self) -> io::Result<()>;
    /// Current log length in bytes.
    fn len(&self) -> u64;
    /// Discards everything past `len` (recovery truncating a torn tail,
    /// or a seal resetting the log).
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// [`WalMedia`] over a real file.
#[derive(Debug)]
pub struct FileMedia {
    file: File,
    len: u64,
}

impl FileMedia {
    /// Opens (creating if absent) `path` for appending.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileMedia { file, len })
    }
}

impl WalMedia for FileMedia {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        use std::io::Seek;
        self.file.seek(io::SeekFrom::Start(self.len))?;
        self.file.write_all(buf)?;
        self.len += buf.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.len = len;
        Ok(())
    }
}

/// Encodes one frame (header + payload) into a fresh buffer.
fn encode_frame(seq: u64, op: u8, parts: &[&[u8]]) -> Vec<u8> {
    let body_len: usize = parts.iter().map(|p| p.len()).sum();
    let payload_len = PAYLOAD_HEADER + body_len;
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload_len);
    frame.extend_from_slice(&(payload_len as u32).to_le_bytes());
    frame.extend_from_slice(&[0u8; 4]); // checksum patched below
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.push(op);
    for part in parts {
        frame.extend_from_slice(part);
    }
    let crc = crc32c(&frame[FRAME_HEADER..]);
    frame[4..8].copy_from_slice(&crc.to_le_bytes());
    frame
}

/// Parses the frames in `data`, returning `(records, clean_bytes)` where
/// `clean_bytes` is the offset of the first byte that is not part of an
/// intact frame (== `data.len()` for a clean log). Never panics: any
/// malformed frame simply ends the walk.
pub(crate) fn parse_frames(data: &[u8]) -> (Vec<WalRecord>, u64) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while let Some(header) = data.get(at..at + FRAME_HEADER) {
        let payload_len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if payload_len < PAYLOAD_HEADER {
            break; // frame cannot even hold its own sequence + op
        }
        let Some(payload) = data.get(at + FRAME_HEADER..at + FRAME_HEADER + payload_len) else {
            break; // file ends inside the payload: torn tail
        };
        if crc32c(payload) != crc {
            break; // torn or bit-rotted frame
        }
        let seq = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let body = &payload[PAYLOAD_HEADER..];
        let op = match payload[8] {
            WAL_OP_PUT => WalOp::Put(body.to_vec()),
            WAL_OP_APPEND => match body.get(..4) {
                Some(id) => WalOp::Append(
                    u32::from_le_bytes(id.try_into().expect("4 bytes")),
                    body[4..].to_vec(),
                ),
                None => break,
            },
            WAL_OP_DELETE => match body.try_into() {
                Ok(id) => WalOp::Delete(u32::from_le_bytes(id)),
                Err(_) => break,
            },
            _ => break, // unknown op: treat as corruption, stop here
        };
        records.push(WalRecord { seq, op });
        at += FRAME_HEADER + payload_len;
    }
    (records, at as u64)
}

/// The write-ahead log: append-only frames over a [`WalMedia`].
pub struct Wal {
    media: Box<dyn WalMedia>,
    policy: FsyncPolicy,
    last_sync: Instant,
    /// Appended frames not yet covered by a sync (Interval/Never policies).
    unsynced: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("len", &self.media.len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl Wal {
    /// Opens the log on `media`, recovering every intact frame. A torn or
    /// corrupt tail is truncated away (never a panic, never an error): the
    /// returned [`WalRecovery`] says what was dropped.
    pub fn open(
        mut media: Box<dyn WalMedia>,
        policy: FsyncPolicy,
        read_back: &[u8],
    ) -> Result<(Self, WalRecovery), StoreError> {
        let (records, clean) = parse_frames(read_back);
        let total = media.len();
        let recovery = if clean < total {
            media.truncate(clean)?;
            media.sync()?;
            WalRecovery {
                records,
                truncated_at: Some(clean),
                dropped_bytes: total - clean,
            }
        } else {
            WalRecovery {
                records,
                truncated_at: None,
                dropped_bytes: 0,
            }
        };
        Ok((
            Wal {
                media,
                policy,
                last_sync: Instant::now(),
                unsynced: 0,
            },
            recovery,
        ))
    }

    /// Opens the log file in `dir` (creating it if absent).
    pub fn open_dir(dir: &Path, policy: FsyncPolicy) -> Result<(Self, WalRecovery), StoreError> {
        let path = dir.join(WAL_FILE);
        let read_back = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::Io(e)),
        };
        let media = Box::new(FileMedia::open(&path)?);
        Self::open(media, policy, &read_back)
    }

    /// Appends one frame and applies the fsync policy. Returns `true` when
    /// the frame is on stable storage as the call returns (the "durable
    /// ack" bit surfaced to callers).
    fn append(&mut self, seq: u64, op: u8, parts: &[&[u8]]) -> Result<bool, StoreError> {
        let frame = encode_frame(seq, op, parts);
        self.media.append(&frame)?;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::Always => {
                self.media.sync()?;
                self.unsynced = 0;
                self.last_sync = Instant::now();
                Ok(true)
            }
            FsyncPolicy::Interval(every) => {
                if self.last_sync.elapsed() >= every {
                    self.media.sync()?;
                    self.unsynced = 0;
                    self.last_sync = Instant::now();
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
            FsyncPolicy::Never => Ok(false),
        }
    }

    /// Logs a PUT. Returns `true` when durable on return.
    pub fn log_put(&mut self, seq: u64, doc: &[u8]) -> Result<bool, StoreError> {
        self.append(seq, WAL_OP_PUT, &[doc])
    }

    /// Logs an APPEND of `bytes` to document `id`.
    pub fn log_append(&mut self, seq: u64, id: u32, bytes: &[u8]) -> Result<bool, StoreError> {
        self.append(seq, WAL_OP_APPEND, &[&id.to_le_bytes(), bytes])
    }

    /// Logs a DELETE of document `id`.
    pub fn log_delete(&mut self, seq: u64, id: u32) -> Result<bool, StoreError> {
        self.append(seq, WAL_OP_DELETE, &[&id.to_le_bytes()])
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.unsynced > 0 {
            self.media.sync()?;
            self.unsynced = 0;
            self.last_sync = Instant::now();
        }
        Ok(())
    }

    /// Current log length in bytes (the write backlog the shed bound acts
    /// on: everything here is durable work not yet folded into a sealed
    /// segment).
    pub fn len(&self) -> u64 {
        self.media.len()
    }

    /// True when the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.media.len() == 0
    }

    /// Frames appended since the last sync (0 means everything appended
    /// so far is on stable storage).
    pub(crate) fn unsynced(&self) -> u64 {
        self.unsynced
    }

    /// Discards every frame: called after a seal has published a manifest
    /// covering them. Synced, so a crash right after cannot resurrect
    /// already-sealed frames.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.media.truncate(0)?;
        self.media.sync()?;
        self.unsynced = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;

    fn reopen(dir: &TestDir) -> (Wal, WalRecovery) {
        Wal::open_dir(dir.path(), FsyncPolicy::Always).unwrap()
    }

    #[test]
    fn roundtrip_all_ops() {
        let dir = TestDir::new("wal-roundtrip");
        let (mut wal, rec) = reopen(&dir);
        assert!(rec.records.is_empty());
        assert!(wal.log_put(1, b"doc one").unwrap(), "Always acks durable");
        wal.log_append(2, 0, b" more").unwrap();
        wal.log_delete(3, 0).unwrap();
        wal.log_put(4, b"").unwrap(); // empty documents are legal
        drop(wal);
        let (_, rec) = reopen(&dir);
        assert_eq!(rec.truncated_at, None);
        assert_eq!(rec.records.len(), 4);
        assert_eq!(rec.records[0].seq, 1);
        assert_eq!(rec.records[0].op, WalOp::Put(b"doc one".to_vec()));
        assert_eq!(rec.records[1].op, WalOp::Append(0, b" more".to_vec()));
        assert_eq!(rec.records[2].op, WalOp::Delete(0));
        assert_eq!(rec.records[3].op, WalOp::Put(Vec::new()));
    }

    #[test]
    fn every_chop_point_recovers_the_intact_prefix() {
        let dir = TestDir::new("wal-chop");
        let (mut wal, _) = reopen(&dir);
        let docs: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8 + 1; 5 + i * 3]).collect();
        let mut boundaries = vec![0u64];
        for (i, d) in docs.iter().enumerate() {
            wal.log_put(i as u64 + 1, d).unwrap();
            boundaries.push(wal.len());
        }
        drop(wal);
        let full = std::fs::read(dir.path().join(WAL_FILE)).unwrap();
        for cut in 0..=full.len() {
            std::fs::write(dir.path().join(WAL_FILE), &full[..cut]).unwrap();
            let (wal, rec) = reopen(&dir);
            // The recovered frames are exactly the whole frames before the
            // cut — never a partial document, never a panic.
            let whole = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(rec.records.len(), whole, "cut at {cut}");
            for (i, r) in rec.records.iter().enumerate() {
                assert_eq!(r.op, WalOp::Put(docs[i].clone()), "cut at {cut}");
            }
            // The file itself was truncated back to the frame boundary,
            // so appending resumes from a clean state.
            assert_eq!(wal.len(), boundaries[whole], "cut at {cut}");
            if cut as u64 > boundaries[whole] {
                assert_eq!(rec.truncated_at, Some(boundaries[whole]));
            } else {
                assert_eq!(rec.truncated_at, None);
            }
        }
    }

    #[test]
    fn corrupt_middle_frame_keeps_only_the_prefix() {
        let dir = TestDir::new("wal-midflip");
        let (mut wal, _) = reopen(&dir);
        for i in 0..4 {
            wal.log_put(i + 1, format!("document {i}").as_bytes())
                .unwrap();
        }
        let frame2_start = {
            // Recompute the second frame's start from a fresh parse.
            drop(wal);
            let data = std::fs::read(dir.path().join(WAL_FILE)).unwrap();
            let (records, _) = parse_frames(&data);
            assert_eq!(records.len(), 4);
            let mut at = 0usize;
            for _ in 0..1 {
                let len = u32::from_le_bytes(data[at..at + 4].try_into().unwrap()) as usize;
                at += FRAME_HEADER + len;
            }
            at
        };
        let mut data = std::fs::read(dir.path().join(WAL_FILE)).unwrap();
        data[frame2_start + FRAME_HEADER + 9] ^= 0x10; // flip a body bit in frame 2
        std::fs::write(dir.path().join(WAL_FILE), &data).unwrap();
        let (_, rec) = reopen(&dir);
        // Only frame 1 survives: replay cannot trust anything past a bad
        // checksum (the documented truncate-and-continue semantics).
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.truncated_at, Some(frame2_start as u64));
        assert!(rec.dropped_bytes > 0);
    }

    #[test]
    fn reset_clears_and_survives_reopen() {
        let dir = TestDir::new("wal-reset");
        let (mut wal, _) = reopen(&dir);
        wal.log_put(1, b"sealed away").unwrap();
        assert!(!wal.is_empty());
        wal.reset().unwrap();
        assert!(wal.is_empty());
        wal.log_put(2, b"after the seal").unwrap();
        drop(wal);
        let (_, rec) = reopen(&dir);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].seq, 2);
    }

    #[test]
    fn fsync_policy_parse() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("interval:25"),
            Some(FsyncPolicy::Interval(Duration::from_millis(25)))
        );
        assert_eq!(FsyncPolicy::parse("interval:"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn interval_policy_syncs_lazily_never_not_at_all() {
        let dir = TestDir::new("wal-interval");
        let (mut wal, _) =
            Wal::open_dir(dir.path(), FsyncPolicy::Interval(Duration::from_secs(3600))).unwrap();
        // Interval far in the future: the first append inside the window
        // reports not-yet-durable.
        assert!(!wal.log_put(1, b"buffered").unwrap());
        wal.sync().unwrap();
        drop(wal);
        let (mut wal, _) = Wal::open_dir(dir.path(), FsyncPolicy::Never).unwrap();
        assert!(!wal.log_put(2, b"never synced").unwrap());
    }
}
