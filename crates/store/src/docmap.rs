//! The document map: byte extents of every document (§3.1 step 3).
//!
//! "Store a document map which provides the position on disk of each
//! encoded file. This component is common to all large scale file
//! compression systems." Offsets are monotone, so the map serializes as
//! delta-vbyte.

use crate::StoreError;
use rlz_codecs::vbyte;

/// Monotone offsets delimiting `n` documents (`n + 1` entries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocMap {
    offsets: Vec<u64>,
    /// Largest single extent, precomputed so serving frontends can report
    /// it without rescanning the map per STAT request.
    max_extent: u64,
}

impl DocMap {
    fn from_offsets(offsets: Vec<u64>) -> Self {
        let max_extent = offsets.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        DocMap {
            offsets,
            max_extent,
        }
    }

    /// Builds a map from document lengths.
    pub fn from_lens(lens: impl IntoIterator<Item = usize>) -> Self {
        let mut offsets = vec![0u64];
        let mut at = 0u64;
        for len in lens {
            at += len as u64;
            offsets.push(at);
        }
        DocMap::from_offsets(offsets)
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total payload bytes covered.
    pub fn total_bytes(&self) -> u64 {
        *self.offsets.last().expect("at least one offset")
    }

    /// `(offset, len)` of document `id`.
    pub fn extent(&self, id: usize) -> Option<(u64, usize)> {
        let start = *self.offsets.get(id)?;
        let end = *self.offsets.get(id + 1)?;
        Some((start, (end - start) as usize))
    }

    /// Length of the largest single extent (0 for an empty map). Extents
    /// are deltas of the serialized offsets, so this is the longest *stored
    /// record* — the raw document for stores keeping documents verbatim,
    /// the encoded record for `RlzStore`.
    pub fn max_extent_len(&self) -> u64 {
        self.max_extent
    }

    /// Serializes as `vbyte(n+1)` then delta-vbyte offsets.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.offsets.len() * 2 + 8);
        vbyte::write_u64(self.offsets.len() as u64, &mut out);
        let mut prev = 0u64;
        for &o in &self.offsets {
            vbyte::write_u64(o - prev, &mut out);
            prev = o;
        }
        out
    }

    /// Exact size of [`serialize`](Self::serialize)'s output, computed
    /// without materializing it — used for footprint accounting
    /// (`RlzStore::total_stored_bytes`), which previously re-serialized the
    /// whole map just to measure it.
    pub fn serialized_len(&self) -> usize {
        let mut n = vbyte::encoded_len_u64(self.offsets.len() as u64);
        let mut prev = 0u64;
        for &o in &self.offsets {
            n += vbyte::encoded_len_u64(o - prev);
            prev = o;
        }
        n
    }

    /// Parses a serialized map.
    pub fn deserialize(data: &[u8]) -> Result<Self, StoreError> {
        let mut pos = 0usize;
        let n = vbyte::read_u64(data, &mut pos)? as usize;
        if n == 0 {
            return Err(StoreError::corrupt("document map has no offsets"));
        }
        // Every delta costs at least one byte, so an offset count larger
        // than the input is corrupt; reject it before it sizes the
        // allocation below (an untrusted vbyte can claim up to 2^64).
        if n > data.len() {
            return Err(StoreError::corrupt(
                "document map offset count exceeds input",
            ));
        }
        let mut offsets = Vec::with_capacity(n);
        let mut at = 0u64;
        for _ in 0..n {
            at = at
                .checked_add(vbyte::read_u64(data, &mut pos)?)
                .ok_or_else(|| StoreError::corrupt("document map offset overflow"))?;
            offsets.push(at);
        }
        Ok(DocMap::from_offsets(offsets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents_from_lens() {
        let m = DocMap::from_lens([10usize, 0, 5]);
        assert_eq!(m.num_docs(), 3);
        assert_eq!(m.total_bytes(), 15);
        assert_eq!(m.extent(0), Some((0, 10)));
        assert_eq!(m.extent(1), Some((10, 0)));
        assert_eq!(m.extent(2), Some((10, 5)));
        assert_eq!(m.extent(3), None);
    }

    #[test]
    fn max_extent_tracks_longest_record() {
        assert_eq!(DocMap::from_lens(std::iter::empty()).max_extent_len(), 0);
        assert_eq!(DocMap::from_lens([0usize, 0]).max_extent_len(), 0);
        let m = DocMap::from_lens([10usize, 0, 5, 42, 7]);
        assert_eq!(m.max_extent_len(), 42);
        let round = DocMap::deserialize(&m.serialize()).unwrap();
        assert_eq!(round.max_extent_len(), 42);
    }

    #[test]
    fn serialization_roundtrip() {
        let m = DocMap::from_lens((0..1000usize).map(|i| i * 7 % 50_000));
        let bytes = m.serialize();
        assert_eq!(DocMap::deserialize(&bytes).unwrap(), m);
    }

    #[test]
    fn serialized_len_matches_serialize() {
        for lens in [
            vec![],
            vec![0usize, 0, 0],
            vec![1, 127, 128, 16_383, 16_384, 1 << 20, (1 << 35)],
            (0..500usize).map(|i| i * 13 % 9_000).collect(),
        ] {
            let m = DocMap::from_lens(lens);
            assert_eq!(m.serialized_len(), m.serialize().len());
        }
    }

    #[test]
    fn empty_collection() {
        let m = DocMap::from_lens(std::iter::empty());
        assert_eq!(m.num_docs(), 0);
        assert_eq!(m.total_bytes(), 0);
        let bytes = m.serialize();
        assert_eq!(DocMap::deserialize(&bytes).unwrap(), m);
    }

    #[test]
    fn corrupt_input_is_an_error() {
        assert!(DocMap::deserialize(&[]).is_err());
        assert!(DocMap::deserialize(&[0]).is_err()); // zero offsets
        assert!(DocMap::deserialize(&[5, 1]).is_err()); // truncated
    }
}
