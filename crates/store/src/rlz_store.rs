//! The RLZ document store (§3.1): a memory-resident dictionary, one encoded
//! record per document, and a document map for random access.
//!
//! Retrieval = document-map lookup → one positioned read → factor decode
//! against the in-memory dictionary. No per-request model rebuilding, no
//! neighbours decompressed — the two costs that make blocked baselines slow.
//!
//! The dictionary and document map are behind `Arc`s: cloning an open
//! `RlzStore` is a cheap per-thread handle onto the same resident state,
//! and every read uses positional I/O, so one store serves many threads.

use crate::backend::{FileBackend, MemBackend, StorageBackend};
use crate::docmap::DocMap;
use crate::{read_file, DocStore, StoreError};
use rlz_core::{Dictionary, PairCoding, RlzCompressor};
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

const DICT_FILE: &str = "dict.bin";
const PAYLOAD_FILE: &str = "payload.bin";
const MAP_FILE: &str = "docmap.bin";
const META_FILE: &str = "meta.bin";

/// Builds RLZ stores.
#[derive(Debug)]
pub struct RlzStoreBuilder {
    compressor: RlzCompressor,
    threads: usize,
}

impl RlzStoreBuilder {
    /// Creates a builder over a prepared dictionary.
    pub fn new(dict: Dictionary, coding: PairCoding) -> Self {
        RlzStoreBuilder {
            compressor: RlzCompressor::new(dict, coding),
            threads: 1,
        }
    }

    /// Compresses documents on `threads` OS threads (factorizations are
    /// independent; the paper stresses compression-time scalability).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Access to the underlying compressor (e.g. for statistics).
    pub fn compressor(&self) -> &RlzCompressor {
        &self.compressor
    }

    /// Builds the store in `dir`.
    pub fn build(&self, dir: &Path, docs: &[&[u8]]) -> Result<(), StoreError> {
        std::fs::create_dir_all(dir)?;
        let encoded = crate::parallel_map(docs, self.threads, |doc| self.compressor.compress(doc));
        let mut payload = std::io::BufWriter::new(File::create(dir.join(PAYLOAD_FILE))?);
        let mut lens = Vec::with_capacity(encoded.len());
        for e in &encoded {
            payload.write_all(e)?;
            lens.push(e.len());
        }
        payload.flush()?;
        std::fs::write(dir.join(MAP_FILE), DocMap::from_lens(lens).serialize())?;
        std::fs::write(dir.join(DICT_FILE), self.compressor.dict().bytes())?;
        std::fs::write(
            dir.join(META_FILE),
            self.compressor.coding().name().as_bytes(),
        )?;
        Ok(())
    }
}

/// RLZ store reader. Holds the dictionary bytes in memory; decoding needs
/// no suffix array, so opening is cheap. Clones share the dictionary,
/// document map and payload backend.
#[derive(Debug, Clone)]
pub struct RlzStore {
    payload: Arc<dyn StorageBackend>,
    dict_bytes: Arc<Vec<u8>>,
    coding: PairCoding,
    map: Arc<DocMap>,
    stored_bytes: u64,
    map_bytes: u64,
}

impl RlzStore {
    /// Opens a previously built store; encoded records are read from disk
    /// per request (the paper's configuration).
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Self::with_backend(dir, |p| Ok(Arc::new(FileBackend::open(p)?)))
    }

    /// Opens a previously built store with the encoded payload fully
    /// resident in memory alongside the dictionary: retrieval does no disk
    /// I/O at all.
    pub fn open_resident(dir: &Path) -> Result<Self, StoreError> {
        Self::with_backend(dir, |p| Ok(Arc::new(MemBackend::load(p)?)))
    }

    fn with_backend(
        dir: &Path,
        make: impl FnOnce(&Path) -> Result<Arc<dyn StorageBackend>, StoreError>,
    ) -> Result<Self, StoreError> {
        let meta = read_file(&dir.join(META_FILE))?;
        let name = std::str::from_utf8(&meta)
            .map_err(|_| StoreError::Corrupt("pair-coding name is not UTF-8"))?;
        let coding = PairCoding::parse(name)
            .map_err(|_| StoreError::Corrupt("unknown pair coding in metadata"))?;
        let dict_bytes = Arc::new(read_file(&dir.join(DICT_FILE))?);
        let map = Arc::new(DocMap::deserialize(&read_file(&dir.join(MAP_FILE))?)?);
        let payload = make(&dir.join(PAYLOAD_FILE))?;
        let stored_bytes = payload.len();
        let map_bytes = map.serialized_len() as u64;
        Ok(RlzStore {
            payload,
            dict_bytes,
            coding,
            map,
            stored_bytes,
            map_bytes,
        })
    }

    /// Compressed payload bytes (excluding dictionary).
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Dictionary size in bytes.
    pub fn dict_bytes(&self) -> usize {
        self.dict_bytes.len()
    }

    /// Total footprint: payload + dictionary + document map (the fair
    /// "Enc. (%)" accounting used by the benchmark tables).
    pub fn total_stored_bytes(&self) -> u64 {
        self.stored_bytes + self.dict_bytes.len() as u64 + self.map_bytes
    }

    /// The pair coding this store was built with.
    pub fn coding(&self) -> PairCoding {
        self.coding
    }
}

impl DocStore for RlzStore {
    fn num_docs(&self) -> usize {
        self.map.num_docs()
    }

    fn stats(&self) -> crate::StoreStats {
        crate::StoreStats {
            num_docs: self.map.num_docs() as u64,
            payload_bytes: self.stored_bytes,
            // Encoded records: the map delimits the compressed payload.
            max_record_len: self.map.max_extent_len(),
        }
    }

    fn record_offset(&self, id: usize) -> Option<u64> {
        self.map.extent(id).map(|(offset, _)| offset)
    }

    fn get_into(&self, id: usize, out: &mut Vec<u8>) -> Result<(), StoreError> {
        let (offset, len) = self.map.extent(id).ok_or(StoreError::DocOutOfRange(id))?;
        let start = out.len();
        // Fused decode against the thread's scratch buffers: a warm get
        // performs zero heap allocations (asserted by the counting-
        // allocator test in `tests/alloc_counting.rs`).
        let result = crate::with_scratch(len, |enc| {
            self.payload.read_exact_at(enc, offset)?;
            crate::with_decode_scratch(|scratch| {
                rlz_core::coding::decode_and_expand_scratch(
                    enc,
                    self.coding,
                    &self.dict_bytes,
                    out,
                    scratch,
                )
            })?;
            Ok(())
        });
        // The fused path validates before writing, but keep the truncate as
        // defence in depth: a failing get must never leave partial bytes
        // behind in a reused buffer.
        if result.is_err() {
            out.truncate(start);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;
    use rlz_core::SampleStrategy;

    fn collection() -> Vec<Vec<u8>> {
        (0..200)
            .map(|i| {
                format!(
                    "<html><nav>home about contact</nav><p>page {i} body {}</p></html>",
                    "common phrase ".repeat(i % 23)
                )
                .into_bytes()
            })
            .collect()
    }

    fn build_and_check(coding: PairCoding) {
        let docs = collection();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, 2048, 256, SampleStrategy::Evenly);
        let dir = TestDir::new(&format!("rlzstore-{}", coding.name()));
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, coding)
            .threads(4)
            .build(dir.path(), &slices)
            .unwrap();
        for store in [
            RlzStore::open(dir.path()).unwrap(),
            RlzStore::open_resident(dir.path()).unwrap(),
        ] {
            assert_eq!(store.num_docs(), docs.len());
            assert_eq!(store.coding(), coding);
            for (i, doc) in docs.iter().enumerate() {
                assert_eq!(&store.get(i).unwrap(), doc, "doc {i}");
            }
        }
    }

    #[test]
    fn roundtrip_all_paper_codings() {
        for coding in PairCoding::PAPER_SET {
            build_and_check(coding);
        }
    }

    #[test]
    fn compresses_redundant_collections() {
        let docs = collection();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, all.len() / 50, 512, SampleStrategy::Evenly);
        let dir = TestDir::new("rlzstore-ratio");
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, PairCoding::ZZ)
            .threads(4)
            .build(dir.path(), &slices)
            .unwrap();
        let store = RlzStore::open(dir.path()).unwrap();
        let ratio = store.total_stored_bytes() as f64 / all.len() as f64;
        assert!(ratio < 0.5, "ratio {ratio:.3}");
    }

    #[test]
    fn total_stored_bytes_counts_the_map_exactly() {
        let docs = collection();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, 2048, 256, SampleStrategy::Evenly);
        let dir = TestDir::new("rlzstore-footprint");
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, PairCoding::UV)
            .build(dir.path(), &slices)
            .unwrap();
        let store = RlzStore::open(dir.path()).unwrap();
        let map_file = std::fs::metadata(dir.path().join(super::MAP_FILE))
            .unwrap()
            .len();
        assert_eq!(
            store.total_stored_bytes(),
            store.stored_bytes() + store.dict_bytes() as u64 + map_file
        );
    }

    #[test]
    fn empty_docs_and_empty_store() {
        let dict = Dictionary::from_bytes(b"seed".to_vec());
        let dir = TestDir::new("rlzstore-empty");
        RlzStoreBuilder::new(dict, PairCoding::UV)
            .build(dir.path(), &[b"".as_slice(), b"x", b""])
            .unwrap();
        let store = RlzStore::open(dir.path()).unwrap();
        assert_eq!(store.get(0).unwrap(), b"");
        assert_eq!(store.get(1).unwrap(), b"x");
        assert_eq!(store.get(2).unwrap(), b"");
        assert!(matches!(store.get(3), Err(StoreError::DocOutOfRange(3))));
    }

    #[test]
    fn get_batch_matches_sequential_gets() {
        let docs = collection();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, 2048, 256, SampleStrategy::Evenly);
        let dir = TestDir::new("rlzstore-batch");
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, PairCoding::ZV)
            .threads(4)
            .build(dir.path(), &slices)
            .unwrap();
        let store = RlzStore::open(dir.path()).unwrap();
        let ids: Vec<u32> = (0..docs.len() as u32).rev().collect();
        for threads in [1, 4] {
            let batch = store.get_batch(&ids, threads).unwrap();
            assert_eq!(batch.len(), ids.len());
            for (got, &id) in batch.iter().zip(&ids) {
                assert_eq!(got, &docs[id as usize], "doc {id} at {threads} threads");
            }
        }
        // An out-of-range ID anywhere in the batch surfaces as an error.
        assert!(store.get_batch(&[0, 9_999], 2).is_err());
    }

    #[test]
    fn decode_error_leaves_out_unchanged() {
        let docs = collection();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, 2048, 256, SampleStrategy::Evenly);
        let dir = TestDir::new("rlzstore-partial");
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, PairCoding::UV)
            .build(dir.path(), &slices)
            .unwrap();
        // Truncate the payload so later records read past EOF or decode
        // mid-record; any failing get must not leave partial bytes in a
        // reused output buffer.
        let payload = dir.path().join(super::PAYLOAD_FILE);
        let bytes = std::fs::read(&payload).unwrap();
        std::fs::write(&payload, &bytes[..bytes.len() / 3]).unwrap();
        let store = RlzStore::open(dir.path()).unwrap();
        let mut out = b"keep".to_vec();
        let mut failures = 0;
        for i in 0..docs.len() {
            out.truncate(4);
            if store.get_into(i, &mut out).is_err() {
                failures += 1;
                assert_eq!(out, b"keep", "doc {i} left partial bytes on error");
            }
        }
        assert!(failures > 0, "truncation should make some gets fail");
    }

    #[test]
    fn open_rejects_corrupt_meta() {
        let dict = Dictionary::from_bytes(b"seed".to_vec());
        let dir = TestDir::new("rlzstore-badmeta");
        RlzStoreBuilder::new(dict, PairCoding::UV)
            .build(dir.path(), &[b"doc".as_slice()])
            .unwrap();
        std::fs::write(dir.path().join(super::META_FILE), b"??").unwrap();
        assert!(RlzStore::open(dir.path()).is_err());
    }
}
