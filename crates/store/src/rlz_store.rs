//! The RLZ document store (§3.1): a memory-resident dictionary, one encoded
//! record per document, and a document map for random access.
//!
//! Retrieval = document-map lookup → one positioned read → factor decode
//! against the in-memory dictionary. No per-request model rebuilding, no
//! neighbours decompressed — the two costs that make blocked baselines slow.

use crate::docmap::DocMap;
use crate::{read_file, DocStore, StoreError};
use rlz_core::{Dictionary, PairCoding, RlzCompressor};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

const DICT_FILE: &str = "dict.bin";
const PAYLOAD_FILE: &str = "payload.bin";
const MAP_FILE: &str = "docmap.bin";
const META_FILE: &str = "meta.bin";

/// Builds RLZ stores.
#[derive(Debug)]
pub struct RlzStoreBuilder {
    compressor: RlzCompressor,
    threads: usize,
}

impl RlzStoreBuilder {
    /// Creates a builder over a prepared dictionary.
    pub fn new(dict: Dictionary, coding: PairCoding) -> Self {
        RlzStoreBuilder {
            compressor: RlzCompressor::new(dict, coding),
            threads: 1,
        }
    }

    /// Compresses documents on `threads` OS threads (factorizations are
    /// independent; the paper stresses compression-time scalability).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Access to the underlying compressor (e.g. for statistics).
    pub fn compressor(&self) -> &RlzCompressor {
        &self.compressor
    }

    /// Builds the store in `dir`.
    pub fn build(&self, dir: &Path, docs: &[&[u8]]) -> Result<(), StoreError> {
        std::fs::create_dir_all(dir)?;
        let encoded =
            crate::blocked::parallel_map(docs, self.threads, |doc| self.compressor.compress(doc));
        let mut payload = std::io::BufWriter::new(File::create(dir.join(PAYLOAD_FILE))?);
        let mut lens = Vec::with_capacity(encoded.len());
        for e in &encoded {
            payload.write_all(e)?;
            lens.push(e.len());
        }
        payload.flush()?;
        std::fs::write(dir.join(MAP_FILE), DocMap::from_lens(lens).serialize())?;
        std::fs::write(dir.join(DICT_FILE), self.compressor.dict().bytes())?;
        std::fs::write(dir.join(META_FILE), self.compressor.coding().name().as_bytes())?;
        Ok(())
    }
}

/// RLZ store reader. Holds the dictionary bytes in memory; decoding needs
/// no suffix array, so opening is cheap.
#[derive(Debug)]
pub struct RlzStore {
    file: File,
    dict_bytes: Vec<u8>,
    coding: PairCoding,
    map: DocMap,
    stored_bytes: u64,
}

impl RlzStore {
    /// Opens a previously built store.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let meta = read_file(&dir.join(META_FILE))?;
        let name = std::str::from_utf8(&meta)
            .map_err(|_| StoreError::Corrupt("pair-coding name is not UTF-8"))?;
        let coding = PairCoding::parse(name)
            .ok_or(StoreError::Corrupt("unknown pair coding in metadata"))?;
        let dict_bytes = read_file(&dir.join(DICT_FILE))?;
        let map = DocMap::deserialize(&read_file(&dir.join(MAP_FILE))?)?;
        let file = File::open(dir.join(PAYLOAD_FILE))?;
        let stored_bytes = file.metadata()?.len();
        Ok(RlzStore {
            file,
            dict_bytes,
            coding,
            map,
            stored_bytes,
        })
    }

    /// Compressed payload bytes (excluding dictionary).
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Dictionary size in bytes.
    pub fn dict_bytes(&self) -> usize {
        self.dict_bytes.len()
    }

    /// Total footprint: payload + dictionary + document map (the fair
    /// "Enc. (%)" accounting used by the benchmark tables).
    pub fn total_stored_bytes(&self) -> u64 {
        self.stored_bytes + self.dict_bytes.len() as u64 + self.map.serialize().len() as u64
    }

    /// The pair coding this store was built with.
    pub fn coding(&self) -> PairCoding {
        self.coding
    }
}

impl DocStore for RlzStore {
    fn num_docs(&self) -> usize {
        self.map.num_docs()
    }

    fn get_into(&mut self, id: usize, out: &mut Vec<u8>) -> Result<(), StoreError> {
        let (offset, len) = self
            .map
            .extent(id)
            .ok_or(StoreError::DocOutOfRange(id))?;
        let mut enc = vec![0u8; len];
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(&mut enc)?;
        rlz_core::coding::decode_and_expand(&enc, self.coding, &self.dict_bytes, out)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;
    use rlz_core::SampleStrategy;

    fn collection() -> Vec<Vec<u8>> {
        (0..200)
            .map(|i| {
                format!(
                    "<html><nav>home about contact</nav><p>page {i} body {}</p></html>",
                    "common phrase ".repeat(i % 23)
                )
                .into_bytes()
            })
            .collect()
    }

    fn build_and_check(coding: PairCoding) {
        let docs = collection();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, 2048, 256, SampleStrategy::Evenly);
        let dir = TestDir::new(&format!("rlzstore-{}", coding.name()));
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, coding)
            .threads(4)
            .build(dir.path(), &slices)
            .unwrap();
        let mut store = RlzStore::open(dir.path()).unwrap();
        assert_eq!(store.num_docs(), docs.len());
        assert_eq!(store.coding(), coding);
        for (i, doc) in docs.iter().enumerate() {
            assert_eq!(&store.get(i).unwrap(), doc, "doc {i}");
        }
    }

    #[test]
    fn roundtrip_all_paper_codings() {
        for coding in PairCoding::PAPER_SET {
            build_and_check(coding);
        }
    }

    #[test]
    fn compresses_redundant_collections() {
        let docs = collection();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, all.len() / 50, 512, SampleStrategy::Evenly);
        let dir = TestDir::new("rlzstore-ratio");
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, PairCoding::ZZ)
            .threads(4)
            .build(dir.path(), &slices)
            .unwrap();
        let store = RlzStore::open(dir.path()).unwrap();
        let ratio = store.total_stored_bytes() as f64 / all.len() as f64;
        assert!(ratio < 0.5, "ratio {ratio:.3}");
    }

    #[test]
    fn empty_docs_and_empty_store() {
        let dict = Dictionary::from_bytes(b"seed".to_vec());
        let dir = TestDir::new("rlzstore-empty");
        RlzStoreBuilder::new(dict, PairCoding::UV)
            .build(dir.path(), &[b"".as_slice(), b"x", b""])
            .unwrap();
        let mut store = RlzStore::open(dir.path()).unwrap();
        assert_eq!(store.get(0).unwrap(), b"");
        assert_eq!(store.get(1).unwrap(), b"x");
        assert_eq!(store.get(2).unwrap(), b"");
        assert!(matches!(store.get(3), Err(StoreError::DocOutOfRange(3))));
    }

    #[test]
    fn open_rejects_corrupt_meta() {
        let dict = Dictionary::from_bytes(b"seed".to_vec());
        let dir = TestDir::new("rlzstore-badmeta");
        RlzStoreBuilder::new(dict, PairCoding::UV)
            .build(dir.path(), &[b"doc".as_slice()])
            .unwrap();
        std::fs::write(dir.path().join(super::META_FILE), b"??").unwrap();
        assert!(RlzStore::open(dir.path()).is_err());
    }
}
