//! The RLZ document store (§3.1): a memory-resident dictionary, one encoded
//! record per document, and a document map for random access.
//!
//! Retrieval = document-map lookup → one positioned read → factor decode
//! against the in-memory dictionary. No per-request model rebuilding, no
//! neighbours decompressed — the two costs that make blocked baselines slow.
//!
//! The dictionary and document map are behind `Arc`s: cloning an open
//! `RlzStore` is a cheap per-thread handle onto the same resident state,
//! and every read uses positional I/O, so one store serves many threads.

use crate::backend::{FileBackend, MemBackend, StorageBackend};
use crate::docmap::DocMap;
use crate::verify::{encode_sums, load_quarantine, load_sums, BadUnit, ScrubReport, SUMS_FILE};
use crate::{read_file, DocStore, Integrity, StoreError};
use rlz_codecs::hash::crc32c;
use rlz_core::{Dictionary, PairCoding, RlzCompressor};
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

const DICT_FILE: &str = "dict.bin";
const PAYLOAD_FILE: &str = "payload.bin";
const MAP_FILE: &str = "docmap.bin";
const META_FILE: &str = "meta.bin";

/// Leads the checksummed metadata layout: `[0xF6, integrity tag, coding
/// name…]`. Legacy metadata is the bare ASCII coding name, whose first
/// byte can never be `0xF6`, so the two layouts stay distinguishable.
const META_VERSION_CHECKSUMMED: u8 = 0xF6;

/// Builds RLZ stores.
#[derive(Debug)]
pub struct RlzStoreBuilder {
    compressor: RlzCompressor,
    threads: usize,
}

impl RlzStoreBuilder {
    /// Creates a builder over a prepared dictionary.
    pub fn new(dict: Dictionary, coding: PairCoding) -> Self {
        RlzStoreBuilder {
            compressor: RlzCompressor::new(dict, coding),
            threads: 1,
        }
    }

    /// Compresses documents on `threads` OS threads (factorizations are
    /// independent; the paper stresses compression-time scalability).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Access to the underlying compressor (e.g. for statistics).
    pub fn compressor(&self) -> &RlzCompressor {
        &self.compressor
    }

    /// Builds the store in `dir`.
    pub fn build(&self, dir: &Path, docs: &[&[u8]]) -> Result<(), StoreError> {
        let encoded = crate::parallel_map(docs, self.threads, |doc| self.compressor.compress(doc));
        let mut writer = RlzWriter::create(
            dir,
            self.compressor.dict().bytes(),
            self.compressor.coding(),
        )?;
        for e in &encoded {
            writer.append_encoded(e)?;
        }
        writer.finish()
    }
}

/// Streamed builder for [`RlzStore`]: pre-encoded records are appended one
/// at a time and land on disk immediately, so peak memory is one record
/// plus the per-document length/checksum tables — never the corpus. The
/// chunked build pipeline's writer thread drives this; the batch
/// [`RlzStoreBuilder::build`] emits through the same writer, so the two
/// produce byte-identical stores by construction.
///
/// Callers compress documents themselves (via
/// [`RlzCompressor::compress`] or the scratch-reusing
/// [`RlzCompressor::compress_with`]) and hand the encoded record to
/// [`append_encoded`](Self::append_encoded) — that split is what lets a
/// worker pool own the CPU-heavy factorization while one writer owns the
/// files.
#[derive(Debug)]
pub struct RlzWriter {
    payload: std::io::BufWriter<File>,
    dir: std::path::PathBuf,
    coding: PairCoding,
    lens: Vec<usize>,
    sums: Vec<u32>,
}

impl RlzWriter {
    /// Creates `dir`, writes the dictionary file, and opens the payload for
    /// streaming appends.
    pub fn create(dir: &Path, dict_bytes: &[u8], coding: PairCoding) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(DICT_FILE), dict_bytes)?;
        Ok(RlzWriter {
            payload: std::io::BufWriter::new(File::create(dir.join(PAYLOAD_FILE))?),
            dir: dir.to_path_buf(),
            coding,
            lens: Vec::new(),
            sums: Vec::new(),
        })
    }

    /// Appends one pre-encoded record (the next document, in order).
    pub fn append_encoded(&mut self, record: &[u8]) -> Result<(), StoreError> {
        self.payload.write_all(record)?;
        self.lens.push(record.len());
        self.sums.push(crc32c(record));
        Ok(())
    }

    /// Flushes the payload and writes the docmap, checksum sidecar and
    /// metadata, completing the store.
    pub fn finish(mut self) -> Result<(), StoreError> {
        self.payload.flush()?;
        std::fs::write(
            self.dir.join(MAP_FILE),
            DocMap::from_lens(self.lens).serialize(),
        )?;
        std::fs::write(self.dir.join(SUMS_FILE), encode_sums(&self.sums))?;
        let mut meta = vec![META_VERSION_CHECKSUMMED, Integrity::Crc32c.tag()];
        meta.extend_from_slice(self.coding.name().as_bytes());
        std::fs::write(self.dir.join(META_FILE), meta)?;
        Ok(())
    }
}

/// RLZ store reader. Holds the dictionary bytes in memory; decoding needs
/// no suffix array, so opening is cheap. Clones share the dictionary,
/// document map and payload backend.
#[derive(Debug, Clone)]
pub struct RlzStore {
    payload: Arc<dyn StorageBackend>,
    dict_bytes: Arc<Vec<u8>>,
    coding: PairCoding,
    map: Arc<DocMap>,
    stored_bytes: u64,
    map_bytes: u64,
    /// Per-record CRC32C over the *encoded* bytes, verified on every read;
    /// `None` for legacy stores without a checksum sidecar.
    sums: Option<Arc<Vec<u32>>>,
    /// Sorted doc ids quarantined by `rlz-verify`.
    quarantine: Arc<Vec<u32>>,
}

impl RlzStore {
    /// Opens a previously built store; encoded records are read from disk
    /// per request (the paper's configuration).
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Self::with_backend_fn(dir, |p| Ok(Arc::new(FileBackend::open(p)?)))
    }

    /// Opens a previously built store with the encoded payload fully
    /// resident in memory alongside the dictionary: retrieval does no disk
    /// I/O at all.
    pub fn open_resident(dir: &Path) -> Result<Self, StoreError> {
        Self::with_backend_fn(dir, |p| Ok(Arc::new(MemBackend::load(p)?)))
    }

    /// Opens a previously built store over a caller-supplied backend
    /// (fault-injection harnesses, custom storage layers).
    pub fn open_with_backend(
        dir: &Path,
        payload: Arc<dyn StorageBackend>,
    ) -> Result<Self, StoreError> {
        Self::with_backend_fn(dir, |_| Ok(payload))
    }

    fn with_backend_fn(
        dir: &Path,
        make: impl FnOnce(&Path) -> Result<Arc<dyn StorageBackend>, StoreError>,
    ) -> Result<Self, StoreError> {
        let meta = read_file(&dir.join(META_FILE))?;
        // Checksummed layout: version byte + integrity tag + coding name.
        // Legacy layout: the bare coding name.
        let (integrity, name_bytes) = match meta.split_first() {
            Some((&META_VERSION_CHECKSUMMED, rest)) => {
                let (&tag, name) = rest
                    .split_first()
                    .ok_or_else(|| StoreError::corrupt("truncated RLZ metadata"))?;
                let integrity = Integrity::from_tag(tag)
                    .ok_or_else(|| StoreError::corrupt("unknown integrity tag in metadata"))?;
                (integrity, name)
            }
            _ => (Integrity::None, &meta[..]),
        };
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| StoreError::corrupt("pair-coding name is not UTF-8"))?;
        let coding = PairCoding::parse(name)
            .map_err(|_| StoreError::corrupt("unknown pair coding in metadata"))?;
        let dict_bytes = Arc::new(read_file(&dir.join(DICT_FILE))?);
        let map = Arc::new(DocMap::deserialize(&read_file(&dir.join(MAP_FILE))?)?);
        let sums = match integrity {
            Integrity::Crc32c => match load_sums(dir, map.num_docs())? {
                Some(sums) => Some(Arc::new(sums)),
                None => {
                    return Err(StoreError::corrupt(
                        "metadata promises checksums but sums sidecar is missing",
                    ))
                }
            },
            Integrity::None => None,
        };
        let quarantine = Arc::new(load_quarantine(dir)?);
        let payload = make(&dir.join(PAYLOAD_FILE))?;
        let stored_bytes = payload.len();
        let map_bytes = map.serialized_len() as u64;
        Ok(RlzStore {
            payload,
            dict_bytes,
            coding,
            map,
            stored_bytes,
            map_bytes,
            sums,
            quarantine,
        })
    }

    /// Compressed payload bytes (excluding dictionary).
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Dictionary size in bytes.
    pub fn dict_bytes(&self) -> usize {
        self.dict_bytes.len()
    }

    /// Total footprint: payload + dictionary + document map (the fair
    /// "Enc. (%)" accounting used by the benchmark tables).
    pub fn total_stored_bytes(&self) -> u64 {
        self.stored_bytes + self.dict_bytes.len() as u64 + self.map_bytes
    }

    /// The pair coding this store was built with.
    pub fn coding(&self) -> PairCoding {
        self.coding
    }

    /// Whether record reads are CRC-verified.
    pub fn integrity(&self) -> Integrity {
        if self.sums.is_some() {
            Integrity::Crc32c
        } else {
            Integrity::None
        }
    }

    /// Walks every record, verifying its checksum (checksummed stores) or
    /// attempting a full decode (legacy stores), and reports the unreadable
    /// doc ids. Never panics on corrupt input; used by `rlz-verify`.
    pub fn scrub(&self) -> ScrubReport {
        let mut report = ScrubReport::new(self.integrity());
        let mut decoded = Vec::new();
        for id in 0..self.map.num_docs() {
            let Some((offset, len)) = self.map.extent(id) else {
                continue;
            };
            report.units += 1;
            report.bytes += len as u64;
            let result = match &self.sums {
                // Checksum scrub: read + CRC, no decode — this is what
                // makes scrubbing run at I/O speed rather than decode
                // speed.
                Some(sums) => crate::with_scratch(len, |enc| {
                    self.payload.read_exact_at(enc, offset)?;
                    if crc32c(enc) != sums[id] {
                        return Err(StoreError::Corrupt {
                            what: "record checksum mismatch",
                            block: None,
                            doc_id: Some(id as u32),
                        });
                    }
                    Ok(())
                }),
                None => {
                    decoded.clear();
                    self.get_into(id, &mut decoded)
                }
            };
            if let Err(error) = result {
                report.bad.push(BadUnit {
                    block: None,
                    doc_ids: vec![id as u32],
                    error,
                });
            }
        }
        report
    }
}

impl DocStore for RlzStore {
    fn num_docs(&self) -> usize {
        self.map.num_docs()
    }

    fn quarantined_docs(&self) -> u64 {
        self.quarantine.len() as u64
    }

    fn stats(&self) -> crate::StoreStats {
        crate::StoreStats {
            num_docs: self.map.num_docs() as u64,
            payload_bytes: self.stored_bytes,
            // Encoded records: the map delimits the compressed payload.
            max_record_len: self.map.max_extent_len(),
            integrity: self.integrity(),
        }
    }

    fn record_offset(&self, id: usize) -> Option<u64> {
        self.map.extent(id).map(|(offset, _)| offset)
    }

    fn get_into(&self, id: usize, out: &mut Vec<u8>) -> Result<(), StoreError> {
        let (offset, len) = self.map.extent(id).ok_or(StoreError::DocOutOfRange(id))?;
        if id <= u32::MAX as usize && self.quarantine.binary_search(&(id as u32)).is_ok() {
            return Err(StoreError::Corrupt {
                what: "document quarantined by rlz-verify",
                block: None,
                doc_id: Some(id as u32),
            });
        }
        let start = out.len();
        // Fused decode against the thread's scratch buffers: a warm get
        // performs zero heap allocations (asserted by the counting-
        // allocator test in `tests/alloc_counting.rs`) — the checksum is
        // verified over the encoded bytes already sitting in the scratch,
        // before the decoder sees them.
        let result = crate::with_scratch(len, |enc| {
            self.payload.read_exact_at(enc, offset)?;
            if let Some(sums) = &self.sums {
                if crc32c(enc) != sums[id] {
                    return Err(StoreError::Corrupt {
                        what: "record checksum mismatch",
                        block: None,
                        doc_id: Some(id as u32),
                    });
                }
            }
            crate::with_decode_scratch(|scratch| {
                rlz_core::coding::decode_and_expand_scratch(
                    enc,
                    self.coding,
                    &self.dict_bytes,
                    out,
                    scratch,
                )
            })?;
            Ok(())
        });
        // The fused path validates before writing, but keep the truncate as
        // defence in depth: a failing get must never leave partial bytes
        // behind in a reused buffer.
        if result.is_err() {
            out.truncate(start);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;
    use rlz_core::SampleStrategy;

    fn collection() -> Vec<Vec<u8>> {
        (0..200)
            .map(|i| {
                format!(
                    "<html><nav>home about contact</nav><p>page {i} body {}</p></html>",
                    "common phrase ".repeat(i % 23)
                )
                .into_bytes()
            })
            .collect()
    }

    fn build_and_check(coding: PairCoding) {
        let docs = collection();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, 2048, 256, SampleStrategy::Evenly);
        let dir = TestDir::new(&format!("rlzstore-{}", coding.name()));
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, coding)
            .threads(4)
            .build(dir.path(), &slices)
            .unwrap();
        for store in [
            RlzStore::open(dir.path()).unwrap(),
            RlzStore::open_resident(dir.path()).unwrap(),
        ] {
            assert_eq!(store.num_docs(), docs.len());
            assert_eq!(store.coding(), coding);
            for (i, doc) in docs.iter().enumerate() {
                assert_eq!(&store.get(i).unwrap(), doc, "doc {i}");
            }
        }
    }

    #[test]
    fn roundtrip_all_paper_codings() {
        for coding in PairCoding::PAPER_SET {
            build_and_check(coding);
        }
    }

    #[test]
    fn compresses_redundant_collections() {
        let docs = collection();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, all.len() / 50, 512, SampleStrategy::Evenly);
        let dir = TestDir::new("rlzstore-ratio");
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, PairCoding::ZZ)
            .threads(4)
            .build(dir.path(), &slices)
            .unwrap();
        let store = RlzStore::open(dir.path()).unwrap();
        let ratio = store.total_stored_bytes() as f64 / all.len() as f64;
        assert!(ratio < 0.5, "ratio {ratio:.3}");
    }

    #[test]
    fn total_stored_bytes_counts_the_map_exactly() {
        let docs = collection();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, 2048, 256, SampleStrategy::Evenly);
        let dir = TestDir::new("rlzstore-footprint");
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, PairCoding::UV)
            .build(dir.path(), &slices)
            .unwrap();
        let store = RlzStore::open(dir.path()).unwrap();
        let map_file = std::fs::metadata(dir.path().join(super::MAP_FILE))
            .unwrap()
            .len();
        assert_eq!(
            store.total_stored_bytes(),
            store.stored_bytes() + store.dict_bytes() as u64 + map_file
        );
    }

    #[test]
    fn empty_docs_and_empty_store() {
        let dict = Dictionary::from_bytes(b"seed".to_vec());
        let dir = TestDir::new("rlzstore-empty");
        RlzStoreBuilder::new(dict, PairCoding::UV)
            .build(dir.path(), &[b"".as_slice(), b"x", b""])
            .unwrap();
        let store = RlzStore::open(dir.path()).unwrap();
        assert_eq!(store.get(0).unwrap(), b"");
        assert_eq!(store.get(1).unwrap(), b"x");
        assert_eq!(store.get(2).unwrap(), b"");
        assert!(matches!(store.get(3), Err(StoreError::DocOutOfRange(3))));
    }

    #[test]
    fn get_batch_matches_sequential_gets() {
        let docs = collection();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, 2048, 256, SampleStrategy::Evenly);
        let dir = TestDir::new("rlzstore-batch");
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, PairCoding::ZV)
            .threads(4)
            .build(dir.path(), &slices)
            .unwrap();
        let store = RlzStore::open(dir.path()).unwrap();
        let ids: Vec<u32> = (0..docs.len() as u32).rev().collect();
        for threads in [1, 4] {
            let batch = store.get_batch(&ids, threads).unwrap();
            assert_eq!(batch.len(), ids.len());
            for (got, &id) in batch.iter().zip(&ids) {
                assert_eq!(got, &docs[id as usize], "doc {id} at {threads} threads");
            }
        }
        // An out-of-range ID anywhere in the batch surfaces as an error.
        assert!(store.get_batch(&[0, 9_999], 2).is_err());
    }

    #[test]
    fn decode_error_leaves_out_unchanged() {
        let docs = collection();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, 2048, 256, SampleStrategy::Evenly);
        let dir = TestDir::new("rlzstore-partial");
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, PairCoding::UV)
            .build(dir.path(), &slices)
            .unwrap();
        // Truncate the payload so later records read past EOF or decode
        // mid-record; any failing get must not leave partial bytes in a
        // reused output buffer.
        let payload = dir.path().join(super::PAYLOAD_FILE);
        let bytes = std::fs::read(&payload).unwrap();
        std::fs::write(&payload, &bytes[..bytes.len() / 3]).unwrap();
        let store = RlzStore::open(dir.path()).unwrap();
        let mut out = b"keep".to_vec();
        let mut failures = 0;
        for i in 0..docs.len() {
            out.truncate(4);
            if store.get_into(i, &mut out).is_err() {
                failures += 1;
                assert_eq!(out, b"keep", "doc {i} left partial bytes on error");
            }
        }
        assert!(failures > 0, "truncation should make some gets fail");
    }

    #[test]
    fn open_rejects_corrupt_meta() {
        let dict = Dictionary::from_bytes(b"seed".to_vec());
        let dir = TestDir::new("rlzstore-badmeta");
        RlzStoreBuilder::new(dict, PairCoding::UV)
            .build(dir.path(), &[b"doc".as_slice()])
            .unwrap();
        std::fs::write(dir.path().join(super::META_FILE), b"??").unwrap();
        assert!(RlzStore::open(dir.path()).is_err());
        // A checksummed header with a bogus integrity tag must also fail.
        std::fs::write(
            dir.path().join(super::META_FILE),
            [super::META_VERSION_CHECKSUMMED, 9, b'U', b'V'],
        )
        .unwrap();
        assert!(RlzStore::open(dir.path()).is_err());
    }

    #[test]
    fn legacy_meta_without_checksums_still_opens() {
        let docs = collection();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, 2048, 256, SampleStrategy::Evenly);
        let dir = TestDir::new("rlzstore-legacy-meta");
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, PairCoding::ZV)
            .build(dir.path(), &slices)
            .unwrap();
        // Rewrite the metadata the way the previous version wrote it: the
        // bare coding name, no sums sidecar.
        std::fs::write(dir.path().join(super::META_FILE), b"ZV").unwrap();
        std::fs::remove_file(dir.path().join(super::SUMS_FILE)).unwrap();
        let store = RlzStore::open(dir.path()).unwrap();
        assert_eq!(store.integrity(), crate::Integrity::None);
        assert_eq!(store.stats().integrity, crate::Integrity::None);
        for (i, doc) in docs.iter().enumerate() {
            assert_eq!(&store.get(i).unwrap(), doc, "doc {i}");
        }
    }

    #[test]
    fn checksums_catch_bit_flips_per_record() {
        let docs = collection();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, 2048, 256, SampleStrategy::Evenly);
        let dir = TestDir::new("rlzstore-crc");
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, PairCoding::UV)
            .build(dir.path(), &slices)
            .unwrap();
        let path = dir.path().join(super::PAYLOAD_FILE);
        let mut payload = std::fs::read(&path).unwrap();
        let victim = payload.len() / 2;
        payload[victim] ^= 0x40;
        std::fs::write(&path, payload).unwrap();

        let store = RlzStore::open(dir.path()).unwrap();
        assert_eq!(store.integrity(), crate::Integrity::Crc32c);
        let mut bad = Vec::new();
        for (i, doc) in docs.iter().enumerate() {
            match store.get(i) {
                Ok(bytes) => assert_eq!(&bytes, doc, "doc {i}"),
                Err(StoreError::Corrupt {
                    what,
                    doc_id: Some(did),
                    ..
                }) => {
                    assert_eq!(what, "record checksum mismatch");
                    assert_eq!(did, i as u32);
                    bad.push(i as u32);
                }
                Err(other) => panic!("doc {i}: unexpected error {other}"),
            }
        }
        // A single flipped bit lives in exactly one record.
        assert_eq!(bad.len(), 1, "one flipped bit must fail exactly one record");

        // The scrub finds the same record, and quarantining it makes the
        // store pre-fail that id with a typed error.
        let report = store.scrub();
        assert_eq!(report.bad_doc_ids(), bad);
        assert_eq!(report.units, docs.len() as u64);
        crate::write_quarantine(dir.path(), &report.bad_doc_ids()).unwrap();
        let store = RlzStore::open(dir.path()).unwrap();
        assert!(matches!(
            store.get(bad[0] as usize),
            Err(StoreError::Corrupt {
                what: "document quarantined by rlz-verify",
                ..
            })
        ));
        // Per-id batch: only the corrupt record errors.
        let ids: Vec<u32> = (0..docs.len() as u32).collect();
        for (i, r) in store.get_batch_results(&ids, 2).iter().enumerate() {
            if i as u32 == bad[0] {
                assert!(r.is_err());
            } else {
                assert_eq!(r.as_ref().unwrap(), &docs[i], "doc {i}");
            }
        }
    }
}
