//! Thread-safe sharded LRU cache for decompressed blocks.
//!
//! [`BlockedStore`](crate::BlockedStore) retrieval decompresses a whole
//! block to serve one document; under sequential access the same block is
//! hit repeatedly, and under concurrent access popular blocks are hit from
//! many threads at once. This cache shards its key space over independently
//! locked maps so parallel readers rarely contend on the same mutex, and
//! hands out `Arc`s to the decompressed bytes so hits copy nothing under the
//! lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards (power of two).
const SHARDS: usize = 8;

/// A sharded, approximately-LRU cache from block index to decompressed
/// bytes. Eviction is exact LRU *within* a shard.
#[derive(Debug)]
pub struct ShardedLru {
    shards: [Mutex<Shard>; SHARDS],
    per_shard_cap: usize,
    tick: AtomicU64,
}

#[derive(Debug, Default)]
struct Shard {
    /// key → (last-touch tick, payload)
    entries: HashMap<usize, (u64, Arc<Vec<u8>>)>,
}

impl ShardedLru {
    /// A cache holding at most `capacity` blocks (rounded up to at least
    /// one block per shard).
    pub fn new(capacity: usize) -> Self {
        ShardedLru {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            per_shard_cap: capacity.div_ceil(SHARDS).max(1),
            tick: AtomicU64::new(0),
        }
    }

    /// Maximum number of cached blocks.
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * SHARDS
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock poisoned").entries.len())
            .sum()
    }

    /// Whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetches block `key`, refreshing its recency.
    pub fn get(&self, key: usize) -> Option<Arc<Vec<u8>>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("cache lock poisoned");
        shard.entries.get_mut(&key).map(|entry| {
            entry.0 = tick;
            Arc::clone(&entry.1)
        })
    }

    /// Inserts block `key`, evicting the shard's least-recently-used entry
    /// if the shard is full.
    pub fn insert(&self, key: usize, value: Arc<Vec<u8>>) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("cache lock poisoned");
        if shard.entries.len() >= self.per_shard_cap && !shard.entries.contains_key(&key) {
            // Exact LRU by linear scan: shards stay small (capacity/8), so
            // this is cheaper than maintaining an ordered structure.
            if let Some(&oldest) = shard
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k)
            {
                shard.entries.remove(&oldest);
            }
        }
        shard.entries.insert(key, (tick, value));
    }

    fn shard(&self, key: usize) -> &Mutex<Shard> {
        // Spread consecutive block indices across shards so sequential
        // access does not serialize on one lock.
        &self.shards[key % SHARDS]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(v: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![v; 16])
    }

    #[test]
    fn hit_and_miss() {
        let cache = ShardedLru::new(16);
        assert!(cache.get(3).is_none());
        cache.insert(3, block(3));
        assert_eq!(cache.get(3).unwrap()[0], 3);
        assert!(cache.get(11).is_none());
    }

    #[test]
    fn evicts_least_recently_used_within_shard() {
        let cache = ShardedLru::new(8); // one entry per shard
                                        // Keys 0 and 8 share shard 0.
        cache.insert(0, block(0));
        cache.insert(8, block(8));
        assert!(cache.get(0).is_none(), "0 should have been evicted by 8");
        assert_eq!(cache.get(8).unwrap()[0], 8);
    }

    #[test]
    fn recency_protects_hot_entries() {
        let cache = ShardedLru::new(16); // two entries per shard
        cache.insert(0, block(0));
        cache.insert(8, block(8));
        cache.get(0); // touch 0: now 8 is the LRU of shard 0
        cache.insert(16, block(16));
        assert!(cache.get(8).is_none(), "8 was least recent");
        assert!(cache.get(0).is_some());
        assert!(cache.get(16).is_some());
    }

    #[test]
    fn capacity_is_bounded() {
        let cache = ShardedLru::new(32);
        for k in 0..1000 {
            cache.insert(k, block(k as u8));
        }
        assert!(cache.len() <= cache.capacity());
        assert!(!cache.is_empty());
    }

    #[test]
    fn concurrent_mixed_access() {
        let cache = ShardedLru::new(64);
        std::thread::scope(|scope| {
            for t in 0..8u8 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..2000usize {
                        let key = (t as usize * 37 + i * 13) % 200;
                        if let Some(v) = cache.get(key) {
                            assert_eq!(v[0] as usize, key % 256);
                        } else {
                            cache.insert(key, Arc::new(vec![(key % 256) as u8; 16]));
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= cache.capacity());
    }
}
