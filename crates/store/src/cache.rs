//! Thread-safe sharded LRU cache for decompressed payloads.
//!
//! [`BlockedStore`](crate::BlockedStore) retrieval decompresses a whole
//! block to serve one document; under sequential access the same block is
//! hit repeatedly, and under concurrent access popular blocks are hit from
//! many threads at once. The serving front end (`rlz-serve`) reuses the
//! same structure as a **hot-document cache**: decoded payload bytes keyed
//! by document id, sized by a byte budget because web documents vary in
//! size by orders of magnitude. This cache shards its key space over
//! independently locked maps so parallel readers rarely contend on the
//! same mutex, and hands out `Arc`s to the decompressed bytes so hits copy
//! nothing under the lock.
//!
//! Two sizing modes share one implementation:
//!
//! * [`ShardedLru::new`] — bounded by **entry count** (the block-cache
//!   configuration: blocks share one fixed decompressed size);
//! * [`ShardedLru::with_byte_budget`] — bounded by **resident payload
//!   bytes** (the hot-document configuration: entries are whole documents
//!   of wildly different sizes, so counting entries would not bound
//!   memory).
//!
//! Hit/miss counters are maintained on every [`get`](ShardedLru::get) so a
//! serving layer can surface cache effectiveness (the `rlz-serve` STAT
//! opcode reports them).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards (power of two).
const SHARDS: usize = 8;

/// A sharded, approximately-LRU cache from key to decompressed bytes.
/// Eviction is exact LRU *within* a shard.
#[derive(Debug)]
pub struct ShardedLru {
    shards: [Mutex<Shard>; SHARDS],
    /// Max entries per shard (`usize::MAX` when byte-budgeted).
    per_shard_cap: usize,
    /// Max payload bytes per shard (`usize::MAX` when entry-budgeted).
    per_shard_bytes: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct Shard {
    /// key → (last-touch tick, payload)
    entries: HashMap<usize, (u64, Arc<Vec<u8>>)>,
    /// Sum of payload lengths currently resident in this shard.
    bytes: usize,
}

impl ShardedLru {
    /// A cache holding at most `capacity` entries (rounded up to at least
    /// one entry per shard). Resident bytes are unbounded — use this when
    /// every entry has the same known size (decompressed blocks).
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity.div_ceil(SHARDS).max(1), usize::MAX)
    }

    /// A cache holding at most `budget` payload bytes across all shards
    /// (each shard gets an equal slice; entries larger than a shard's
    /// slice are never cached, so one giant payload cannot flush the whole
    /// cache). Entry count is unbounded — use this when entry sizes vary
    /// (whole documents).
    pub fn with_byte_budget(budget: usize) -> Self {
        Self::build(usize::MAX, budget.div_ceil(SHARDS).max(1))
    }

    fn build(per_shard_cap: usize, per_shard_bytes: usize) -> Self {
        ShardedLru {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            per_shard_cap,
            per_shard_bytes,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Maximum number of cached entries (`usize::MAX` when the cache is
    /// bounded by bytes instead).
    pub fn capacity(&self) -> usize {
        self.per_shard_cap.saturating_mul(SHARDS)
    }

    /// Maximum resident payload bytes (`usize::MAX` when the cache is
    /// bounded by entry count instead).
    pub fn byte_budget(&self) -> usize {
        self.per_shard_bytes.saturating_mul(SHARDS)
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock poisoned").entries.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload bytes currently resident across all shards.
    pub fn resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock poisoned").bytes)
            .sum()
    }

    /// Lookups served from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fetches entry `key`, refreshing its recency and counting the
    /// hit/miss.
    pub fn get(&self, key: usize) -> Option<Arc<Vec<u8>>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("cache lock poisoned");
        let found = shard.entries.get_mut(&key).map(|entry| {
            entry.0 = tick;
            Arc::clone(&entry.1)
        });
        drop(shard);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts entry `key`, evicting least-recently-used entries until the
    /// shard satisfies both its entry and byte budgets. A payload larger
    /// than the whole shard byte budget is not cached at all (caching it
    /// would evict everything else for one entry).
    pub fn insert(&self, key: usize, value: Arc<Vec<u8>>) {
        if value.len() > self.per_shard_bytes {
            return;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("cache lock poisoned");
        // Replacing an existing key frees its bytes before budget checks.
        if let Some((_, old)) = shard.entries.remove(&key) {
            shard.bytes -= old.len();
        }
        while shard.entries.len() >= self.per_shard_cap
            || shard.bytes + value.len() > self.per_shard_bytes
        {
            // Exact LRU by linear scan: shards stay small, so this is
            // cheaper than maintaining an ordered structure.
            let Some(&oldest) = shard
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k)
            else {
                break;
            };
            if let Some((_, evicted)) = shard.entries.remove(&oldest) {
                shard.bytes -= evicted.len();
            }
        }
        shard.bytes += value.len();
        shard.entries.insert(key, (tick, value));
    }

    fn shard(&self, key: usize) -> &Mutex<Shard> {
        // Spread consecutive keys across shards so sequential access does
        // not serialize on one lock.
        &self.shards[key % SHARDS]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(v: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![v; 16])
    }

    #[test]
    fn hit_and_miss() {
        let cache = ShardedLru::new(16);
        assert!(cache.get(3).is_none());
        cache.insert(3, block(3));
        assert_eq!(cache.get(3).unwrap()[0], 3);
        assert!(cache.get(11).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn evicts_least_recently_used_within_shard() {
        let cache = ShardedLru::new(8); // one entry per shard
                                        // Keys 0 and 8 share shard 0.
        cache.insert(0, block(0));
        cache.insert(8, block(8));
        assert!(cache.get(0).is_none(), "0 should have been evicted by 8");
        assert_eq!(cache.get(8).unwrap()[0], 8);
    }

    #[test]
    fn recency_protects_hot_entries() {
        let cache = ShardedLru::new(16); // two entries per shard
        cache.insert(0, block(0));
        cache.insert(8, block(8));
        cache.get(0); // touch 0: now 8 is the LRU of shard 0
        cache.insert(16, block(16));
        assert!(cache.get(8).is_none(), "8 was least recent");
        assert!(cache.get(0).is_some());
        assert!(cache.get(16).is_some());
    }

    #[test]
    fn capacity_is_bounded() {
        let cache = ShardedLru::new(32);
        for k in 0..1000 {
            cache.insert(k, block(k as u8));
        }
        assert!(cache.len() <= cache.capacity());
        assert!(!cache.is_empty());
    }

    #[test]
    fn byte_budget_bounds_resident_bytes() {
        // 8 KiB budget, 1 KiB per shard; entries of 100 bytes.
        let cache = ShardedLru::with_byte_budget(8 << 10);
        assert_eq!(cache.byte_budget(), 8 << 10);
        for k in 0..1000 {
            cache.insert(k, Arc::new(vec![k as u8; 100]));
        }
        assert!(cache.resident_bytes() <= cache.byte_budget());
        assert!(!cache.is_empty());
        // Variable sizes keep the accounting honest.
        for k in 0..200 {
            cache.insert(k, Arc::new(vec![k as u8; 1 + (k * 37) % 900]));
        }
        assert!(cache.resident_bytes() <= cache.byte_budget());
        let expected: usize = (0..SHARDS)
            .map(|s| {
                cache.shards[s]
                    .lock()
                    .unwrap()
                    .entries
                    .values()
                    .map(|(_, v)| v.len())
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(cache.resident_bytes(), expected);
    }

    #[test]
    fn oversized_payloads_are_not_cached() {
        let cache = ShardedLru::with_byte_budget(8 << 10); // 1 KiB per shard
        cache.insert(0, Arc::new(vec![1; 64]));
        cache.insert(8, Arc::new(vec![2; 4096])); // larger than one shard's slice
        assert!(cache.get(8).is_none(), "oversized entry must not be cached");
        assert!(
            cache.get(0).is_some(),
            "oversized insert must not evict the shard"
        );
    }

    #[test]
    fn replacing_a_key_updates_byte_accounting() {
        let cache = ShardedLru::with_byte_budget(8 << 10);
        cache.insert(0, Arc::new(vec![1; 500]));
        cache.insert(0, Arc::new(vec![2; 300]));
        assert_eq!(cache.resident_bytes(), 300);
        assert_eq!(cache.get(0).unwrap()[0], 2);
    }

    #[test]
    fn concurrent_mixed_access() {
        let cache = ShardedLru::new(64);
        std::thread::scope(|scope| {
            for t in 0..8u8 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..2000usize {
                        let key = (t as usize * 37 + i * 13) % 200;
                        if let Some(v) = cache.get(key) {
                            assert_eq!(v[0] as usize, key % 256);
                        } else {
                            cache.insert(key, Arc::new(vec![(key % 256) as u8; 16]));
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= cache.capacity());
        assert_eq!(cache.hits() + cache.misses(), 8 * 2000);
    }
}
