//! The live store: a writable, crash-recoverable RLZ store.
//!
//! The read-only families ([`RlzStore`](crate::RlzStore) and friends) are
//! built once and never change; a crash mid-build leaves an unusable
//! directory. [`LiveStore`] is the write path built for failure:
//!
//! 1. every PUT / APPEND / DELETE first lands in a CRC32C-framed
//!    write-ahead log ([`Wal`](crate::wal::Wal)), fsynced per the
//!    configured [`FsyncPolicy`] — under `Always`, the `Ok` return *is*
//!    the durability ack;
//! 2. the document is then factorized against the memory-resident
//!    dictionary into the in-memory **tail** (encoded bytes, shared via
//!    `Arc`), immediately visible to readers;
//! 3. when the tail outgrows the seal threshold — or the WAL backlog
//!    grows past half its hard bound, which catches delete-heavy and
//!    highly-compressible traffic whose tail stays small — it is folded
//!    into an immutable [segment](crate::segment) published by atomic
//!    rename + directory fsync, a new `MANIFEST` generation is published
//!    the same way, and the WAL is reset. The write path can therefore
//!    always drain itself: a WAL at its hard bound seals *before*
//!    accepting the next write instead of wedging, and
//!    [`StoreError::WalFull`] is reserved for the pathological case where
//!    that seal cannot reclaim space.
//!
//! # Epoch-swap reads
//!
//! Readers never block on the writer. Every mutation publishes a fresh
//! immutable [`LiveSnapshot`] behind an `RwLock<Arc<…>>`; a read clones
//! the `Arc` (the lock is held only for that pointer copy) and then runs
//! entirely against frozen state: tail map → sealed segments newest-first.
//! A snapshot pinned at any epoch stays internally consistent forever —
//! batch reads pin one snapshot for the whole batch, so a concurrent seal
//! or delete can never make a document vanish mid-batch.
//!
//! # Recovery
//!
//! [`LiveStore::open`] trusts the manifest, deletes seal debris (`*.tmp`,
//! unlisted `seg-*.seg`), loads the listed segments, then replays WAL
//! frames with `seq > manifest.applied_seq` — re-assigning PUT ids
//! monotonically from `manifest.next_doc_id`, which reproduces the
//! original assignment because frames were logged in id order under the
//! writer lock. A torn WAL tail is truncated, never fatal. The result
//! after `kill -9` at *any* instant: every write acked under
//! `FsyncPolicy::Always` is present and byte-identical, and no
//! unacknowledged write is visible.

use crate::segment::{remove_debris, seal_segment, Manifest, SealRecord, SegmentReader, KIND_PUT};
use crate::verify::{load_quarantine, BadUnit, ScrubReport};
use crate::wal::{FileMedia, FsyncPolicy, Wal, WalMedia, WalOp, WAL_FILE};
use crate::{read_file, DocStore, Integrity, StoreError, StoreStats};
use rlz_core::{Dictionary, PairCoding, RlzCompressor};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

const DICT_FILE: &str = "dict.bin";
const META_FILE: &str = "meta.bin";

/// Leads live-store metadata: `[0xF7, coding name…]`. Distinct from the
/// read-only RLZ store's `0xF6` and from legacy bare-ASCII metadata.
const META_VERSION_LIVE: u8 = 0xF7;

/// Tuning for a [`LiveStore`].
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// When the WAL is pushed to stable storage.
    pub fsync: FsyncPolicy,
    /// Seal the in-memory tail into a segment once its encoded bytes pass
    /// this threshold. The WAL backlog is a second, independent seal
    /// trigger (at `wal_max_bytes / 2`): tombstones add nothing to the
    /// tail and compressible documents add little, so the tail alone must
    /// not be what keeps the log drainable.
    pub seal_bytes: u64,
    /// Soft WAL bound: past this, [`crate::WriteStore::write_pressure`]
    /// reports
    /// true and the server sheds *writes* with `ERR_BUSY` (reads are
    /// unaffected — the backlog is writer-side work).
    pub wal_soft_bytes: u64,
    /// Hard WAL bound: a write arriving with the WAL at or past this first
    /// seals the tail to drain the log, then proceeds.
    /// [`StoreError::WalFull`] is returned only if that seal cannot
    /// reclaim space — the write path never wedges on a full log.
    pub wal_max_bytes: u64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            fsync: FsyncPolicy::Always,
            seal_bytes: 8 << 20,
            wal_soft_bytes: 32 << 20,
            wal_max_bytes: 64 << 20,
        }
    }
}

/// One live document in the unsealed tail: its encoded bytes, or a
/// tombstone shadowing an earlier version.
#[derive(Clone)]
enum TailEntry {
    Doc(Arc<Vec<u8>>),
    Tombstone,
}

/// Frozen state shared by every reader of one epoch.
struct Snapshot {
    next_id: u32,
    tail: HashMap<u32, TailEntry>,
    /// Newest first: the tail shadows these, earlier entries shadow later.
    segments: Vec<Arc<SegmentReader>>,
    dict_bytes: Arc<Vec<u8>>,
    coding: PairCoding,
    quarantine: Arc<Vec<u32>>,
    payload_bytes: u64,
}

impl Snapshot {
    fn get_into(&self, id: usize, out: &mut Vec<u8>) -> Result<(), StoreError> {
        let Ok(id32) = u32::try_from(id) else {
            return Err(StoreError::DocOutOfRange(id));
        };
        if id32 >= self.next_id {
            return Err(StoreError::DocOutOfRange(id));
        }
        if self.quarantine.binary_search(&id32).is_ok() {
            return Err(StoreError::Corrupt {
                what: "document quarantined by rlz-verify",
                block: None,
                doc_id: Some(id32),
            });
        }
        let start = out.len();
        let result = self.get_inner(id32, out);
        if result.is_err() {
            out.truncate(start);
        }
        result
    }

    fn get_inner(&self, id: u32, out: &mut Vec<u8>) -> Result<(), StoreError> {
        if let Some(entry) = self.tail.get(&id) {
            return match entry {
                TailEntry::Doc(enc) => self.decode(enc, out),
                TailEntry::Tombstone => Err(StoreError::DocOutOfRange(id as usize)),
            };
        }
        for seg in &self.segments {
            if let Some(entry) = seg.entry(id) {
                if entry.kind != KIND_PUT {
                    return Err(StoreError::DocOutOfRange(id as usize));
                }
                return crate::with_block_scratch(|enc| {
                    seg.read_entry(id, entry, enc)?;
                    self.decode(enc, out)
                });
            }
        }
        // An assigned id with no record anywhere: deleted and sealed away,
        // or never written (gap from a crash between ack and replay).
        Err(StoreError::DocOutOfRange(id as usize))
    }

    fn decode(&self, enc: &[u8], out: &mut Vec<u8>) -> Result<(), StoreError> {
        crate::with_decode_scratch(|scratch| {
            rlz_core::coding::decode_and_expand_scratch(
                enc,
                self.coding,
                &self.dict_bytes,
                out,
                scratch,
            )
        })?;
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            num_docs: self.next_id as u64,
            payload_bytes: self.payload_bytes,
            max_record_len: 0,
            integrity: Integrity::Crc32c,
        }
    }
}

/// A pinned, immutable view of a [`LiveStore`] at one epoch.
///
/// Implements [`DocStore`], so anything that reads a store can read a
/// snapshot. Whatever the writer does afterwards — put, delete, seal —
/// this view keeps serving exactly the documents it was born with.
#[derive(Clone)]
pub struct LiveSnapshot {
    snap: Arc<Snapshot>,
}

impl DocStore for LiveSnapshot {
    fn num_docs(&self) -> usize {
        self.snap.next_id as usize
    }

    fn stats(&self) -> StoreStats {
        self.snap.stats()
    }

    fn get_into(&self, id: usize, out: &mut Vec<u8>) -> Result<(), StoreError> {
        self.snap.get_into(id, out)
    }

    fn quarantined_docs(&self) -> u64 {
        self.snap.quarantine.len() as u64
    }
}

/// Writer-side state, serialized behind one mutex.
struct Writer {
    wal: Wal,
    /// Next WAL sequence number to assign (monotone, never reused).
    next_seq: u64,
    next_id: u32,
    gen: u64,
    /// Sealed segment numbers, oldest first (mirrors the manifest).
    segments: Vec<u64>,
    seg_readers: Vec<Arc<SegmentReader>>,
    tail: HashMap<u32, TailEntry>,
    tail_bytes: u64,
    next_seg_no: u64,
}

struct LiveInner {
    dir: PathBuf,
    compressor: RlzCompressor,
    coding: PairCoding,
    dict_bytes: Arc<Vec<u8>>,
    config: LiveConfig,
    quarantine: Arc<Vec<u32>>,
    writer: Mutex<Writer>,
    snapshot: RwLock<Arc<Snapshot>>,
    /// WAL length mirrored out of the writer lock so `write_pressure` is a
    /// lock-free load on the serving path.
    wal_len: AtomicU64,
    /// Opportunistic post-write seals that failed. The writes themselves
    /// were already durable and acked; the seal retries on later writes.
    seal_failures: AtomicU64,
    /// Pre-write seals (draining a WAL at its hard bound) that failed and
    /// therefore failed the incoming write. Unlike post-write failures
    /// these are user-visible errors, so they are logged and counted
    /// separately.
    pre_seal_failures: AtomicU64,
    /// WAL frames logged since open (PUT/APPEND/DELETE), for monitoring.
    wal_frames: AtomicU64,
    /// Seals published since open (manifest generations advanced).
    seals: AtomicU64,
}

/// What [`LiveStore::open`] had to do to get consistent.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryInfo {
    /// Intact WAL frames replayed (those newer than the manifest).
    pub replayed_frames: u64,
    /// WAL bytes scanned during replay.
    pub wal_bytes: u64,
    /// Bytes of torn/corrupt WAL tail truncated away.
    pub torn_bytes_dropped: u64,
    /// Seal-debris files (`*.tmp`, unlisted segments) deleted.
    pub debris_removed: u64,
}

/// A writable, crash-recoverable RLZ document store. See the module docs
/// for the architecture. Clones are cheap handles on the same store.
#[derive(Clone)]
pub struct LiveStore {
    inner: Arc<LiveInner>,
    recovery: RecoveryInfo,
}

impl LiveStore {
    /// Creates a fresh live store in `dir` (which must not already hold
    /// one) and opens it.
    pub fn create(
        dir: &Path,
        dict: Dictionary,
        coding: PairCoding,
        config: LiveConfig,
    ) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        if dir.join(crate::segment::MANIFEST_FILE).exists() {
            return Err(StoreError::Io(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "directory already holds a live store",
            )));
        }
        std::fs::write(dir.join(DICT_FILE), dict.bytes())?;
        let mut meta = vec![META_VERSION_LIVE];
        meta.extend_from_slice(coding.name().as_bytes());
        std::fs::write(dir.join(META_FILE), meta)?;
        Manifest::empty().publish(dir)?;
        Self::open(dir, config)
    }

    /// Opens (and recovers) a live store.
    pub fn open(dir: &Path, config: LiveConfig) -> Result<Self, StoreError> {
        Self::open_with_media(dir, config, |media| Box::new(media))
    }

    /// Opens a live store with the WAL's byte device wrapped by `wrap` —
    /// the hook the crash-injection harness uses to interpose
    /// [`FaultMedia`](crate::FaultMedia) between the writer and the file.
    pub fn open_with_media(
        dir: &Path,
        config: LiveConfig,
        wrap: impl FnOnce(FileMedia) -> Box<dyn WalMedia>,
    ) -> Result<Self, StoreError> {
        let meta = read_file(&dir.join(META_FILE))?;
        let name_bytes = match meta.split_first() {
            Some((&META_VERSION_LIVE, rest)) => rest,
            _ => return Err(StoreError::corrupt("not a live store (bad metadata)")),
        };
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| StoreError::corrupt("pair-coding name is not UTF-8"))?;
        let coding = PairCoding::parse(name)
            .map_err(|_| StoreError::corrupt("unknown pair coding in metadata"))?;
        let dict_bytes = Arc::new(read_file(&dir.join(DICT_FILE))?);
        let dict = Dictionary::from_bytes(dict_bytes.as_ref().clone());
        let compressor = RlzCompressor::new(dict, coding);

        let manifest = Manifest::load(dir)?;
        let debris_removed = remove_debris(dir, &manifest)? as u64;
        let mut seg_readers = Vec::with_capacity(manifest.segments.len());
        // Manifest lists oldest first; readers overlay newest first.
        for &n in manifest.segments.iter().rev() {
            seg_readers.push(Arc::new(SegmentReader::open(dir, n)?));
        }
        let quarantine = Arc::new(load_quarantine(dir)?);

        let wal_path = dir.join(WAL_FILE);
        let read_back = match std::fs::read(&wal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::Io(e)),
        };
        let media = wrap(FileMedia::open(&wal_path)?);
        let (wal, wal_recovery) = Wal::open(media, config.fsync, &read_back)?;

        // Replay: only frames the sealed segments do not already cover.
        // PUT ids re-assign monotonically from the manifest's counter —
        // identical to the original assignment, because frames were logged
        // in id order under the writer lock.
        let mut next_id = manifest.next_doc_id;
        let mut next_seq = manifest.applied_seq + 1;
        let mut tail: HashMap<u32, TailEntry> = HashMap::new();
        let mut tail_bytes = 0u64;
        let mut replayed = 0u64;
        {
            // Temporary snapshot of the sealed state, for APPEND replay
            // reads of documents that live below the tail.
            let sealed = Snapshot {
                next_id: u32::MAX,
                tail: HashMap::new(),
                segments: seg_readers.clone(),
                dict_bytes: Arc::clone(&dict_bytes),
                coding,
                quarantine: Arc::new(Vec::new()),
                payload_bytes: 0,
            };
            let mut doc = Vec::new();
            for record in &wal_recovery.records {
                if record.seq <= manifest.applied_seq {
                    continue; // already folded into a sealed segment
                }
                next_seq = record.seq + 1;
                replayed += 1;
                match &record.op {
                    WalOp::Put(bytes) => {
                        let enc = compressor.compress(bytes);
                        tail_bytes += enc.len() as u64;
                        tail.insert(next_id, TailEntry::Doc(Arc::new(enc)));
                        next_id += 1;
                    }
                    WalOp::Append(id, bytes) => {
                        doc.clear();
                        let found = match tail.get(id) {
                            Some(TailEntry::Doc(enc)) => {
                                sealed.decode(enc, &mut doc)?;
                                true
                            }
                            Some(TailEntry::Tombstone) => false,
                            // Only a doc that positively does not exist may
                            // be skipped. A corrupt or unreadable sealed
                            // record must surface — silently dropping an
                            // acked APPEND here would be data loss.
                            None => match sealed.get_inner(*id, &mut doc) {
                                Ok(()) => true,
                                Err(StoreError::DocOutOfRange(_)) => false,
                                Err(e) => return Err(e),
                            },
                        };
                        if !found {
                            // Appending to a doc that no longer exists:
                            // the original call failed too. Skip.
                            continue;
                        }
                        doc.extend_from_slice(bytes);
                        let enc = compressor.compress(&doc);
                        tail_bytes += enc.len() as u64;
                        tail.insert(*id, TailEntry::Doc(Arc::new(enc)));
                    }
                    WalOp::Delete(id) => {
                        tail.insert(*id, TailEntry::Tombstone);
                    }
                }
            }
        }

        let next_seg_no = manifest.segments.iter().copied().max().map_or(1, |n| n + 1);
        let payload_bytes = seg_readers.iter().map(|s| s.payload_len()).sum::<u64>() + tail_bytes;
        let snapshot = Arc::new(Snapshot {
            next_id,
            tail: tail.clone(),
            segments: seg_readers.clone(),
            dict_bytes: Arc::clone(&dict_bytes),
            coding,
            quarantine: Arc::clone(&quarantine),
            payload_bytes,
        });
        let wal_len = wal.len();
        let writer = Writer {
            wal,
            next_seq,
            next_id,
            gen: manifest.gen,
            segments: manifest.segments,
            seg_readers,
            tail,
            tail_bytes,
            next_seg_no,
        };
        let recovery = RecoveryInfo {
            replayed_frames: replayed,
            wal_bytes: read_back.len() as u64,
            torn_bytes_dropped: wal_recovery.dropped_bytes,
            debris_removed,
        };
        let store = LiveStore {
            inner: Arc::new(LiveInner {
                dir: dir.to_path_buf(),
                compressor,
                coding,
                dict_bytes,
                config,
                quarantine,
                writer: Mutex::new(writer),
                snapshot: RwLock::new(snapshot),
                wal_len: AtomicU64::new(wal_len),
                seal_failures: AtomicU64::new(0),
                pre_seal_failures: AtomicU64::new(0),
                wal_frames: AtomicU64::new(0),
                seals: AtomicU64::new(0),
            }),
            recovery,
        };
        // Under the Interval policy an append only syncs when a *later*
        // append arrives past the interval; if writes stop, the last
        // frames would sit unsynced forever. A background flusher holds
        // the loss window to the interval even across write silence. It
        // keeps only a Weak handle, so it dies (within one interval) once
        // the last store handle is dropped.
        if let FsyncPolicy::Interval(every) = config.fsync {
            let weak = Arc::downgrade(&store.inner);
            std::thread::Builder::new()
                .name("rlz-live-flusher".into())
                .spawn(move || loop {
                    std::thread::sleep(every);
                    let Some(inner) = weak.upgrade() else { break };
                    let mut writer = inner.writer.lock().expect("writer lock");
                    // An fsync failure here is retried next tick; the
                    // frames stay in the WAL either way.
                    let _ = writer.wal.sync();
                })
                .map_err(StoreError::Io)?;
        }
        Ok(store)
    }

    /// What the most recent [`open`](LiveStore::open) recovered.
    pub fn recovery(&self) -> RecoveryInfo {
        self.recovery
    }

    /// The pair coding documents are factorized with.
    pub fn coding(&self) -> PairCoding {
        self.inner.coding
    }

    /// Current WAL backlog in bytes.
    pub fn wal_len(&self) -> u64 {
        self.inner.wal_len.load(Ordering::Relaxed)
    }

    /// Opportunistic post-write seals that failed so far. The writes they
    /// followed were already durable and acked — a failed seal costs
    /// nothing but backlog, and the next write retries it.
    pub fn seal_failures(&self) -> u64 {
        self.inner.seal_failures.load(Ordering::Relaxed)
    }

    /// Pre-write seals that failed and so failed the incoming write (the
    /// WAL was at its hard bound and could not be drained). Each one is a
    /// write the caller saw error.
    pub fn pre_seal_failures(&self) -> u64 {
        self.inner.pre_seal_failures.load(Ordering::Relaxed)
    }

    /// WAL frames appended but not yet on stable storage (always 0 under
    /// [`FsyncPolicy::Always`]; under `Interval` the background flusher
    /// returns this to 0 within one interval even when writes stop).
    pub fn unsynced_frames(&self) -> u64 {
        self.inner
            .writer
            .lock()
            .expect("writer lock")
            .wal
            .unsynced()
    }

    /// Pins the current epoch: an immutable [`LiveSnapshot`] that future
    /// writes and seals cannot perturb.
    pub fn snapshot(&self) -> LiveSnapshot {
        LiveSnapshot {
            snap: self.inner.snapshot.read().expect("snapshot lock").clone(),
        }
    }

    fn publish(&self, writer: &Writer) {
        let payload_bytes = writer
            .seg_readers
            .iter()
            .map(|s| s.payload_len())
            .sum::<u64>()
            + writer.tail_bytes;
        let snap = Arc::new(Snapshot {
            next_id: writer.next_id,
            tail: writer.tail.clone(),
            segments: writer.seg_readers.clone(),
            dict_bytes: Arc::clone(&self.inner.dict_bytes),
            coding: self.inner.coding,
            quarantine: Arc::clone(&self.inner.quarantine),
            payload_bytes,
        });
        *self.inner.snapshot.write().expect("snapshot lock") = snap;
        self.inner
            .wal_len
            .store(writer.wal.len(), Ordering::Relaxed);
    }

    /// Makes room for one more write. A WAL at its hard bound is drained
    /// by sealing — nothing has been logged for the incoming write yet, so
    /// a seal failure here fails the write cleanly. [`StoreError::WalFull`]
    /// only if even a successful seal could not reclaim space.
    fn ensure_wal_room(&self, writer: &mut Writer) -> Result<(), StoreError> {
        if writer.wal.len() < self.inner.config.wal_max_bytes {
            return Ok(());
        }
        if let Err(e) = self.seal_locked(writer) {
            // This failure rejects the incoming write, so make it count
            // and make it visible — post-write seal failures are silent
            // retries, this one is not.
            self.inner.pre_seal_failures.fetch_add(1, Ordering::Relaxed);
            eprintln!("rlz-store: pre-write seal failed, rejecting write: {e}");
            return Err(e);
        }
        if writer.wal.len() >= self.inner.config.wal_max_bytes {
            return Err(StoreError::WalFull);
        }
        Ok(())
    }

    /// Post-write opportunistic seal: fires when the tail passes
    /// `seal_bytes` *or* the WAL backlog passes half its hard bound (the
    /// trigger that keeps delete-heavy traffic — whose tombstones add no
    /// tail bytes — and highly-compressible traffic drainable long before
    /// the hard bound). The write that got us here is already durably
    /// logged, published, and its id consumed, so a seal failure must NOT
    /// fail the ack: it is counted in [`seal_failures`](Self::seal_failures)
    /// and retried on the next write (or by [`ensure_wal_room`]
    /// pre-write, where failing is still safe).
    fn maybe_auto_seal(&self, writer: &mut Writer) {
        let due = writer.tail_bytes >= self.inner.config.seal_bytes
            || writer.wal.len() >= self.inner.config.wal_max_bytes / 2;
        if due && self.seal_locked(writer).is_err() {
            self.inner.seal_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Seals the in-memory tail into a segment and publishes a new
    /// manifest generation. No-op on an empty tail. Readers are never
    /// blocked: the swap is one snapshot publish at the end.
    pub fn seal(&self) -> Result<(), StoreError> {
        let mut writer = self.inner.writer.lock().expect("writer lock");
        self.seal_locked(&mut writer)
    }

    fn seal_locked(&self, writer: &mut Writer) -> Result<(), StoreError> {
        if writer.tail.is_empty() {
            // No new documents, but the WAL can still hold frames that
            // replayed to no-ops (APPENDs to since-deleted docs are
            // skipped during recovery). Publish the advanced watermark and
            // drain them, so a full WAL is always reclaimable.
            if !writer.wal.is_empty() {
                let manifest = Manifest {
                    gen: writer.gen + 1,
                    next_doc_id: writer.next_id,
                    applied_seq: writer.next_seq - 1,
                    segments: writer.segments.clone(),
                };
                manifest.publish(&self.inner.dir)?;
                writer.wal.reset()?;
                writer.gen = manifest.gen;
                self.inner.seals.fetch_add(1, Ordering::Relaxed);
                self.publish(writer);
            }
            return Ok(());
        }
        let mut ids: Vec<u32> = writer.tail.keys().copied().collect();
        ids.sort_unstable();
        let records: Vec<SealRecord<'_>> = ids
            .iter()
            .map(|id| match &writer.tail[id] {
                TailEntry::Doc(enc) => SealRecord::Put(*id, enc.as_slice()),
                TailEntry::Tombstone => SealRecord::Tombstone(*id),
            })
            .collect();
        let seg_no = writer.next_seg_no;
        seal_segment(&self.inner.dir, seg_no, &records)?;
        drop(records);
        let reader = Arc::new(SegmentReader::open(&self.inner.dir, seg_no)?);
        let mut segments = writer.segments.clone();
        segments.push(seg_no);
        let manifest = Manifest {
            gen: writer.gen + 1,
            next_doc_id: writer.next_id,
            // Everything logged so far is now in a sealed segment.
            applied_seq: writer.next_seq - 1,
            segments,
        };
        manifest.publish(&self.inner.dir)?;
        // Only after the manifest is durable may the WAL forget.
        writer.wal.reset()?;
        writer.gen = manifest.gen;
        writer.segments = manifest.segments;
        writer.next_seg_no = seg_no + 1;
        writer.seg_readers.insert(0, reader); // newest first
        writer.tail.clear();
        writer.tail_bytes = 0;
        self.inner.seals.fetch_add(1, Ordering::Relaxed);
        self.publish(writer);
        Ok(())
    }

    /// Forces the WAL to stable storage regardless of fsync policy.
    pub fn sync(&self) -> Result<(), StoreError> {
        let mut writer = self.inner.writer.lock().expect("writer lock");
        writer.wal.sync()
    }

    /// Offline integrity scrub of the whole live directory — see
    /// [`scrub_live`].
    pub fn scrub(&self) -> Result<ScrubReport, StoreError> {
        scrub_live(&self.inner.dir)
    }
}

impl crate::WriteStore for LiveStore {
    fn put(&self, doc: &[u8]) -> Result<u32, StoreError> {
        let mut writer = self.inner.writer.lock().expect("writer lock");
        self.ensure_wal_room(&mut writer)?;
        let seq = writer.next_seq;
        writer.wal.log_put(seq, doc)?;
        self.inner.wal_frames.fetch_add(1, Ordering::Relaxed);
        writer.next_seq += 1;
        let id = writer.next_id;
        writer.next_id += 1;
        let enc = self.inner.compressor.compress(doc);
        writer.tail_bytes += enc.len() as u64;
        writer.tail.insert(id, TailEntry::Doc(Arc::new(enc)));
        self.publish(&writer);
        self.maybe_auto_seal(&mut writer);
        Ok(id)
    }

    fn append(&self, id: u32, bytes: &[u8]) -> Result<(), StoreError> {
        let mut writer = self.inner.writer.lock().expect("writer lock");
        self.ensure_wal_room(&mut writer)?;
        // Read the current content through the snapshot (consistent with
        // the writer under its lock); fails typed if the doc never existed
        // or was deleted.
        let snap = self.inner.snapshot.read().expect("snapshot lock").clone();
        let mut doc = Vec::new();
        snap.get_into(id as usize, &mut doc)?;
        let seq = writer.next_seq;
        writer.wal.log_append(seq, id, bytes)?;
        self.inner.wal_frames.fetch_add(1, Ordering::Relaxed);
        writer.next_seq += 1;
        doc.extend_from_slice(bytes);
        let enc = self.inner.compressor.compress(&doc);
        writer.tail_bytes += enc.len() as u64;
        writer.tail.insert(id, TailEntry::Doc(Arc::new(enc)));
        self.publish(&writer);
        self.maybe_auto_seal(&mut writer);
        Ok(())
    }

    fn delete(&self, id: u32) -> Result<(), StoreError> {
        let mut writer = self.inner.writer.lock().expect("writer lock");
        self.ensure_wal_room(&mut writer)?;
        // Deleting a doc that is not currently visible is out-of-range.
        let snap = self.inner.snapshot.read().expect("snapshot lock").clone();
        let mut probe = Vec::new();
        snap.get_into(id as usize, &mut probe)?;
        drop(probe);
        let seq = writer.next_seq;
        writer.wal.log_delete(seq, id)?;
        self.inner.wal_frames.fetch_add(1, Ordering::Relaxed);
        writer.next_seq += 1;
        writer.tail.insert(id, TailEntry::Tombstone);
        self.publish(&writer);
        // Tombstones add no tail bytes; the WAL-length trigger inside is
        // what keeps delete-heavy traffic sealing (and the log draining).
        self.maybe_auto_seal(&mut writer);
        Ok(())
    }

    fn write_pressure(&self) -> bool {
        self.inner.wal_len.load(Ordering::Relaxed) > self.inner.config.wal_soft_bytes
    }

    // Briefly takes the writer lock (for the unsynced-frame count); meant
    // for scrape paths, never the per-request hot path.
    fn write_stats(&self) -> crate::WriteStats {
        crate::WriteStats {
            wal_bytes: self.wal_len(),
            wal_frames: self.inner.wal_frames.load(Ordering::Relaxed),
            unsynced_frames: self.unsynced_frames(),
            seals: self.inner.seals.load(Ordering::Relaxed),
            seal_failures: self.seal_failures(),
            pre_seal_failures: self.pre_seal_failures(),
            recovery_replayed_frames: self.recovery.replayed_frames,
            recovery_wal_bytes: self.recovery.wal_bytes,
            recovery_torn_bytes: self.recovery.torn_bytes_dropped,
            recovery_debris_removed: self.recovery.debris_removed,
        }
    }
}

impl DocStore for LiveStore {
    fn num_docs(&self) -> usize {
        self.inner.snapshot.read().expect("snapshot lock").next_id as usize
    }

    fn stats(&self) -> StoreStats {
        self.inner.snapshot.read().expect("snapshot lock").stats()
    }

    fn get_into(&self, id: usize, out: &mut Vec<u8>) -> Result<(), StoreError> {
        let snap = self.inner.snapshot.read().expect("snapshot lock").clone();
        snap.get_into(id, out)
    }

    fn quarantined_docs(&self) -> u64 {
        self.inner.quarantine.len() as u64
    }

    // Batch reads pin ONE snapshot for the whole batch: a concurrent seal
    // or delete can never make a document vanish between two ids of the
    // same request (the consistency property the seal/swap proptest
    // asserts).
    fn get_batch(&self, ids: &[u32], threads: usize) -> Result<Vec<Vec<u8>>, StoreError> {
        crate::get_batch_ordered(&self.snapshot(), ids, threads)
    }

    fn get_batch_results(&self, ids: &[u32], threads: usize) -> Vec<Result<Vec<u8>, StoreError>> {
        crate::get_batch_results_ordered(&self.snapshot(), ids, threads)
    }
}

/// Scrubs a live store directory offline: every WAL frame re-parsed and
/// CRC-checked, every sealed-segment record CRC-verified. Read-only — the
/// scrub itself never truncates or repairs (that is what opening the store
/// does, and what `rlz-verify --quarantine` records).
pub fn scrub_live(dir: &Path) -> Result<ScrubReport, StoreError> {
    let manifest = Manifest::load(dir)?;
    let mut report = ScrubReport::new(Integrity::Crc32c);
    // WAL frames.
    match std::fs::read(dir.join(WAL_FILE)) {
        Ok(data) => {
            let (records, clean) = crate::wal::parse_frames(&data);
            report.units += records.len() as u64;
            report.bytes += clean;
            if clean < data.len() as u64 {
                report.bad.push(BadUnit {
                    block: None,
                    doc_ids: Vec::new(),
                    error: StoreError::corrupt("torn or corrupt WAL tail (recovered on next open)"),
                });
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(StoreError::Io(e)),
    }
    // Sealed segments, oldest first.
    let mut buf = Vec::new();
    for &seg_no in &manifest.segments {
        let seg = match SegmentReader::open(dir, seg_no) {
            Ok(seg) => seg,
            Err(error) => {
                report.units += 1;
                report.bad.push(BadUnit {
                    block: Some(seg_no as u32),
                    doc_ids: Vec::new(),
                    error,
                });
                continue;
            }
        };
        for &id in seg.doc_order() {
            let entry = seg.entry(id).expect("indexed id");
            report.units += 1;
            report.bytes += entry.len as u64;
            if let Err(error) = seg.read_entry(id, entry, &mut buf) {
                report.bad.push(BadUnit {
                    block: Some(seg_no as u32),
                    doc_ids: vec![id],
                    error,
                });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;
    use crate::{FaultMedia, FaultPlan, WriteStore};
    use rlz_core::SampleStrategy;

    fn dict() -> Dictionary {
        let seed: Vec<u8> = (0..200)
            .flat_map(|i: u32| {
                format!(
                    "<html><nav>home about contact</nav><p>page {i} body common phrase</p></html>"
                )
                .into_bytes()
            })
            .collect();
        Dictionary::sample(&seed, 2048, 256, SampleStrategy::Evenly)
    }

    fn doc(i: usize) -> Vec<u8> {
        format!(
            "<html><p>page {i} body {}</p></html>",
            "common phrase ".repeat(i % 13)
        )
        .into_bytes()
    }

    fn small_config() -> LiveConfig {
        LiveConfig {
            fsync: FsyncPolicy::Always,
            seal_bytes: 512, // tiny, so tests exercise sealing
            ..LiveConfig::default()
        }
    }

    #[test]
    fn put_get_append_delete_roundtrip() {
        let dir = TestDir::new("live-roundtrip");
        let store =
            LiveStore::create(dir.path(), dict(), PairCoding::ZV, LiveConfig::default()).unwrap();
        let a = store.put(&doc(0)).unwrap();
        let b = store.put(&doc(1)).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.get(0).unwrap(), doc(0));
        assert_eq!(store.get(1).unwrap(), doc(1));
        assert_eq!(store.num_docs(), 2);

        store.append(0, b" tail bytes").unwrap();
        let mut want = doc(0);
        want.extend_from_slice(b" tail bytes");
        assert_eq!(store.get(0).unwrap(), want);

        store.delete(1).unwrap();
        assert!(matches!(
            store.get(1).unwrap_err(),
            StoreError::DocOutOfRange(1)
        ));
        assert!(matches!(
            store.delete(1).unwrap_err(),
            StoreError::DocOutOfRange(1)
        ));
        assert!(matches!(
            store.append(7, b"x").unwrap_err(),
            StoreError::DocOutOfRange(7)
        ));
        assert_eq!(store.num_docs(), 2, "deleted ids stay assigned");
    }

    #[test]
    fn survives_reopen_with_and_without_seal() {
        let dir = TestDir::new("live-reopen");
        let store = LiveStore::create(dir.path(), dict(), PairCoding::ZV, small_config()).unwrap();
        let docs: Vec<Vec<u8>> = (0..40).map(doc).collect();
        for d in &docs {
            store.put(d).unwrap();
        }
        store.append(3, b" extra").unwrap();
        store.delete(5).unwrap();
        drop(store);

        let store = LiveStore::open(dir.path(), small_config()).unwrap();
        assert_eq!(store.num_docs(), 40);
        for (i, d) in docs.iter().enumerate() {
            match i {
                3 => {
                    let mut want = d.clone();
                    want.extend_from_slice(b" extra");
                    assert_eq!(store.get(i).unwrap(), want);
                }
                5 => assert!(store.get(i).is_err()),
                _ => assert_eq!(&store.get(i).unwrap(), d, "doc {i}"),
            }
        }
        // Sealing happened along the way (512-byte threshold), so reads
        // span segments and the tail; batch reads agree with gets.
        let ids: Vec<u32> = (0..40).filter(|&i| i != 5).collect();
        let batch = store.get_batch(&ids, 4).unwrap();
        for (slot, &id) in ids.iter().enumerate() {
            assert_eq!(batch[slot], store.get(id as usize).unwrap());
        }
        // An explicit seal drains the tail and the WAL.
        store.seal().unwrap();
        assert_eq!(store.wal_len(), 0);
        drop(store);
        let store = LiveStore::open(dir.path(), small_config()).unwrap();
        assert_eq!(store.recovery().replayed_frames, 0);
        assert_eq!(store.get(2).unwrap(), docs[2]);
    }

    #[test]
    fn snapshot_is_immutable_across_writes_and_seals() {
        let dir = TestDir::new("live-snapshot");
        let store = LiveStore::create(dir.path(), dict(), PairCoding::ZV, small_config()).unwrap();
        store.put(&doc(0)).unwrap();
        let pinned = store.snapshot();
        assert_eq!(pinned.num_docs(), 1);
        store.put(&doc(1)).unwrap();
        store.delete(0).unwrap();
        store.seal().unwrap();
        // The pinned epoch still serves doc 0 and has never heard of 1.
        assert_eq!(pinned.get(0).unwrap(), doc(0));
        assert!(pinned.get(1).is_err());
        assert_eq!(store.snapshot().num_docs(), 2);
    }

    #[test]
    fn wal_bound_seals_to_drain_instead_of_wedging() {
        // The reviewer's wedge scenario: the tail-size seal trigger is
        // unreachable (seal_bytes = MAX), so only the WAL-length triggers
        // keep the log drainable. Writes must never wedge on WalFull.
        let dir = TestDir::new("live-walbound");
        let config = LiveConfig {
            fsync: FsyncPolicy::Always,
            seal_bytes: u64::MAX,
            wal_soft_bytes: u64::MAX, // isolate the hard-bound machinery
            wal_max_bytes: 2048,
        };
        let store = LiveStore::create(dir.path(), dict(), PairCoding::ZV, config).unwrap();
        let docs: Vec<Vec<u8>> = (0..200).map(doc).collect();
        for d in &docs {
            store.put(d).unwrap(); // never WalFull
        }
        assert!(
            store.wal_len() < config.wal_max_bytes,
            "auto-seal kept the log below its hard bound"
        );
        assert_eq!(store.seal_failures(), 0);
        // Delete-heavy traffic: tombstones add no tail bytes, so only the
        // WAL-length trigger can drain the log here. Before the fix this
        // wedged permanently once the log filled with DELETE frames.
        for id in 0..docs.len() as u32 {
            store.delete(id).unwrap();
        }
        assert!(store.wal_len() < config.wal_max_bytes);
        drop(store);
        // Restart lands in the same healthy state: all deletes took.
        let store = LiveStore::open(dir.path(), config).unwrap();
        assert_eq!(store.num_docs(), docs.len());
        for id in 0..docs.len() {
            assert!(store.get(id).is_err(), "doc {id} stays deleted");
        }
        store.put(&doc(999)).unwrap();
    }

    #[test]
    fn write_pressure_trips_at_soft_bound_while_reads_serve() {
        let dir = TestDir::new("live-pressure");
        let config = LiveConfig {
            fsync: FsyncPolicy::Always,
            seal_bytes: u64::MAX,
            wal_soft_bytes: 64,
            wal_max_bytes: 1 << 30, // backlog grows; auto-seal far away
        };
        let store = LiveStore::create(dir.path(), dict(), PairCoding::ZV, config).unwrap();
        for i in 0..10 {
            store.put(&doc(i)).unwrap();
        }
        assert!(store.write_pressure(), "soft bound passed");
        // Reads keep working while the server would shed writes.
        assert_eq!(store.get(0).unwrap(), doc(0));
        store.seal().unwrap();
        assert!(!store.write_pressure(), "seal drains the backlog");
        assert_eq!(store.wal_len(), 0);
    }

    #[test]
    fn interval_policy_background_flusher_syncs_idle_tail() {
        use std::time::{Duration, Instant};
        let dir = TestDir::new("live-flusher");
        let config = LiveConfig {
            fsync: FsyncPolicy::Interval(Duration::from_millis(20)),
            ..LiveConfig::default()
        };
        let store = LiveStore::create(dir.path(), dict(), PairCoding::ZV, config).unwrap();
        store.put(&doc(0)).unwrap();
        // No further writes arrive; the background flusher alone must push
        // the frame to stable storage within the interval (the documented
        // bounded-loss-window guarantee).
        let deadline = Instant::now() + Duration::from_secs(10);
        while store.unsynced_frames() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(store.unsynced_frames(), 0, "flusher synced the idle tail");
    }

    #[test]
    fn injected_crash_points_recover_acked_prefix() {
        // Crash on every append index 0..N with a range of torn-write
        // lengths: after reopening, the store holds exactly the writes
        // whose WAL frame was fully acknowledged — byte-identical — and
        // nothing else. This is the in-process twin of the SIGKILL
        // harness in tests/crash_recovery.rs.
        let docs: Vec<Vec<u8>> = (0..6).map(doc).collect();
        for crash_at in 0..6u64 {
            for torn in [0usize, 1, 7, 64, usize::MAX] {
                let dir = TestDir::new("live-crash");
                LiveStore::create(dir.path(), dict(), PairCoding::ZV, LiveConfig::default())
                    .unwrap();
                let plan = FaultPlan {
                    crash_after_appends: Some(crash_at),
                    torn_write_bytes: torn,
                    ..FaultPlan::default()
                };
                let store = LiveStore::open_with_media(dir.path(), LiveConfig::default(), |m| {
                    Box::new(FaultMedia::new(Box::new(m), &plan))
                })
                .unwrap();
                let mut acked = 0usize;
                for d in &docs {
                    match store.put(d) {
                        Ok(_) => acked += 1,
                        Err(_) => break,
                    }
                }
                assert_eq!(acked, crash_at as usize, "acks stop at the crash point");
                drop(store);
                let store = LiveStore::open(dir.path(), LiveConfig::default()).unwrap();
                // Every acked doc survives. The one in-flight write may
                // also survive — exactly when its torn prefix happened to
                // contain the whole frame — but then it is whole and
                // byte-identical, never garbled, and nothing beyond it
                // ever appears.
                let recovered = store.num_docs();
                assert!(
                    recovered == acked || recovered == acked + 1,
                    "crash_at {crash_at} torn {torn}: recovered {recovered}, acked {acked}"
                );
                for (i, d) in docs.iter().take(recovered).enumerate() {
                    assert_eq!(&store.get(i).unwrap(), d, "crash_at {crash_at} torn {torn}");
                }
            }
        }
    }

    #[test]
    fn scrub_reports_torn_wal_and_corrupt_segment_records() {
        let dir = TestDir::new("live-scrub");
        let store = LiveStore::create(dir.path(), dict(), PairCoding::ZV, small_config()).unwrap();
        for i in 0..30 {
            store.put(&doc(i)).unwrap();
        }
        store.seal().unwrap();
        store.put(&doc(30)).unwrap();
        assert!(store.scrub().unwrap().is_clean());
        drop(store);
        // Tear the WAL tail and flip a bit in the first segment's payload.
        let wal_path = dir.path().join(WAL_FILE);
        let mut wal = std::fs::read(&wal_path).unwrap();
        wal.truncate(wal.len() - 3);
        std::fs::write(&wal_path, wal).unwrap();
        let manifest = Manifest::load(dir.path()).unwrap();
        let seg_path = dir
            .path()
            .join(crate::segment_file_name(manifest.segments[0]));
        let mut seg = std::fs::read(&seg_path).unwrap();
        seg[6] ^= 0x08;
        std::fs::write(&seg_path, seg).unwrap();
        let report = scrub_live(dir.path()).unwrap();
        assert!(!report.is_clean());
        assert!(
            report
                .bad
                .iter()
                .any(|u| u.block.is_none() && u.doc_ids.is_empty()),
            "torn WAL reported"
        );
        let bad_ids = report.bad_doc_ids();
        assert!(!bad_ids.is_empty(), "corrupt segment record names its doc");
        // Quarantining those ids makes reads pre-fail typed after reopen.
        crate::write_quarantine(dir.path(), &bad_ids).unwrap();
        let store = LiveStore::open(dir.path(), small_config()).unwrap();
        assert!(matches!(
            store.get(bad_ids[0] as usize).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
    }
}
