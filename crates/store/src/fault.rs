//! Deterministic fault injection for the storage layer.
//!
//! [`FaultBackend`] wraps any [`StorageBackend`] and corrupts reads
//! according to a [`FaultPlan`]: seeded bit flips, a truncation point
//! (reads past it fail like a short read), and injected I/O errors over
//! byte ranges. Every fault is deterministic — the same plan produces the
//! same failures — so containment tests can assert exactly which documents
//! a fault takes down and that every other document still decodes
//! byte-identically.
//!
//! The plan is mutable after the store is opened (it sits behind a mutex
//! shared by all clones of the backend handle), so a test can open a clean
//! store, take a baseline, arm a fault, and diff the outcome.

use crate::backend::StorageBackend;
use crate::StoreError;
use std::io;
use std::sync::{Arc, Mutex};

/// What to break, applied to every read that overlaps it.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// `(byte offset, xor mask)` pairs: any read covering `offset` sees the
    /// byte XORed with the mask (bit rot).
    pub bit_flips: Vec<(u64, u8)>,
    /// Effective end of the file: [`len`](StorageBackend::len) is clamped
    /// to this and reads past it fail with `UnexpectedEof` (a truncated
    /// file, or equivalently a persistent short read).
    pub truncate_at: Option<u64>,
    /// `[start, end)` byte ranges where reads fail with an injected I/O
    /// error (a bad sector returning EIO).
    pub eio_ranges: Vec<(u64, u64)>,
    /// Write-side crash point, honored by [`FaultMedia`]: the process
    /// "dies" on the Nth WAL append (0-based) — that append persists only
    /// its first [`torn_write_bytes`](FaultPlan::torn_write_bytes) bytes
    /// and every later append or sync fails without persisting anything,
    /// so the surviving file is exactly what a real `kill -9` would leave.
    pub crash_after_appends: Option<u64>,
    /// How many bytes of the crashing append reach the media before the
    /// simulated crash (a torn write). 0 = the frame vanishes whole.
    pub torn_write_bytes: usize,
}

impl FaultPlan {
    /// `flips` single-bit faults spread deterministically over `[0, len)`
    /// by an xorshift stream seeded with `seed` — the classic bit-rot
    /// scenario, reproducible from the seed alone.
    pub fn seeded_bit_flips(seed: u64, flips: usize, len: u64) -> Self {
        // Scramble the seed first (adjacent seeds would otherwise collide
        // under the `| 1` zero-guard), then guard against the xorshift
        // zero fixed point.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let bit_flips = (0..flips)
            .map(|_| {
                let offset = if len == 0 { 0 } else { next() % len };
                let mask = 1u8 << (next() % 8);
                (offset, mask)
            })
            .collect();
        FaultPlan {
            bit_flips,
            ..FaultPlan::default()
        }
    }
}

/// A [`StorageBackend`] decorator that injects the faults in its
/// [`FaultPlan`]. Open a store over it with the family's
/// `open_with_backend` constructor; keep a second [`Arc`] to re-arm the
/// plan mid-test via [`set_plan`](FaultBackend::set_plan) /
/// [`clear`](FaultBackend::clear).
#[derive(Debug)]
pub struct FaultBackend {
    inner: Arc<dyn StorageBackend>,
    plan: Mutex<FaultPlan>,
}

impl FaultBackend {
    /// Wraps `inner` with no faults armed.
    pub fn new(inner: Arc<dyn StorageBackend>) -> Arc<Self> {
        Arc::new(FaultBackend {
            inner,
            plan: Mutex::new(FaultPlan::default()),
        })
    }

    /// Wraps `inner` with `plan` already armed.
    pub fn with_plan(inner: Arc<dyn StorageBackend>, plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultBackend {
            inner,
            plan: Mutex::new(plan),
        })
    }

    /// Replaces the active plan.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock().expect("no poisoning") = plan;
    }

    /// Disarms every fault: subsequent reads pass through unchanged.
    pub fn clear(&self) {
        self.set_plan(FaultPlan::default());
    }
}

/// A [`WalMedia`](crate::WalMedia) decorator injecting the write-side
/// faults of a [`FaultPlan`]: a crash point (by append count) and a torn
/// final write. After the simulated crash the wrapped file holds exactly
/// the bytes a `kill -9` at that instant would have left, so a test
/// reopens the directory normally and exercises the true recovery path.
pub struct FaultMedia {
    inner: Box<dyn crate::WalMedia>,
    crash_after_appends: Option<u64>,
    torn_write_bytes: usize,
    appends: u64,
    crashed: bool,
}

impl FaultMedia {
    /// Wraps `inner`, taking the write-side faults from `plan` (the
    /// read-side fields are ignored here — arm those on a
    /// [`FaultBackend`]).
    pub fn new(inner: Box<dyn crate::WalMedia>, plan: &FaultPlan) -> Self {
        FaultMedia {
            inner,
            crash_after_appends: plan.crash_after_appends,
            torn_write_bytes: plan.torn_write_bytes,
            appends: 0,
            crashed: false,
        }
    }
}

impl crate::WalMedia for FaultMedia {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        if self.crashed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected crash: writer process is gone",
            ));
        }
        if self.crash_after_appends == Some(self.appends) {
            // The crashing write: only a prefix reaches the media.
            let torn = self.torn_write_bytes.min(buf.len());
            self.inner.append(&buf[..torn])?;
            self.crashed = true;
            self.appends += 1;
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected crash mid-append (torn write)",
            ));
        }
        self.appends += 1;
        self.inner.append(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.crashed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected crash: writer process is gone",
            ));
        }
        self.inner.sync()
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        if self.crashed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected crash: writer process is gone",
            ));
        }
        self.inner.truncate(len)
    }
}

impl StorageBackend for FaultBackend {
    fn len(&self) -> u64 {
        let plan = self.plan.lock().expect("no poisoning");
        match plan.truncate_at {
            Some(t) => self.inner.len().min(t),
            None => self.inner.len(),
        }
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<(), StoreError> {
        let plan = self.plan.lock().expect("no poisoning");
        let end = offset
            .checked_add(buf.len() as u64)
            .ok_or_else(|| StoreError::corrupt("read extent overflows"))?;
        for &(start, stop) in &plan.eio_ranges {
            if offset < stop && start < end {
                return Err(StoreError::Io(io::Error::other(
                    "injected I/O fault (simulated bad sector)",
                )));
            }
        }
        if let Some(t) = plan.truncate_at {
            if end > t {
                return Err(StoreError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "read past injected truncation point",
                )));
            }
        }
        self.inner.read_exact_at(buf, offset)?;
        for &(at, mask) in &plan.bit_flips {
            if at >= offset && at < end {
                buf[(at - offset) as usize] ^= mask;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn backend() -> Arc<FaultBackend> {
        let data: Vec<u8> = (0..=255u8).collect();
        FaultBackend::new(Arc::new(MemBackend::new(data)))
    }

    #[test]
    fn no_faults_passes_through() {
        let b = backend();
        let mut buf = [0u8; 16];
        b.read_exact_at(&mut buf, 100).unwrap();
        assert_eq!(buf[0], 100);
        assert_eq!(b.len(), 256);
    }

    #[test]
    fn bit_flips_hit_only_their_offsets() {
        let b = backend();
        b.set_plan(FaultPlan {
            bit_flips: vec![(10, 0x01), (200, 0x80)],
            ..FaultPlan::default()
        });
        let mut buf = [0u8; 32];
        b.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(buf[10], 10 ^ 0x01);
        assert_eq!(buf[11], 11);
        // A read not covering any flip is untouched.
        b.read_exact_at(&mut buf, 32).unwrap();
        assert_eq!(buf, std::array::from_fn::<u8, 32, _>(|i| (32 + i) as u8));
        b.clear();
        b.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(buf[10], 10);
    }

    #[test]
    fn truncation_clamps_len_and_fails_reads_past_it() {
        let b = backend();
        b.set_plan(FaultPlan {
            truncate_at: Some(64),
            ..FaultPlan::default()
        });
        assert_eq!(b.len(), 64);
        let mut buf = [0u8; 16];
        b.read_exact_at(&mut buf, 48).unwrap();
        let err = b.read_exact_at(&mut buf, 56).unwrap_err();
        assert!(matches!(err, StoreError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof));
    }

    #[test]
    fn eio_ranges_fail_overlapping_reads_only() {
        let b = backend();
        b.set_plan(FaultPlan {
            eio_ranges: vec![(100, 110)],
            ..FaultPlan::default()
        });
        let mut buf = [0u8; 10];
        b.read_exact_at(&mut buf, 80).unwrap();
        assert!(b.read_exact_at(&mut buf, 95).is_err());
        assert!(b.read_exact_at(&mut buf, 105).is_err());
        b.read_exact_at(&mut buf, 110).unwrap();
    }

    #[test]
    fn seeded_flips_are_deterministic() {
        let a = FaultPlan::seeded_bit_flips(42, 8, 1 << 20);
        let b = FaultPlan::seeded_bit_flips(42, 8, 1 << 20);
        assert_eq!(a.bit_flips, b.bit_flips);
        let c = FaultPlan::seeded_bit_flips(43, 8, 1 << 20);
        assert_ne!(a.bit_flips, c.bit_flips);
        assert!(a
            .bit_flips
            .iter()
            .all(|&(o, m)| o < (1 << 20) && m.is_power_of_two()));
    }
}
