//! Bounded-memory, parallel, streaming store construction.
//!
//! The batch builders materialize the corpus (and every encoded record)
//! before anything reaches disk, so peak RSS grows with the collection.
//! This module rebuilds construction as a three-stage pipeline whose
//! memory is **O(dictionary + in-flight blocks)** — the corpus streams
//! through and never sits in RAM:
//!
//! * a **reader** packs the incoming document stream into *master blocks*
//!   of whole documents (`block_bytes` budget, zopfli's
//!   `ZOPFLI_MASTER_BLOCK_SIZE` idiom: factorize huge inputs in
//!   independent large blocks at negligible ratio cost — a document larger
//!   than the budget gets a block of its own, it is never split);
//! * a pool of **workers** compresses blocks independently against the
//!   shared dictionary, each with a per-thread [`rlz_core::EncodeScratch`]
//!   mirroring the read side's `DecodeScratch`;
//! * one **writer** consumes completed blocks *in sequence order* and
//!   appends records/blocks/checksums/docmap through the store family's
//!   streamed writer ([`crate::AsciiWriter`] / [`crate::RlzWriter`] /
//!   [`crate::BlockedWriter`]'s sink).
//!
//! Both inter-stage channels are bounded ([`BuildConfig::queued_blocks`]),
//! so a slow writer backpressures the workers and a slow reader starves
//! them — nothing accumulates. The writer's reorder buffer is bounded by
//! the same arithmetic ([`BuildConfig::max_inflight_blocks`]).
//!
//! Block boundaries only cut *between* documents and compression is per
//! document (RLZ) or per storage block packed by the exact batch rule
//! (blocked), so the emitted store is **byte-identical** to the serial
//! oracle — asserted per family by the `build_stream` proptests.

use crate::blocked::{BlockPacker, BlockedSink, RawBlock};
use crate::{AsciiWriter, BlockCodec, RlzWriter, StoreError};
use rlz_core::RlzCompressor;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::path::Path;
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};

/// Configuration for the chunked build pipeline, shared by every build
/// binary (`--threads` / `--block-bytes` plumb into this instead of
/// ad-hoc arguments).
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Worker threads compressing master blocks. Defaults to
    /// `std::thread::available_parallelism()`.
    pub threads: usize,
    /// Master-block budget in bytes: the reader packs whole documents into
    /// blocks of roughly this size (a single larger document still forms
    /// one block). Default 1 MiB.
    pub block_bytes: usize,
    /// Capacity of each bounded inter-stage channel, in blocks — the
    /// backpressure knob. Default 4.
    pub queued_blocks: usize,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            block_bytes: 1 << 20,
            queued_blocks: 4,
        }
    }
}

impl BuildConfig {
    /// Upper bound on master blocks resident at once: the reader queue,
    /// one in each worker, the results queue, the writer's reorder buffer
    /// (bounded by the same arithmetic) and the block being packed. The
    /// pipeline's raw-byte high-water mark is
    /// `max_inflight_blocks() * block_bytes` plus one oversized document,
    /// which is what the build bench budgets RSS against.
    pub fn max_inflight_blocks(&self) -> usize {
        2 * self.queued_blocks + 2 * self.threads.max(1) + 1
    }
}

/// What a completed chunked build processed (the bench's throughput
/// denominators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BuildReport {
    /// Documents written.
    pub docs: u64,
    /// Raw (uncompressed) corpus bytes consumed.
    pub raw_bytes: u64,
    /// Master blocks (RLZ/ascii) or storage blocks (blocked) processed.
    pub blocks: u64,
}

/// Reader → workers → in-order writer over bounded channels. `blocks` is
/// drained on a spawned reader thread; `work` runs on `threads` workers;
/// `emit` observes results in exactly the order `blocks` yielded their
/// inputs, on the calling thread. On an `emit` error the channels are
/// dropped, upstream stages unwind, and the error is returned.
fn run_pipeline<B, R>(
    blocks: impl Iterator<Item = B> + Send,
    threads: usize,
    queued: usize,
    work: impl Fn(B) -> R + Sync,
    mut emit: impl FnMut(R) -> Result<(), StoreError>,
) -> Result<(), StoreError>
where
    B: Send,
    R: Send,
{
    let threads = threads.max(1);
    let queued = queued.max(1);
    let (block_tx, block_rx) = sync_channel::<(u64, B)>(queued);
    // The std receiver is `!Sync`, so workers share it behind a mutex; the
    // lock is held only for the dequeue, never during compression.
    let block_rx = Arc::new(Mutex::new(block_rx));
    let (result_tx, result_rx) = sync_channel::<(u64, R)>(queued);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for item in blocks.enumerate() {
                // A send error means the pipeline shut down early (writer
                // error); just stop reading.
                if block_tx.send((item.0 as u64, item.1)).is_err() {
                    break;
                }
            }
        });
        for _ in 0..threads {
            let block_rx = Arc::clone(&block_rx);
            let result_tx = result_tx.clone();
            let work = &work;
            scope.spawn(move || loop {
                let msg = block_rx.lock().expect("no poisoning").recv();
                let Ok((seq, block)) = msg else { break };
                if result_tx.send((seq, work(block))).is_err() {
                    break;
                }
            });
        }
        // The workers now hold the only handles to their channels. Dropping
        // the originals here matters on the error path: if `emit` fails the
        // writer drops `result_rx`, the workers' sends fail and they exit,
        // and the shared block receiver must die *with them* so the
        // reader's send fails too — a strong ref surviving in this frame
        // would leave the reader blocked and the scope joining forever.
        drop(block_rx);
        drop(result_tx);

        // In-order emission: results arrive in completion order; hold the
        // out-of-order ones (bounded by the in-flight arithmetic) until
        // their turn.
        let mut pending: BTreeMap<u64, R> = BTreeMap::new();
        let mut next_seq = 0u64;
        let mut outcome = Ok(());
        'recv: while let Ok((seq, result)) = result_rx.recv() {
            pending.insert(seq, result);
            while let Some(result) = pending.remove(&next_seq) {
                if let Err(e) = emit(result) {
                    outcome = Err(e);
                    break 'recv;
                }
                next_seq += 1;
            }
        }
        // Dropping the receiver fails the workers' sends; workers exiting
        // drop the shared block receiver, failing the reader's sends — the
        // scope then joins everything.
        drop(result_rx);
        outcome
    })
}

/// One master block of whole documents, concatenated.
#[derive(Default)]
struct DocChunk {
    bytes: Vec<u8>,
    lens: Vec<usize>,
}

/// Packs a document stream into master blocks of at most `block_bytes`
/// (one oversized document still forms a block; documents are never
/// split).
fn doc_chunks(
    mut docs: impl Iterator<Item = Vec<u8>>,
    block_bytes: usize,
) -> impl Iterator<Item = DocChunk> {
    let block_bytes = block_bytes.max(1);
    let mut carry: Option<Vec<u8>> = None;
    let mut done = false;
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        let mut chunk = DocChunk::default();
        while let Some(doc) = carry.take().or_else(|| docs.next()) {
            if !chunk.lens.is_empty() && chunk.bytes.len() + doc.len() > block_bytes {
                carry = Some(doc);
                return Some(chunk);
            }
            chunk.bytes.extend_from_slice(&doc);
            chunk.lens.push(doc.len());
        }
        done = true;
        if chunk.lens.is_empty() {
            None
        } else {
            Some(chunk)
        }
    })
}

/// Builds an RLZ store from a document stream with bounded memory:
/// workers factorize master blocks against `compressor`'s shared
/// dictionary (per-thread encode scratch), the writer streams encoded
/// records to disk in document order. Byte-identical to
/// [`crate::RlzStoreBuilder::build`] over the same documents.
pub fn build_rlz_chunked(
    dir: &Path,
    compressor: &RlzCompressor,
    docs: impl Iterator<Item = Vec<u8>> + Send,
    cfg: &BuildConfig,
) -> Result<BuildReport, StoreError> {
    struct EncodedChunk {
        bytes: Vec<u8>,
        lens: Vec<usize>,
        raw_bytes: u64,
    }
    let mut writer = RlzWriter::create(dir, compressor.dict().bytes(), compressor.coding())?;
    let mut report = BuildReport::default();
    run_pipeline(
        doc_chunks(docs, cfg.block_bytes),
        cfg.threads,
        cfg.queued_blocks,
        |chunk: DocChunk| {
            let mut bytes = Vec::new();
            let mut lens = Vec::with_capacity(chunk.lens.len());
            crate::with_encode_scratch(|scratch| {
                let mut at = 0usize;
                for &len in &chunk.lens {
                    let start = bytes.len();
                    compressor.compress_with(&chunk.bytes[at..at + len], scratch, &mut bytes);
                    lens.push(bytes.len() - start);
                    at += len;
                }
            });
            EncodedChunk {
                bytes,
                lens,
                raw_bytes: chunk.bytes.len() as u64,
            }
        },
        |enc: EncodedChunk| {
            let mut at = 0usize;
            for &len in &enc.lens {
                writer.append_encoded(&enc.bytes[at..at + len])?;
                at += len;
            }
            report.docs += enc.lens.len() as u64;
            report.raw_bytes += enc.raw_bytes;
            report.blocks += 1;
            Ok(())
        },
    )?;
    writer.finish()?;
    Ok(report)
}

/// Builds a blocked store from a document stream with bounded memory:
/// the reader packs storage blocks with the exact batch-builder rule,
/// workers compress them, the writer emits them in order. Byte-identical
/// to [`crate::BlockedStore::build`] over the same documents.
///
/// `block_size` is the *storage* block budget (0 = one document per
/// block), which doubles as the pipeline's work granularity;
/// [`BuildConfig::block_bytes`] is not used here.
pub fn build_blocked_chunked(
    dir: &Path,
    codec: BlockCodec,
    block_size: usize,
    docs: impl Iterator<Item = Vec<u8>> + Send,
    cfg: &BuildConfig,
) -> Result<BuildReport, StoreError> {
    /// Reader → worker items: packed storage blocks, then (last) the
    /// docmap lengths of any trailing zero-length documents without a
    /// block of their own.
    enum Item {
        Packed(RawBlock),
        Trailing(Vec<usize>),
    }
    enum Done {
        Block(RawBlock, Vec<u8>),
        Trailing(Vec<usize>),
    }
    let mut packer = Some(BlockPacker::new(block_size));
    let mut docs = docs;
    let mut queue: VecDeque<Item> = VecDeque::new();
    let blocks = std::iter::from_fn(move || loop {
        if let Some(item) = queue.pop_front() {
            return Some(item);
        }
        let p = packer.as_mut()?;
        match docs.next() {
            Some(doc) => {
                if let Some(block) = p.push(&doc) {
                    return Some(Item::Packed(block));
                }
            }
            None => {
                let (tail, trailing) = packer.take().expect("packer present").finish();
                if let Some(block) = tail {
                    queue.push_back(Item::Packed(block));
                }
                if !trailing.is_empty() {
                    queue.push_back(Item::Trailing(trailing));
                }
            }
        }
    });

    let mut sink = BlockedSink::create(dir, codec)?;
    let mut report = BuildReport::default();
    run_pipeline(
        blocks,
        cfg.threads,
        cfg.queued_blocks,
        |item: Item| match item {
            Item::Packed(raw) => {
                let comp = codec.compress(&raw.bytes);
                Done::Block(raw, comp)
            }
            Item::Trailing(lens) => Done::Trailing(lens),
        },
        |done: Done| {
            match done {
                Done::Block(raw, comp) => {
                    report.docs += raw.doc_lens.len() as u64;
                    report.raw_bytes += raw.bytes.len() as u64;
                    report.blocks += 1;
                    sink.append_compressed(&raw, &comp)?;
                }
                Done::Trailing(lens) => {
                    report.docs += lens.len() as u64;
                    sink.append_trailing_doc_lens(&lens);
                }
            }
            Ok(())
        },
    )?;
    sink.finish()?;
    Ok(report)
}

/// Builds an uncompressed [`crate::AsciiStore`] from a document stream
/// with bounded memory. There is no CPU stage to parallelize — the
/// "pipeline" degenerates to the streamed [`AsciiWriter`] — but the entry
/// point exists so every family builds through the same `BuildConfig`
/// surface. Byte-identical to [`crate::AsciiStore::build`].
pub fn build_ascii_chunked(
    dir: &Path,
    docs: impl Iterator<Item = Vec<u8>>,
    _cfg: &BuildConfig,
) -> Result<BuildReport, StoreError> {
    let mut writer = AsciiWriter::create(dir)?;
    let mut report = BuildReport::default();
    for doc in docs {
        writer.append(&doc)?;
        report.docs += 1;
        report.raw_bytes += doc.len() as u64;
    }
    report.blocks = report.docs;
    writer.finish()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;
    use crate::{AsciiStore, BlockedStore, DocStore, RlzStore, RlzStoreBuilder};
    use rlz_core::{Dictionary, PairCoding, SampleStrategy};

    fn corpus() -> Vec<Vec<u8>> {
        (0..300)
            .map(|i| {
                format!(
                    "<doc {i}><nav>home products</nav><p>{}</p></doc>",
                    "shared phrase ".repeat(i % 31)
                )
                .into_bytes()
            })
            .collect()
    }

    fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
        let mut out = BTreeMap::new();
        for entry in std::fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            out.insert(
                entry.file_name().to_string_lossy().into_owned(),
                std::fs::read(entry.path()).unwrap(),
            );
        }
        out
    }

    #[test]
    fn rlz_chunked_matches_serial_oracle() {
        let docs = corpus();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, 2048, 256, SampleStrategy::Evenly);
        let serial = TestDir::new("build-rlz-serial");
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        let builder = RlzStoreBuilder::new(dict, PairCoding::ZV).threads(2);
        builder.build(serial.path(), &slices).unwrap();

        for (threads, block_bytes) in [(1usize, 512usize), (4, 4096), (3, 1)] {
            let chunked = TestDir::new(&format!("build-rlz-chunked-{threads}-{block_bytes}"));
            let cfg = BuildConfig {
                threads,
                block_bytes,
                queued_blocks: 2,
            };
            let report = build_rlz_chunked(
                chunked.path(),
                builder.compressor(),
                docs.iter().cloned(),
                &cfg,
            )
            .unwrap();
            assert_eq!(report.docs, docs.len() as u64);
            assert_eq!(report.raw_bytes, all.len() as u64);
            assert_eq!(
                dir_bytes(serial.path()),
                dir_bytes(chunked.path()),
                "threads {threads} block {block_bytes}"
            );
            let store = RlzStore::open(chunked.path()).unwrap();
            for (i, doc) in docs.iter().enumerate() {
                assert_eq!(&store.get(i).unwrap(), doc);
            }
        }
    }

    #[test]
    fn blocked_chunked_matches_serial_oracle() {
        let docs = corpus();
        for block_size in [0usize, 4096] {
            let serial = TestDir::new(&format!("build-blocked-serial-{block_size}"));
            let codec = BlockCodec::Zlite(rlz_zlite::Level::Default);
            BlockedStore::build(
                serial.path(),
                docs.iter().map(|d| d.as_slice()),
                codec,
                block_size,
                2,
            )
            .unwrap();
            let chunked = TestDir::new(&format!("build-blocked-chunked-{block_size}"));
            let cfg = BuildConfig {
                threads: 4,
                block_bytes: 1 << 20,
                queued_blocks: 2,
            };
            build_blocked_chunked(
                chunked.path(),
                codec,
                block_size,
                docs.iter().cloned(),
                &cfg,
            )
            .unwrap();
            assert_eq!(dir_bytes(serial.path()), dir_bytes(chunked.path()));
        }
    }

    #[test]
    fn ascii_chunked_matches_serial_oracle() {
        let docs = corpus();
        let serial = TestDir::new("build-ascii-serial");
        AsciiStore::build(serial.path(), docs.iter().map(|d| d.as_slice())).unwrap();
        let chunked = TestDir::new("build-ascii-chunked");
        build_ascii_chunked(
            chunked.path(),
            docs.iter().cloned(),
            &BuildConfig::default(),
        )
        .unwrap();
        assert_eq!(dir_bytes(serial.path()), dir_bytes(chunked.path()));
    }

    #[test]
    fn oversized_document_forms_its_own_block() {
        let docs = vec![vec![b'a'; 10], vec![b'b'; 5000], vec![b'c'; 10]];
        let chunks: Vec<DocChunk> = doc_chunks(docs.clone().into_iter(), 64).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[1].bytes.len(), 5000);
        assert_eq!(
            chunks.iter().map(|c| c.lens.len()).sum::<usize>(),
            docs.len()
        );
    }

    #[test]
    fn empty_stream_builds_empty_stores() {
        let cfg = BuildConfig::default();
        let dict = Dictionary::from_bytes(b"seed".to_vec());
        let comp = RlzCompressor::new(dict, PairCoding::UV);
        let rlz = TestDir::new("build-empty-rlz");
        let report = build_rlz_chunked(rlz.path(), &comp, std::iter::empty(), &cfg).unwrap();
        assert_eq!(report.docs, 0);
        assert_eq!(RlzStore::open(rlz.path()).unwrap().num_docs(), 0);

        let blocked = TestDir::new("build-empty-blocked");
        let serial = TestDir::new("build-empty-blocked-serial");
        let codec = BlockCodec::Zlite(rlz_zlite::Level::Default);
        build_blocked_chunked(blocked.path(), codec, 4096, std::iter::empty(), &cfg).unwrap();
        BlockedStore::build(serial.path(), std::iter::empty(), codec, 4096, 1).unwrap();
        assert_eq!(dir_bytes(serial.path()), dir_bytes(blocked.path()));
    }

    #[test]
    fn writer_error_unwinds_the_pipeline() {
        // An emit error must propagate out of run_pipeline without
        // deadlocking reader or workers.
        let err = run_pipeline(
            (0..10_000u64).map(|i| vec![i as u8; 64]),
            2,
            2,
            |b: Vec<u8>| b,
            |_b: Vec<u8>| Err(StoreError::corrupt("synthetic writer failure")),
        );
        assert!(matches!(err, Err(StoreError::Corrupt { .. })));
    }
}
