//! Offline integrity scrubbing and corruption quarantine.
//!
//! A long-lived archive accumulates silent faults: bit rot in a payload,
//! a truncated file after a crash, a bad sector. The scrub path
//! ([`BlockedStore::scrub`](crate::BlockedStore::scrub),
//! [`RlzStore::scrub`](crate::RlzStore::scrub),
//! [`AsciiStore::scrub`](crate::AsciiStore::scrub), and the `rlz-verify`
//! bin over all three) walks a store's payload verifying every checksum —
//! or, on legacy layouts without checksums, attempting a full decode — and
//! reports exactly which blocks and documents are unreadable.
//!
//! The report can be **quarantined**: `rlz-verify --quarantine` writes the
//! bad doc ids to a `quarantine.bin` sidecar that every store family loads
//! on open. Quarantined ids pre-fail with a typed
//! [`StoreError::Corrupt`](crate::StoreError) before any I/O, so a known-bad
//! region stops costing reads (and re-reporting checksum work) until the
//! store is repaired and the sidecar removed.
//!
//! Sidecar formats (both little-endian, hardened against untrusted input):
//!
//! * `sums.bin` — `"RLZS"`, version byte `1`, vbyte record count, then one
//!   `u32` CRC32C per record. Used by [`AsciiStore`](crate::AsciiStore)
//!   (whose data file has no headers to version) and `RlzStore`.
//! * `quarantine.bin` — `"RLZQ"`, version byte `1`, vbyte count, then
//!   strictly-increasing doc ids as vbyte deltas.

use crate::{Integrity, StoreError};
use rlz_codecs::vbyte;
use std::path::Path;

/// Per-record checksum sidecar (`AsciiStore`, `RlzStore`).
pub(crate) const SUMS_FILE: &str = "sums.bin";
/// Quarantined-doc sidecar written by `rlz-verify --quarantine`.
pub const QUARANTINE_FILE: &str = "quarantine.bin";

const SUMS_MAGIC: &[u8; 4] = b"RLZS";
const QUARANTINE_MAGIC: &[u8; 4] = b"RLZQ";

/// One corrupt unit found by a scrub: a block (blocked stores) or a single
/// record (ascii / RLZ stores), plus every doc id it makes unreadable.
#[derive(Debug)]
pub struct BadUnit {
    /// Block index for blocked stores; `None` for per-record stores.
    pub block: Option<u32>,
    /// Doc ids that cannot be served while this unit is corrupt.
    pub doc_ids: Vec<u32>,
    /// What failed.
    pub error: StoreError,
}

/// Outcome of scrubbing one store.
#[derive(Debug)]
pub struct ScrubReport {
    /// Integrity level of the scanned store (checksummed stores verify
    /// CRCs; legacy stores fall back to trial decodes).
    pub integrity: Integrity,
    /// Units (blocks or records) scanned.
    pub units: u64,
    /// Payload bytes read and verified.
    pub bytes: u64,
    /// Corrupt units, in payload order.
    pub bad: Vec<BadUnit>,
}

impl ScrubReport {
    pub(crate) fn new(integrity: Integrity) -> Self {
        ScrubReport {
            integrity,
            units: 0,
            bytes: 0,
            bad: Vec::new(),
        }
    }

    /// True when every unit verified clean.
    pub fn is_clean(&self) -> bool {
        self.bad.is_empty()
    }

    /// All unreadable doc ids, sorted and deduplicated — the set
    /// `--quarantine` writes.
    pub fn bad_doc_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .bad
            .iter()
            .flat_map(|u| u.doc_ids.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Serializes per-record CRCs into the `sums.bin` sidecar format.
pub(crate) fn encode_sums(sums: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + 5 + sums.len() * 4);
    out.extend_from_slice(SUMS_MAGIC);
    out.push(1);
    vbyte::write_u64(sums.len() as u64, &mut out);
    for &s in sums {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// Parses a `sums.bin` sidecar, requiring exactly `expect` records.
pub(crate) fn decode_sums(data: &[u8], expect: usize) -> Result<Vec<u32>, StoreError> {
    let rest = data
        .strip_prefix(SUMS_MAGIC.as_slice())
        .ok_or_else(|| StoreError::corrupt("checksum sidecar has wrong magic"))?;
    let (&version, rest) = rest
        .split_first()
        .ok_or_else(|| StoreError::corrupt("truncated checksum sidecar"))?;
    if version != 1 {
        return Err(StoreError::corrupt("unknown checksum sidecar version"));
    }
    let mut pos = 0usize;
    let n = vbyte::read_u64(rest, &mut pos)? as usize;
    if n != expect {
        return Err(StoreError::corrupt(
            "checksum sidecar count mismatches document map",
        ));
    }
    // Exact-size check before the allocation: n u32s need 4n bytes.
    let body = rest
        .get(pos..)
        .filter(|b| b.len() == n.saturating_mul(4))
        .ok_or_else(|| StoreError::corrupt("checksum sidecar length mismatches its count"))?;
    Ok(body
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect())
}

/// Loads the optional `sums.bin` sidecar from a store directory. Absent
/// file → `Ok(None)` (a legacy store without checksums).
pub(crate) fn load_sums(dir: &Path, expect: usize) -> Result<Option<Vec<u32>>, StoreError> {
    match std::fs::read(dir.join(SUMS_FILE)) {
        Ok(data) => Ok(Some(decode_sums(&data, expect)?)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(StoreError::Io(e)),
    }
}

/// Writes the quarantine sidecar listing `ids` (sorted ascending,
/// duplicates removed by the caller — [`ScrubReport::bad_doc_ids`] already
/// returns that shape). An empty list removes any existing sidecar.
pub fn write_quarantine(dir: &Path, ids: &[u32]) -> Result<(), StoreError> {
    let path = dir.join(QUARANTINE_FILE);
    if ids.is_empty() {
        match std::fs::remove_file(&path) {
            Ok(()) => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(StoreError::Io(e)),
        }
    }
    let mut out = Vec::with_capacity(5 + 5 + ids.len());
    out.extend_from_slice(QUARANTINE_MAGIC);
    out.push(1);
    vbyte::write_u64(ids.len() as u64, &mut out);
    let mut prev = 0u32;
    for (i, &id) in ids.iter().enumerate() {
        let delta = if i == 0 { id } else { id - prev - 1 };
        vbyte::write_u32(delta, &mut out);
        prev = id;
    }
    std::fs::write(path, out)?;
    Ok(())
}

/// Loads the quarantine sidecar from a store directory, returning a sorted
/// doc-id list (empty when no sidecar exists). Corrupt sidecars are an
/// open error — a store must not silently serve ids an operator
/// quarantined.
pub(crate) fn load_quarantine(dir: &Path) -> Result<Vec<u32>, StoreError> {
    let data = match std::fs::read(dir.join(QUARANTINE_FILE)) {
        Ok(data) => data,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(StoreError::Io(e)),
    };
    let rest = data
        .strip_prefix(QUARANTINE_MAGIC.as_slice())
        .ok_or_else(|| StoreError::corrupt("quarantine sidecar has wrong magic"))?;
    let (&version, rest) = rest
        .split_first()
        .ok_or_else(|| StoreError::corrupt("truncated quarantine sidecar"))?;
    if version != 1 {
        return Err(StoreError::corrupt("unknown quarantine sidecar version"));
    }
    let mut pos = 0usize;
    let n = vbyte::read_u64(rest, &mut pos)? as usize;
    // Each delta costs at least one byte.
    if n > rest.len() {
        return Err(StoreError::corrupt(
            "quarantine sidecar count exceeds input",
        ));
    }
    let mut ids = Vec::with_capacity(n);
    let mut at = 0u32;
    for i in 0..n {
        let delta = vbyte::read_u32(rest, &mut pos)?;
        at = at
            .checked_add(delta)
            .and_then(|v| if i == 0 { Some(v) } else { v.checked_add(1) })
            .ok_or_else(|| StoreError::corrupt("quarantine sidecar doc id overflow"))?;
        ids.push(at);
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestDir;

    #[test]
    fn sums_roundtrip_and_reject_corruption() {
        let sums = vec![0u32, 0xDEAD_BEEF, 7, u32::MAX];
        let enc = encode_sums(&sums);
        assert_eq!(decode_sums(&enc, 4).unwrap(), sums);
        assert!(decode_sums(&enc, 3).is_err(), "count mismatch");
        assert!(decode_sums(&enc[..enc.len() - 1], 4).is_err(), "truncated");
        assert!(decode_sums(b"XXXX\x01\x00", 0).is_err(), "bad magic");
        let mut huge = enc.clone();
        huge[5] = 0xFF; // count vbyte now claims far more entries
        assert!(decode_sums(&huge, 4).is_err());
    }

    #[test]
    fn quarantine_roundtrip() {
        let dir = TestDir::new("verify-quarantine");
        assert!(load_quarantine(dir.path()).unwrap().is_empty());
        let ids = vec![0u32, 3, 4, 1000, u32::MAX];
        write_quarantine(dir.path(), &ids).unwrap();
        assert_eq!(load_quarantine(dir.path()).unwrap(), ids);
        // Empty list removes the sidecar.
        write_quarantine(dir.path(), &[]).unwrap();
        assert!(load_quarantine(dir.path()).unwrap().is_empty());
        assert!(!dir.path().join(QUARANTINE_FILE).exists());
    }

    #[test]
    fn corrupt_quarantine_is_an_open_error() {
        let dir = TestDir::new("verify-quarantine-bad");
        std::fs::write(
            dir.path().join(QUARANTINE_FILE),
            b"RLZQ\x01\xFF\xFF\xFF\xFF\xFF\x01",
        )
        .unwrap();
        assert!(load_quarantine(dir.path()).is_err());
    }
}
