//! DEFLATE-style length and distance code tables.
//!
//! Match lengths 3..=258 map to 29 length codes, distances 1..=32768 to 30
//! distance codes, each with a base value plus a run of extra bits — the
//! exact tables of RFC 1951, reused here because they are well matched to a
//! 32 KB window.

/// Smallest encodable match length.
pub const MIN_MATCH: usize = 3;
/// Largest encodable match length.
pub const MAX_MATCH: usize = 258;
/// Window size: how far back a match may reach.
pub const WINDOW_SIZE: usize = 32 * 1024;

/// Number of literal/length symbols: 256 literals + end-of-block + 29 lengths.
pub const NUM_LITLEN: usize = 286;
/// The end-of-block symbol.
pub const EOB: u16 = 256;
/// Number of distance symbols.
pub const NUM_DIST: usize = 30;

/// Base match length for each length code (symbol 257 + index).
pub const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];

/// Extra bits carried by each length code.
pub const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];

/// Base distance for each distance code.
pub const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];

/// Extra bits carried by each distance code.
pub const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Maps a match length (3..=258) to `(code_index, extra_value, extra_bits)`.
#[inline]
pub fn length_code(len: usize) -> (u16, u32, u8) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    // Binary search would work; a table of 256 entries is faster and simple.
    let idx = LENGTH_TO_CODE[len - MIN_MATCH] as usize;
    let base = LENGTH_BASE[idx] as usize;
    (idx as u16, (len - base) as u32, LENGTH_EXTRA[idx])
}

/// Maps a distance (1..=32768) to `(code_index, extra_value, extra_bits)`.
#[inline]
pub fn dist_code(dist: usize) -> (u16, u32, u8) {
    debug_assert!((1..=WINDOW_SIZE).contains(&dist));
    let idx = if dist <= 256 {
        DIST_TO_CODE_LOW[dist - 1] as usize
    } else {
        DIST_TO_CODE_HIGH[(dist - 1) >> 7] as usize
    };
    let base = DIST_BASE[idx] as usize;
    (idx as u16, (dist - base) as u32, DIST_EXTRA[idx])
}

/// Length-to-code lookup, one entry per length 3..=258.
static LENGTH_TO_CODE: [u8; 256] = build_length_to_code();

const fn build_length_to_code() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut len = 0usize;
    while len < 256 {
        let actual = len + MIN_MATCH;
        let mut code = 0usize;
        // Find the last code whose base is <= actual.
        let mut i = 0usize;
        while i < 29 {
            if LENGTH_BASE[i] as usize <= actual {
                code = i;
            }
            i += 1;
        }
        table[len] = code as u8;
        len += 1;
    }
    table
}

/// Distance-to-code lookup for distances 1..=256.
static DIST_TO_CODE_LOW: [u8; 256] = build_dist_to_code_low();
/// Distance-to-code lookup for distances 257..=32768, indexed by
/// `(dist - 1) >> 7`.
static DIST_TO_CODE_HIGH: [u8; 256] = build_dist_to_code_high();

const fn code_for_dist(dist: usize) -> u8 {
    let mut code = 0usize;
    let mut i = 0usize;
    while i < 30 {
        if DIST_BASE[i] as usize <= dist {
            code = i;
        }
        i += 1;
    }
    code as u8
}

const fn build_dist_to_code_low() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut d = 0usize;
    while d < 256 {
        table[d] = code_for_dist(d + 1);
        d += 1;
    }
    table
}

const fn build_dist_to_code_high() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut slot = 0usize;
    while slot < 256 {
        // Representative distance for this slot (first distance mapping here).
        let dist = (slot << 7) + 1;
        table[slot] = code_for_dist(dist);
        slot += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_codes_cover_range() {
        for len in MIN_MATCH..=MAX_MATCH {
            let (code, extra, bits) = length_code(len);
            assert!((code as usize) < 29, "len {len}");
            let base = LENGTH_BASE[code as usize] as usize;
            assert_eq!(base + extra as usize, len);
            assert!(
                extra < (1u32 << bits) || (bits == 0 && extra == 0),
                "len {len}"
            );
            assert_eq!(bits, LENGTH_EXTRA[code as usize]);
        }
        // 258 must use the dedicated final code with no extra bits.
        assert_eq!(length_code(258), (28, 0, 0));
        assert_eq!(length_code(3), (0, 0, 0));
    }

    #[test]
    fn dist_codes_cover_range() {
        for dist in 1..=WINDOW_SIZE {
            let (code, extra, bits) = dist_code(dist);
            assert!((code as usize) < 30, "dist {dist}");
            let base = DIST_BASE[code as usize] as usize;
            assert_eq!(base + extra as usize, dist);
            assert!(extra < (1u32 << bits) || (bits == 0 && extra == 0));
        }
        assert_eq!(dist_code(1), (0, 0, 0));
        assert_eq!(dist_code(32768), (29, 8191, 13));
    }

    #[test]
    fn code_boundaries_are_monotone() {
        let mut prev = 0u16;
        for dist in 1..=WINDOW_SIZE {
            let (code, _, _) = dist_code(dist);
            assert!(code >= prev);
            prev = code;
        }
    }
}
