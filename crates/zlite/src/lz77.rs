//! LZ77 match finding over a 32 KB sliding window with hash chains and
//! one-step-lazy evaluation — the same architecture zlib uses, which is the
//! property the paper's baselines depend on (a *small* window that cannot
//! see cross-document redundancy).

use crate::tables::{MAX_MATCH, MIN_MATCH, WINDOW_SIZE};

/// One output token of the matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single byte emitted verbatim.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes behind.
    Match {
        /// Match length, `3..=258`.
        len: u16,
        /// Distance back into the already-emitted text, `1..=32768`.
        dist: u16,
    },
}

/// Effort level, mirroring zlib's speed/ratio dial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Level {
    /// Shallow chains, no lazy matching: fastest.
    Fast,
    /// Moderate chains with lazy matching.
    #[default]
    Default,
    /// Deep chains, always lazy — the paper's "z best compression".
    Best,
}

impl Level {
    fn params(self) -> Params {
        match self {
            Level::Fast => Params {
                max_chain: 16,
                nice_len: 32,
                lazy: false,
            },
            Level::Default => Params {
                max_chain: 128,
                nice_len: 130,
                lazy: true,
            },
            Level::Best => Params {
                max_chain: 1024,
                nice_len: MAX_MATCH,
                lazy: true,
            },
        }
    }
}

struct Params {
    max_chain: usize,
    nice_len: usize,
    lazy: bool,
}

const HASH_BITS: u32 = 15;
const NO_POS: u32 = u32::MAX;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Hash-chain match finder.
pub struct MatchFinder {
    head: Vec<u32>,
    prev: Vec<u32>,
    params: Params,
}

impl MatchFinder {
    /// Creates a finder for an input of length `n`.
    pub fn new(n: usize, level: Level) -> Self {
        MatchFinder {
            head: vec![NO_POS; 1 << HASH_BITS],
            prev: vec![NO_POS; n],
            params: level.params(),
        }
    }

    #[inline]
    fn insert(&mut self, data: &[u8], i: usize) {
        if i + 4 <= data.len() {
            let h = hash4(data, i);
            self.prev[i] = self.head[h];
            self.head[h] = i as u32;
        }
    }

    /// Longest match at position `i`, if any reaches `MIN_MATCH`.
    fn best_match(&self, data: &[u8], i: usize) -> Option<(usize, usize)> {
        if i + MIN_MATCH + 1 > data.len() || i + 4 > data.len() {
            return None;
        }
        let max_len = MAX_MATCH.min(data.len() - i);
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut j = self.head[hash4(data, i)];
        let mut chain = self.params.max_chain;
        while j != NO_POS && chain > 0 {
            let jj = j as usize;
            debug_assert!(jj < i);
            if i - jj > WINDOW_SIZE {
                break;
            }
            // Cheap rejection: compare the byte that would extend the match.
            if data[jj + best_len] == data[i + best_len] {
                let len = common_prefix(data, jj, i, max_len);
                if len > best_len {
                    best_len = len;
                    best_dist = i - jj;
                    if len >= self.params.nice_len || len >= max_len {
                        break;
                    }
                }
            }
            j = self.prev[jj];
            chain -= 1;
        }
        (best_len >= MIN_MATCH).then_some((best_len, best_dist))
    }

    /// Tokenizes `data`, feeding each token to `sink`.
    pub fn tokenize(&mut self, data: &[u8], mut sink: impl FnMut(Token)) {
        let n = data.len();
        let mut i = 0usize;
        while i < n {
            let here = self.best_match(data, i);
            let Some((mut len, mut dist)) = here else {
                self.insert(data, i);
                sink(Token::Literal(data[i]));
                i += 1;
                continue;
            };
            // First position not yet inserted into the hash chains.
            let mut uninserted = i;
            // One-step lazy evaluation: prefer a strictly longer match that
            // starts one byte later.
            if self.params.lazy && len < self.params.nice_len && i + 1 < n {
                self.insert(data, i);
                uninserted = i + 1;
                if let Some((len2, dist2)) = self.best_match(data, i + 1) {
                    if len2 > len {
                        sink(Token::Literal(data[i]));
                        i += 1;
                        len = len2;
                        dist = dist2;
                    }
                }
            }
            sink(Token::Match {
                len: len as u16,
                dist: dist as u16,
            });
            for k in uninserted.max(i)..i + len {
                self.insert(data, k);
            }
            i += len;
        }
    }
}

#[inline]
fn common_prefix(data: &[u8], a: usize, b: usize, max_len: usize) -> usize {
    debug_assert!(a < b);
    let mut len = 0usize;
    // Compare 8 bytes at a time while both sides stay in bounds.
    while len + 8 <= max_len {
        let x = u64::from_le_bytes(data[a + len..a + len + 8].try_into().expect("8 bytes"));
        let y = u64::from_le_bytes(data[b + len..b + len + 8].try_into().expect("8 bytes"));
        let diff = x ^ y;
        if diff != 0 {
            return len + (diff.trailing_zeros() / 8) as usize;
        }
        len += 8;
    }
    while len < max_len && data[a + len] == data[b + len] {
        len += 1;
    }
    len
}

/// Expands a token stream back into bytes (reference decoder used in tests).
#[cfg(test)]
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for k in 0..len as usize {
                    out.push(out[start + k]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens_for(data: &[u8], level: Level) -> Vec<Token> {
        let mut mf = MatchFinder::new(data.len(), level);
        let mut tokens = Vec::new();
        mf.tokenize(data, |t| tokens.push(t));
        tokens
    }

    #[test]
    fn roundtrip_all_levels() {
        let data = b"the quick brown fox jumps over the lazy dog; \
                     the quick brown fox jumps over the lazy dog again"
            .to_vec();
        for level in [Level::Fast, Level::Default, Level::Best] {
            let tokens = tokens_for(&data, level);
            assert_eq!(expand(&tokens), data, "{level:?}");
            assert!(
                tokens.iter().any(|t| matches!(t, Token::Match { .. })),
                "{level:?} found no matches in repetitive text"
            );
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(tokens_for(b"", Level::Default).is_empty());
        assert_eq!(tokens_for(b"a", Level::Default), vec![Token::Literal(b'a')]);
        assert_eq!(
            tokens_for(b"ab", Level::Best),
            vec![Token::Literal(b'a'), Token::Literal(b'b')]
        );
    }

    #[test]
    fn run_of_identical_bytes_uses_overlapping_match() {
        let data = vec![b'x'; 1000];
        let tokens = tokens_for(&data, Level::Best);
        assert_eq!(expand(&tokens), data);
        // First token is a literal, after which self-referential matches
        // with dist=1 should cover almost everything.
        assert!(tokens.len() <= 1 + 1000usize.div_ceil(MAX_MATCH) + 2);
        assert!(matches!(tokens[1], Token::Match { dist: 1, .. }));
    }

    #[test]
    fn matches_never_exceed_window() {
        // Repetition spaced beyond the window must not be found.
        let mut data = b"unique_prefix_0123456789".to_vec();
        data.extend(std::iter::repeat_n(b'.', WINDOW_SIZE + 100));
        data.extend_from_slice(b"unique_prefix_0123456789");
        let tokens = tokens_for(&data, Level::Best);
        assert_eq!(expand(&tokens), data);
        for t in &tokens {
            if let Token::Match { dist, .. } = t {
                assert!((*dist as usize) <= WINDOW_SIZE);
            }
        }
    }

    #[test]
    fn incompressible_input_is_all_literals() {
        // A de Bruijn-ish byte sequence with no repeated 3-grams.
        let mut data = Vec::new();
        for i in 0..400u32 {
            data.extend_from_slice(&(i.wrapping_mul(2654435761)).to_le_bytes());
        }
        let tokens = tokens_for(&data[..300], Level::Default);
        assert_eq!(expand(&tokens), &data[..300]);
    }

    #[test]
    fn max_match_length_respected() {
        let data = vec![b'z'; 4096];
        for t in tokens_for(&data, Level::Fast) {
            if let Token::Match { len, .. } = t {
                assert!((len as usize) <= MAX_MATCH);
                assert!((len as usize) >= MIN_MATCH);
            }
        }
    }
}
