//! `zlite` — a DEFLATE-class general-purpose compressor.
//!
//! This crate is the workspace's stand-in for zlib, which the paper uses
//! both as the block compressor of its baselines and as the `Z` coder for
//! RLZ position/length streams. The architecture matches deflate:
//!
//! * LZ77 over a 32 KB sliding window with hash-chain match finding and
//!   one-step-lazy evaluation ([`lz77`]),
//! * canonical, length-limited Huffman coding of literal/length and
//!   distance symbols ([`huffman`]), with RFC 1951's length/distance code
//!   tables ([`tables`]),
//! * per-block choice between stored, fixed-code and dynamic-code encoding,
//!   whichever is smallest.
//!
//! The container format is this crate's own (there is no zlib to interoperate
//! with offline), but window size, token structure and asymptotics mirror
//! deflate, so it reproduces the properties the paper's evaluation relies
//! on: a window far too small to capture cross-document redundancy, fast
//! decoding, and per-block decode start-up cost.
//!
//! # Example
//!
//! ```
//! let data = b"hello hello hello hello hello".repeat(10);
//! let compressed = rlz_zlite::compress(&data, rlz_zlite::Level::Default);
//! assert!(compressed.len() < data.len());
//! assert_eq!(rlz_zlite::decompress(&compressed).unwrap(), data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod huffman;
pub mod lz77;
pub mod tables;

pub use lz77::Level;

use huffman::{Decoder, Encoder};
use lz77::{MatchFinder, Token};
use rlz_codecs::bitio::{BitReader, BitWriter};
use rlz_codecs::{vbyte, CodecError};
use tables::{
    dist_code, length_code, DIST_BASE, DIST_EXTRA, EOB, LENGTH_BASE, LENGTH_EXTRA, NUM_DIST,
    NUM_LITLEN,
};

/// Errors returned by [`decompress`].
pub type Error = CodecError;
/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Block type tags (2 bits on the wire).
const BLOCK_STORED: u64 = 0;
const BLOCK_FIXED: u64 = 1;
const BLOCK_DYNAMIC: u64 = 2;

/// Tokens per block before the Huffman statistics are flushed.
const TOKENS_PER_BLOCK: usize = 1 << 15;

/// Code-length alphabet escape marking a run of zeros (6-bit run follows).
const LEN_RLE_ZERO_RUN: u64 = 31;

/// Compresses `data` at the given effort level.
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 3 + 16);
    vbyte::write_u64(data.len() as u64, &mut out);
    if data.is_empty() {
        return out;
    }
    let mut w = BitWriter::new();
    let mut finder = MatchFinder::new(data.len(), level);
    let mut tokens: Vec<Token> = Vec::with_capacity(TOKENS_PER_BLOCK);
    let mut block_start = 0usize; // raw offset where the current block began
    let mut raw_pos = 0usize;

    // Tokenize the whole input, flushing a block whenever enough tokens
    // accumulate. Match distances may reach into previous blocks, exactly as
    // in deflate.
    let flush = |tokens: &mut Vec<Token>, w: &mut BitWriter, start: usize, end: usize| {
        write_block(w, tokens, &data[start..end]);
        tokens.clear();
    };
    finder.tokenize(data, |t| {
        raw_pos += match t {
            Token::Literal(_) => 1,
            Token::Match { len, .. } => len as usize,
        };
        tokens.push(t);
        if tokens.len() >= TOKENS_PER_BLOCK {
            flush(&mut tokens, &mut w, block_start, raw_pos);
            block_start = raw_pos;
        }
    });
    if !tokens.is_empty() {
        flush(&mut tokens, &mut w, block_start, raw_pos);
    }
    debug_assert_eq!(raw_pos, data.len());
    w.finish_into(&mut out);
    // Padding so the decoder's fast-path peeks never see EOF.
    out.extend_from_slice(&[0u8; 4]);
    out
}

/// Decompresses a buffer produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    decompress_into(data, &mut out)?;
    Ok(out)
}

/// Decompresses a buffer produced by [`compress`] into `out`, **replacing**
/// its contents while reusing its capacity.
///
/// This is the hot-path variant for callers that inflate many streams in a
/// loop (the RLZ store's `Z` position/length coders inflate one small
/// stream per document get): a reused buffer means the inflate pass does no
/// heap allocation once warm. On error `out` may hold a partial prefix.
pub fn decompress_into(data: &[u8], out: &mut Vec<u8>) -> Result<()> {
    out.clear();
    let mut pos = 0usize;
    let raw_len = vbyte::read_u64(data, &mut pos)? as usize;
    // Grow progressively rather than trusting the header outright.
    out.reserve(raw_len.min(1 << 20));
    let mut r = BitReader::new(&data[pos..]);
    while out.len() < raw_len {
        let block_type = r.read_bits(2)?;
        match block_type {
            BLOCK_STORED => {
                r.align_byte();
                let count = read_vbyte_bits(&mut r)? as usize;
                if out.len() + count > raw_len {
                    return Err(CodecError::Corrupt("stored block overflows output"));
                }
                out.reserve(count);
                for _ in 0..count {
                    out.push(r.read_bits(8)? as u8);
                }
            }
            BLOCK_FIXED => {
                let (litlen, dist) = fixed_decoders()?;
                inflate_block(&mut r, &litlen, &dist, raw_len, out)?;
            }
            BLOCK_DYNAMIC => {
                let (litlen, dist) = read_dynamic_header(&mut r)?;
                inflate_block(&mut r, &litlen, &dist, raw_len, out)?;
            }
            _ => return Err(CodecError::Corrupt("invalid block type")),
        }
    }
    if out.len() != raw_len {
        return Err(CodecError::Corrupt("output length mismatch"));
    }
    Ok(())
}

/// Fixed code lengths in the spirit of DEFLATE's fixed block type: strongly
/// useful for short inputs where a dynamic header would dominate.
fn fixed_litlen_lengths() -> Vec<u8> {
    let mut lens = vec![0u8; NUM_LITLEN];
    for (sym, len) in lens.iter_mut().enumerate() {
        *len = match sym {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    lens
}

fn fixed_dist_lengths() -> Vec<u8> {
    vec![5u8; NUM_DIST]
}

fn fixed_decoders() -> Result<(Decoder, Decoder)> {
    Ok((
        Decoder::from_lengths(&fixed_litlen_lengths())?,
        Decoder::from_lengths(&fixed_dist_lengths())?,
    ))
}

/// Writes one block, choosing the cheapest of stored / fixed / dynamic.
fn write_block(w: &mut BitWriter, tokens: &[Token], raw: &[u8]) {
    // Histogram the token stream.
    let mut lit_freq = vec![0u32; NUM_LITLEN];
    let mut dist_freq = vec![0u32; NUM_DIST];
    for t in tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                let (lc, _, _) = length_code(len as usize);
                lit_freq[257 + lc as usize] += 1;
                let (dc, _, _) = dist_code(dist as usize);
                dist_freq[dc as usize] += 1;
            }
        }
    }
    lit_freq[EOB as usize] += 1;

    let mut dyn_lit_lens = huffman::build_lengths(&lit_freq);
    let mut dyn_dist_lens = huffman::build_lengths(&dist_freq);
    // Guarantee a non-empty distance table so the decoder can always build.
    if dyn_dist_lens.iter().all(|&l| l == 0) {
        dyn_dist_lens[0] = 1;
    }
    if dyn_lit_lens.iter().all(|&l| l == 0) {
        dyn_lit_lens[EOB as usize] = 1;
    }

    let extra_bits: u64 = tokens
        .iter()
        .map(|t| match *t {
            Token::Literal(_) => 0u64,
            Token::Match { len, dist } => {
                length_code(len as usize).2 as u64 + dist_code(dist as usize).2 as u64
            }
        })
        .sum();

    let fixed_lit = fixed_litlen_lengths();
    let fixed_dist = fixed_dist_lengths();
    let payload_cost = |lit_lens: &[u8], dist_lens: &[u8]| -> u64 {
        let lit: u64 = lit_freq
            .iter()
            .zip(lit_lens)
            .map(|(&f, &l)| f as u64 * l as u64)
            .sum();
        let dist: u64 = dist_freq
            .iter()
            .zip(dist_lens)
            .map(|(&f, &l)| f as u64 * l as u64)
            .sum();
        lit + dist + extra_bits
    };

    let dynamic_cost = 2
        + header_cost_bits(&dyn_lit_lens)
        + header_cost_bits(&dyn_dist_lens)
        + 14
        + payload_cost(&dyn_lit_lens, &dyn_dist_lens);
    let fixed_cost = 2 + payload_cost(&fixed_lit, &fixed_dist);
    let stored_cost = 2 + 7 + (vbyte_len_u64(raw.len() as u64) as u64 + raw.len() as u64) * 8;

    if stored_cost < dynamic_cost && stored_cost < fixed_cost {
        w.write_bits(BLOCK_STORED, 2);
        align_writer(w);
        write_vbyte_bits(w, raw.len() as u64);
        for &b in raw {
            w.write_bits(b as u64, 8);
        }
        return;
    }
    let (lit_lens, dist_lens) = if fixed_cost <= dynamic_cost {
        w.write_bits(BLOCK_FIXED, 2);
        (fixed_lit, fixed_dist)
    } else {
        w.write_bits(BLOCK_DYNAMIC, 2);
        write_dynamic_header(w, &dyn_lit_lens, &dyn_dist_lens);
        (dyn_lit_lens, dyn_dist_lens)
    };
    let lit_enc = Encoder::from_lengths(&lit_lens).expect("valid built lengths");
    let dist_enc = Encoder::from_lengths(&dist_lens).expect("valid built lengths");
    for t in tokens {
        match *t {
            Token::Literal(b) => lit_enc.write(w, b as usize),
            Token::Match { len, dist } => {
                let (lc, lextra, lbits) = length_code(len as usize);
                lit_enc.write(w, 257 + lc as usize);
                w.write_bits(lextra as u64, lbits as u32);
                let (dc, dextra, dbits) = dist_code(dist as usize);
                dist_enc.write(w, dc as usize);
                w.write_bits(dextra as u64, dbits as u32);
            }
        }
    }
    lit_enc.write(w, EOB as usize);
}

/// Decodes tokens until end-of-block, appending raw bytes to `out`.
fn inflate_block(
    r: &mut BitReader<'_>,
    litlen: &Decoder,
    dist: &Decoder,
    raw_len: usize,
    out: &mut Vec<u8>,
) -> Result<()> {
    loop {
        let sym = litlen.decode(r)?;
        if sym < 256 {
            if out.len() >= raw_len {
                return Err(CodecError::Corrupt("literal overflows output"));
            }
            out.push(sym as u8);
            continue;
        }
        if sym == EOB {
            return Ok(());
        }
        let lc = (sym - 257) as usize;
        if lc >= LENGTH_BASE.len() {
            return Err(CodecError::Corrupt("invalid length symbol"));
        }
        let len = LENGTH_BASE[lc] as usize + r.read_bits(LENGTH_EXTRA[lc] as u32)? as usize;
        let dsym = dist.decode(r)? as usize;
        if dsym >= DIST_BASE.len() {
            return Err(CodecError::Corrupt("invalid distance symbol"));
        }
        let d = DIST_BASE[dsym] as usize + r.read_bits(DIST_EXTRA[dsym] as u32)? as usize;
        if d > out.len() {
            return Err(CodecError::Corrupt("match reaches before stream start"));
        }
        if out.len() + len > raw_len {
            return Err(CodecError::Corrupt("match overflows output"));
        }
        let start = out.len() - d;
        // Byte-wise copy: matches may overlap themselves (RLE-style).
        for k in 0..len {
            let b = out[start + k];
            out.push(b);
        }
    }
}

// --- dynamic header (code lengths with zero-run RLE) ---

fn header_cost_bits(lens: &[u8]) -> u64 {
    let mut bits = 9; // transmitted count
    let mut i = 0usize;
    let n = trimmed_len(lens);
    while i < n {
        if lens[i] == 0 {
            let mut run = 1usize;
            while i + run < n && lens[i + run] == 0 && run < 64 {
                run += 1;
            }
            bits += 5 + 6;
            i += run;
        } else {
            bits += 5;
            i += 1;
        }
    }
    bits
}

fn trimmed_len(lens: &[u8]) -> usize {
    lens.iter().rposition(|&l| l != 0).map_or(0, |p| p + 1)
}

fn write_dynamic_header(w: &mut BitWriter, lit_lens: &[u8], dist_lens: &[u8]) {
    for lens in [lit_lens, dist_lens] {
        let n = trimmed_len(lens);
        w.write_bits(n as u64, 9);
        let mut i = 0usize;
        while i < n {
            if lens[i] == 0 {
                let mut run = 1usize;
                while i + run < n && lens[i + run] == 0 && run < 64 {
                    run += 1;
                }
                w.write_bits(LEN_RLE_ZERO_RUN, 5);
                w.write_bits(run as u64 - 1, 6);
                i += run;
            } else {
                debug_assert!(lens[i] < 31);
                w.write_bits(lens[i] as u64, 5);
                i += 1;
            }
        }
    }
}

fn read_dynamic_header(r: &mut BitReader<'_>) -> Result<(Decoder, Decoder)> {
    let mut tables: Vec<Vec<u8>> = Vec::with_capacity(2);
    for limit in [NUM_LITLEN, NUM_DIST] {
        let n = r.read_bits(9)? as usize;
        if n > limit {
            return Err(CodecError::Corrupt("code length count out of range"));
        }
        let mut lens = vec![0u8; limit];
        let mut i = 0usize;
        while i < n {
            let v = r.read_bits(5)?;
            if v == LEN_RLE_ZERO_RUN {
                let run = r.read_bits(6)? as usize + 1;
                if i + run > n {
                    return Err(CodecError::Corrupt("zero run overflows table"));
                }
                i += run;
            } else {
                lens[i] = v as u8;
                i += 1;
            }
        }
        tables.push(lens);
    }
    let dist = Decoder::from_lengths(&tables.pop().expect("two tables"))?;
    let litlen = Decoder::from_lengths(&tables.pop().expect("two tables"))?;
    Ok((litlen, dist))
}

// --- helpers for byte-ish values inside the bit stream ---

fn align_writer(w: &mut BitWriter) {
    let rem = (w.bit_len() % 8) as u32;
    if rem != 0 {
        w.write_bits(0, 8 - rem);
    }
}

fn write_vbyte_bits(w: &mut BitWriter, mut v: u64) {
    loop {
        let byte = v & 0x7F;
        v >>= 7;
        if v == 0 {
            w.write_bits(byte, 8);
            return;
        }
        w.write_bits(byte | 0x80, 8);
    }
}

fn read_vbyte_bits(r: &mut BitReader<'_>) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = r.read_bits(8)?;
        if shift >= 64 {
            return Err(CodecError::Corrupt("vbyte run too long"));
        }
        v |= (byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn vbyte_len_u64(v: u64) -> usize {
    let bits = 64 - v.leading_zeros().min(63);
    ((bits as usize).max(1)).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], level: Level) -> usize {
        let c = compress(data, level);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data, "level {level:?} len {}", data.len());
        c.len()
    }

    #[test]
    fn empty_input() {
        assert_eq!(roundtrip(b"", Level::Default), 1);
    }

    #[test]
    fn tiny_inputs() {
        for data in [&b"a"[..], b"ab", b"abc", b"aaaa", b"\x00\xFF"] {
            for level in [Level::Fast, Level::Default, Level::Best] {
                roundtrip(data, level);
            }
        }
    }

    #[test]
    fn repetitive_text_compresses_hard() {
        let data = b"<html><head><title>page</title></head><body>".repeat(500);
        let n = roundtrip(&data, Level::Best);
        assert!(
            n < data.len() / 20,
            "expected >20x on boilerplate, got {} / {}",
            n,
            data.len()
        );
    }

    #[test]
    fn incompressible_data_stays_close_to_raw() {
        // xorshift noise: stored blocks should kick in.
        let mut state = 0x9E3779B97F4A7C15u64;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        let n = roundtrip(&data, Level::Default);
        assert!(n < data.len() + data.len() / 50 + 64, "blowup: {n}");
    }

    #[test]
    fn english_like_text_ratio() {
        let sentence = b"the quick brown fox jumps over the lazy dog and runs away quickly. ";
        let data: Vec<u8> = sentence.iter().cycle().take(200_000).copied().collect();
        let n = roundtrip(&data, Level::Default);
        assert!(n < data.len() / 10);
    }

    #[test]
    fn multi_block_inputs() {
        // Force several blocks with shifting content.
        let mut data = Vec::new();
        for i in 0..40u32 {
            let chunk = format!(
                "section {i} body text {} end. ",
                "word ".repeat(i as usize % 17)
            );
            data.extend(chunk.bytes().cycle().take(9000));
        }
        for level in [Level::Fast, Level::Default, Level::Best] {
            roundtrip(&data, level);
        }
    }

    #[test]
    fn cross_block_matches_are_valid() {
        // Content repeating at a period near the block size exercises
        // distances that reach into the previous block.
        let unit: Vec<u8> = (0..29_000u32).map(|i| (i % 251) as u8).collect();
        let mut data = unit.clone();
        data.extend_from_slice(&unit);
        data.extend_from_slice(&unit);
        roundtrip(&data, Level::Best);
    }

    #[test]
    fn truncated_stream_errors() {
        let data = b"some compressible data some compressible data".repeat(50);
        let c = compress(&data, Level::Default);
        for cut in [1usize, 2, c.len() / 2] {
            assert!(decompress(&c[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn corrupt_header_errors() {
        let data = b"hello world hello world".repeat(20);
        let mut c = compress(&data, Level::Default);
        // Flip bits in the first block header region.
        c[2] ^= 0xFF;
        let _ = decompress(&c); // must not panic; error or garbage tolerated
                                // Declare a longer output than the stream encodes.
        let mut c2 = compress(&data, Level::Default);
        c2[0] = c2[0].wrapping_add(1);
        assert!(decompress(&c2).is_err());
    }

    #[test]
    fn levels_trade_ratio_for_effort() {
        let data: Vec<u8> = {
            // Mildly repetitive: levels should differ.
            let mut v = Vec::new();
            for i in 0..3000u32 {
                v.extend_from_slice(format!("entry-{:06} value={} ", i % 500, i % 37).as_bytes());
            }
            v
        };
        let fast = compress(&data, Level::Fast).len();
        let best = compress(&data, Level::Best).len();
        assert!(best <= fast, "best {best} > fast {fast}");
    }

    #[test]
    fn decompress_into_replaces_and_reuses_buffer() {
        let a = b"first payload first payload first payload".repeat(30);
        let b = b"x".to_vec();
        let ca = compress(&a, Level::Default);
        let cb = compress(&b, Level::Default);
        let mut buf = b"stale".to_vec();
        decompress_into(&ca, &mut buf).unwrap();
        assert_eq!(buf, a);
        let cap = buf.capacity();
        decompress_into(&cb, &mut buf).unwrap();
        assert_eq!(buf, b);
        assert_eq!(buf.capacity(), cap, "shrinking the buffer defeats reuse");
    }

    #[test]
    fn binary_with_zero_runs() {
        let mut data = vec![0u8; 10_000];
        data.extend((0..200).map(|i| i as u8));
        data.extend(vec![0xFFu8; 5_000]);
        roundtrip(&data, Level::Default);
    }
}
