//! Canonical Huffman coding with length-limited code construction.
//!
//! Codes are canonical (assigned in order of increasing length, then symbol)
//! so only the per-symbol lengths need to be transmitted. Encoded bits are
//! written MSB-of-code-first into the LSB-first bit stream — i.e. the code is
//! bit-reversed before writing, exactly as DEFLATE does — which lets the
//! decoder use a prefix lookup table on peeked bits.

use rlz_codecs::bitio::{BitReader, BitWriter};
use rlz_codecs::{CodecError, Result};

/// Maximum code length this implementation transmits (5 bits in headers).
pub const MAX_CODE_LEN: u8 = 20;

/// Width of the decoder's fast prefix table.
const FAST_BITS: u32 = 10;

/// Builds length-limited Huffman code lengths for `freqs`.
///
/// Symbols with zero frequency get length 0 (absent). If only one symbol is
/// present it is assigned length 1. When the optimal tree exceeds
/// `MAX_CODE_LEN`, frequencies are repeatedly halved (rounding up) and the
/// tree rebuilt — a standard dampening trick that converges quickly and
/// costs a negligible fraction of optimality.
pub fn build_lengths(freqs: &[u32]) -> Vec<u8> {
    let mut damped: Vec<u64> = freqs.iter().map(|&f| f as u64).collect();
    loop {
        let lens = huffman_lengths(&damped);
        if lens.iter().all(|&l| l <= MAX_CODE_LEN) {
            return lens;
        }
        for f in damped.iter_mut() {
            if *f > 0 {
                *f = (*f).div_ceil(2);
            }
        }
    }
}

/// Unrestricted Huffman code lengths by the classic two-queue method.
fn huffman_lengths(freqs: &[u64]) -> Vec<u8> {
    let n = freqs.len();
    let mut lens = vec![0u8; n];
    let present: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match present.len() {
        0 => return lens,
        1 => {
            lens[present[0]] = 1;
            return lens;
        }
        _ => {}
    }
    // Heap of (weight, node). Leaves are 0..n, internal nodes follow.
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap; tie-break on id for determinism.
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    // parent[] for leaves and internal nodes; leaves are slots 0..m,
    // internal nodes m..2m-1.
    let m = present.len();
    let mut parent = vec![usize::MAX; 2 * m];
    let mut leaf_slot = vec![usize::MAX; n]; // leaf symbol -> tree slot
    for (slot, &sym) in present.iter().enumerate() {
        leaf_slot[sym] = slot;
    }
    let mut heap = std::collections::BinaryHeap::with_capacity(m);
    for (slot, &sym) in present.iter().enumerate() {
        heap.push(Node {
            weight: freqs[sym],
            id: slot,
        });
    }
    let mut next_internal = m;
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        parent[a.id] = next_internal;
        parent[b.id] = next_internal;
        heap.push(Node {
            weight: a.weight + b.weight,
            id: next_internal,
        });
        next_internal += 1;
    }
    // Depth of each leaf = chain length to the root.
    for &sym in &present {
        let mut depth = 0u32;
        let mut node = leaf_slot[sym];
        while parent[node] != usize::MAX {
            node = parent[node];
            depth += 1;
        }
        lens[sym] = depth.min(255) as u8;
    }
    lens
}

/// Canonical code assignment: returns the code (not bit-reversed) per symbol.
fn canonical_codes(lens: &[u8]) -> Result<Vec<u32>> {
    let max_len = lens.iter().copied().max().unwrap_or(0) as usize;
    let mut count = vec![0u32; max_len + 1];
    for &l in lens {
        count[l as usize] += 1;
    }
    count[0] = 0;
    // Kraft check: the code must not be over-subscribed.
    let mut code = 0u32;
    let mut next_code = vec![0u32; max_len + 2];
    for bits in 1..=max_len {
        code = (code + count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    // Over-subscription check.
    let mut kraft: u64 = 0;
    for (bits, &c) in count.iter().enumerate().skip(1) {
        kraft += (c as u64) << (max_len - bits);
    }
    if max_len > 0 && kraft > 1u64 << max_len {
        return Err(CodecError::Corrupt("huffman code over-subscribed"));
    }
    let mut codes = vec![0u32; lens.len()];
    for (sym, &len) in lens.iter().enumerate() {
        if len > 0 {
            codes[sym] = next_code[len as usize];
            next_code[len as usize] += 1;
        }
    }
    Ok(codes)
}

#[inline]
fn reverse_bits(code: u32, len: u8) -> u32 {
    code.reverse_bits() >> (32 - len as u32)
}

/// Symbol-to-bits encoder for one canonical code.
#[derive(Debug)]
pub struct Encoder {
    /// Bit-reversed codes, ready for LSB-first emission.
    codes: Vec<u32>,
    lens: Vec<u8>,
}

impl Encoder {
    /// Builds an encoder from per-symbol code lengths.
    pub fn from_lengths(lens: &[u8]) -> Result<Self> {
        let codes = canonical_codes(lens)?;
        let rev: Vec<u32> = codes
            .iter()
            .zip(lens)
            .map(|(&c, &l)| if l == 0 { 0 } else { reverse_bits(c, l) })
            .collect();
        Ok(Encoder {
            codes: rev,
            lens: lens.to_vec(),
        })
    }

    /// Emits the code for `sym`.
    #[inline]
    pub fn write(&self, w: &mut BitWriter, sym: usize) {
        let len = self.lens[sym];
        debug_assert!(len > 0, "symbol {sym} has no code");
        w.write_bits(self.codes[sym] as u64, len as u32);
    }

    /// Code length of `sym` in bits (0 when absent).
    #[inline]
    pub fn len(&self, sym: usize) -> u8 {
        self.lens[sym]
    }

    /// Total encoded size in bits of a frequency histogram under this code.
    pub fn cost_bits(&self, freqs: &[u32]) -> u64 {
        freqs
            .iter()
            .zip(&self.lens)
            .map(|(&f, &l)| f as u64 * l as u64)
            .sum()
    }
}

/// Table-driven canonical Huffman decoder.
#[derive(Debug)]
pub struct Decoder {
    /// Fast path: maps the next `FAST_BITS` (LSB-first) to `(sym << 5) | len`;
    /// `u16::MAX` marks codes longer than `FAST_BITS`.
    fast: Vec<u16>,
    /// First canonical code per length, left-justified comparisons.
    first_code: Vec<u32>,
    /// Index into `syms` of the first symbol with each length.
    first_sym: Vec<u32>,
    /// Symbols sorted by (length, symbol).
    syms: Vec<u16>,
    max_len: u8,
}

impl Decoder {
    /// Builds a decoder from per-symbol code lengths.
    pub fn from_lengths(lens: &[u8]) -> Result<Self> {
        let codes = canonical_codes(lens)?;
        let max_len = lens.iter().copied().max().unwrap_or(0);
        if max_len == 0 {
            return Err(CodecError::Corrupt("huffman table is empty"));
        }
        if max_len > MAX_CODE_LEN {
            return Err(CodecError::Corrupt("huffman code length exceeds limit"));
        }
        let ml = max_len as usize;
        let mut count = vec![0u32; ml + 1];
        for &l in lens {
            count[l as usize] += 1;
        }
        count[0] = 0;
        let mut first_code = vec![0u32; ml + 2];
        let mut first_sym = vec![0u32; ml + 2];
        let mut code = 0u32;
        let mut sym_index = 0u32;
        for bits in 1..=ml {
            code = (code + count[bits - 1]) << 1;
            first_code[bits] = code;
            first_sym[bits] = sym_index;
            sym_index += count[bits];
        }
        first_code[ml + 1] = u32::MAX; // sentinel
        first_sym[ml + 1] = sym_index; // one past the last symbol
        let mut order: Vec<u16> = (0..lens.len() as u16)
            .filter(|&s| lens[s as usize] > 0)
            .collect();
        order.sort_by_key(|&s| (lens[s as usize], s));

        let mut fast = vec![u16::MAX; 1 << FAST_BITS];
        for (sym, (&code, &len)) in codes.iter().zip(lens).enumerate() {
            if len == 0 || len as u32 > FAST_BITS {
                continue;
            }
            let rev = reverse_bits(code, len) as usize;
            let step = 1usize << len;
            let entry = ((sym as u16) << 5) | len as u16;
            let mut idx = rev;
            while idx < 1 << FAST_BITS {
                fast[idx] = entry;
                idx += step;
            }
        }
        Ok(Decoder {
            fast,
            first_code,
            first_sym,
            syms: order,
            max_len,
        })
    }

    /// Decodes one symbol.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16> {
        let peek = r.peek_bits_padded(FAST_BITS) as usize;
        let entry = self.fast[peek];
        if entry != u16::MAX {
            r.consume_bits((entry & 0x1F) as u32)?;
            return Ok(entry >> 5);
        }
        // Slow path: accumulate bits MSB-first and walk lengths.
        let mut code = 0u32;
        for len in 1..=self.max_len as usize {
            code = (code << 1) | r.read_bits(1)? as u32;
            let offset = code.wrapping_sub(self.first_code[len]);
            let next_first = self
                .first_sym
                .get(len + 1)
                .copied()
                .unwrap_or(self.syms.len() as u32);
            let count = next_first - self.first_sym[len];
            if code >= self.first_code[len] && offset < count {
                return Ok(self.syms[(self.first_sym[len] + offset) as usize]);
            }
        }
        Err(CodecError::Corrupt("invalid huffman code"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(lens: &[u8], symbols: &[usize]) {
        let enc = Encoder::from_lengths(lens).unwrap();
        let dec = Decoder::from_lengths(lens).unwrap();
        let mut w = BitWriter::new();
        for &s in symbols {
            enc.write(&mut w, s);
        }
        let mut bytes = w.finish();
        bytes.extend_from_slice(&[0, 0, 0, 0]); // decoder peek padding
        let mut r = BitReader::new(&bytes);
        for &s in symbols {
            assert_eq!(dec.decode(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn two_symbol_code() {
        roundtrip(&[1, 1], &[0, 1, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn skewed_code_roundtrip() {
        let freqs = [1000u32, 500, 250, 125, 60, 30, 15, 8, 4, 2, 1, 1];
        let lens = build_lengths(&freqs);
        let symbols: Vec<usize> = (0..12)
            .flat_map(|s| std::iter::repeat_n(s, 12 - s))
            .collect();
        roundtrip(&lens, &symbols);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let lens = build_lengths(&[0, 7, 0]);
        assert_eq!(lens, vec![0, 1, 0]);
        roundtrip(&lens, &[1, 1, 1]);
    }

    #[test]
    fn lengths_satisfy_kraft_equality_when_complete() {
        let freqs: Vec<u32> = (1..=64).collect();
        let lens = build_lengths(&freqs);
        let max = *lens.iter().max().unwrap() as u32;
        let kraft: u64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (max - l as u32))
            .sum();
        assert_eq!(kraft, 1u64 << max, "complete code expected");
    }

    #[test]
    fn length_limit_is_enforced() {
        // Fibonacci-like frequencies force deep optimal trees.
        let mut freqs = vec![0u32; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a.min(u32::MAX as u64) as u32;
            let c = a + b;
            a = b;
            b = c;
        }
        let lens = build_lengths(&freqs);
        assert!(lens.iter().all(|&l| l <= MAX_CODE_LEN));
        // Code must still be decodable.
        let symbols: Vec<usize> = (0..40).collect();
        roundtrip(&lens, &symbols);
    }

    #[test]
    fn oversubscribed_lengths_rejected() {
        // Three codes of length 1 cannot exist.
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_err());
        assert!(Encoder::from_lengths(&[1, 1, 1]).is_err());
    }

    #[test]
    fn long_codes_use_slow_path() {
        // Explicit canonical lengths 1,2,...,14,15,15: Kraft-complete with
        // several codes beyond the 10-bit fast table.
        let mut lens: Vec<u8> = (1..=15).collect();
        lens.push(15);
        assert!(lens.iter().any(|&l| l as u32 > 10));
        let symbols: Vec<usize> = (0..lens.len()).cycle().take(500).collect();
        roundtrip(&lens, &symbols);
    }

    #[test]
    fn garbage_bits_yield_error_not_panic() {
        let dec = Decoder::from_lengths(&[2, 2, 2, 0, 3, 3]).unwrap();
        // Kraft-incomplete code: some bit patterns are invalid.
        let bytes = [0xFFu8, 0xFF, 0xFF, 0xFF];
        let mut r = BitReader::new(&bytes);
        let mut saw_err = false;
        for _ in 0..16 {
            if dec.decode(&mut r).is_err() {
                saw_err = true;
                break;
            }
        }
        // Either an invalid code or clean decoding is fine; no panic is the
        // property. (With this table 0b11 prefixes are undefined.)
        assert!(saw_err);
    }
}
