//! Property tests: zlite round-trips arbitrary byte strings at every level
//! and never panics on corrupted streams.

use proptest::prelude::*;
use rlz_zlite::{compress, decompress, Level};

proptest! {
    #[test]
    fn roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
        for level in [Level::Fast, Level::Default, Level::Best] {
            let c = compress(&data, level);
            let d = decompress(&c);
            prop_assert_eq!(d.as_deref(), Ok(&data[..]), "{:?}", level);
        }
    }

    #[test]
    fn roundtrip_low_entropy(data in proptest::collection::vec(0u8..4, 0..6000)) {
        // Tiny alphabets produce long matches and deep Huffman skew.
        let c = compress(&data, Level::Best);
        let d = decompress(&c);
        prop_assert_eq!(d.as_deref(), Ok(&data[..]));
    }

    #[test]
    fn roundtrip_repeated_chunks(
        chunk in proptest::collection::vec(any::<u8>(), 1..100),
        reps in 1usize..200,
    ) {
        let data: Vec<u8> = chunk.iter().cycle().take(chunk.len() * reps).copied().collect();
        let c = compress(&data, Level::Default);
        let d = decompress(&c);
        prop_assert_eq!(d.as_deref(), Ok(&data[..]));
        // Strong repetition must compress once it is long enough.
        if data.len() > 2000 {
            prop_assert!(c.len() < data.len());
        }
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let _ = decompress(&data);
    }

    #[test]
    fn decompress_never_panics_on_bitflips(
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let mut c = compress(&data, Level::Default);
        let idx = flip_byte.index(c.len());
        c[idx] ^= 1 << flip_bit;
        let _ = decompress(&c);
    }
}
