//! Hash-chain match finder over an unbounded (whole-buffer) window.
//!
//! Unlike `zlite`'s 32 KB window, matches may reach arbitrarily far back —
//! the defining property of the paper's lzma baseline, which Ferragina &
//! Manzini showed compresses web crawls to ~5 % with a 128 MB dictionary.

use crate::model::{MAX_LEN, MIN_LEN};

const HASH_BITS: u32 = 17;
const NO_POS: u32 = u32::MAX;

/// Search effort level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Level {
    /// Shallow chains.
    Fast,
    /// Balanced.
    #[default]
    Default,
    /// Deep chains — closest to `lzma -9`.
    Best,
}

impl Level {
    fn max_chain(self) -> usize {
        match self {
            Level::Fast => 24,
            Level::Default => 96,
            Level::Best => 512,
        }
    }

    fn nice_len(self) -> usize {
        match self {
            Level::Fast => 64,
            Level::Default => 128,
            Level::Best => MAX_LEN,
        }
    }
}

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Whole-buffer hash-chain matcher.
pub struct MatchFinder {
    head: Vec<u32>,
    prev: Vec<u32>,
    max_chain: usize,
    nice_len: usize,
}

impl MatchFinder {
    /// Creates a finder for an input of `n` bytes.
    pub fn new(n: usize, level: Level) -> Self {
        MatchFinder {
            head: vec![NO_POS; 1 << HASH_BITS],
            prev: vec![NO_POS; n],
            max_chain: level.max_chain(),
            nice_len: level.nice_len(),
        }
    }

    /// Registers position `i` in the chains.
    #[inline]
    pub fn insert(&mut self, data: &[u8], i: usize) {
        if i + 4 <= data.len() {
            let h = hash4(data, i);
            self.prev[i] = self.head[h];
            self.head[h] = i as u32;
        }
    }

    /// Longest match at `i` (length >= 3), returned as `(len, dist)`.
    pub fn best_match(&self, data: &[u8], i: usize) -> Option<(usize, usize)> {
        if i + 4 > data.len() {
            return None;
        }
        let max_len = MAX_LEN.min(data.len() - i);
        let mut best_len = 2usize; // require at least 3
        let mut best_dist = 0usize;
        let mut j = self.head[hash4(data, i)];
        let mut chain = self.max_chain;
        while j != NO_POS && chain > 0 {
            let jj = j as usize;
            debug_assert!(jj < i);
            if best_len < max_len && data[jj + best_len] == data[i + best_len] {
                let len = common_prefix(data, jj, i, max_len);
                if len > best_len {
                    best_len = len;
                    best_dist = i - jj;
                    if len >= self.nice_len || len >= max_len {
                        break;
                    }
                }
            }
            j = self.prev[jj];
            chain -= 1;
        }
        (best_len > MIN_LEN).then_some((best_len, best_dist))
    }
}

/// Length of the match between positions `a < b`, capped at `max_len`.
#[inline]
pub fn common_prefix(data: &[u8], a: usize, b: usize, max_len: usize) -> usize {
    let mut len = 0usize;
    while len + 8 <= max_len {
        let x = u64::from_le_bytes(data[a + len..a + len + 8].try_into().expect("8 bytes"));
        let y = u64::from_le_bytes(data[b + len..b + len + 8].try_into().expect("8 bytes"));
        let diff = x ^ y;
        if diff != 0 {
            return len + (diff.trailing_zeros() / 8) as usize;
        }
        len += 8;
    }
    while len < max_len && data[a + len] == data[b + len] {
        len += 1;
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_distant_matches_beyond_32k() {
        // The whole point: repetition 100 KB apart must be found.
        let mut data = b"GLOBAL_BOILERPLATE_HEADER v1.0 common to every page".to_vec();
        let marker_len = data.len();
        data.extend(std::iter::repeat_n(b'x', 100_000));
        let second = data.len();
        data.extend_from_slice(b"GLOBAL_BOILERPLATE_HEADER v1.0 common to every page");

        let mut mf = MatchFinder::new(data.len(), Level::Default);
        for i in 0..second {
            mf.insert(&data, i);
        }
        let (len, dist) = mf.best_match(&data, second).expect("match");
        assert_eq!(dist, second);
        assert_eq!(len, marker_len);
    }

    #[test]
    fn no_match_in_unique_data() {
        let data: Vec<u8> = (0..100u8).collect();
        let mut mf = MatchFinder::new(data.len(), Level::Best);
        for i in 0..50 {
            mf.insert(&data, i);
        }
        assert_eq!(mf.best_match(&data, 50), None);
    }

    #[test]
    fn caps_at_max_len() {
        let data = vec![b'q'; MAX_LEN * 3];
        let mut mf = MatchFinder::new(data.len(), Level::Best);
        for i in 0..MAX_LEN {
            mf.insert(&data, i);
        }
        let (len, _) = mf.best_match(&data, MAX_LEN).expect("match");
        assert_eq!(len, MAX_LEN);
    }
}
