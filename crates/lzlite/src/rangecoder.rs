//! Binary range coder with adaptive probabilities — the arithmetic-coding
//! backend of LZMA, ported to safe Rust.
//!
//! Probabilities are 11-bit (`0..2048`) and adapt with shift 5, exactly the
//! constants the LZMA SDK uses.

/// Number of probability bits.
pub const PROB_BITS: u32 = 11;
/// Initial probability: one half.
pub const PROB_INIT: u16 = (1 << PROB_BITS) / 2;
/// Adaptation shift.
const MOVE_BITS: u32 = 5;
/// Renormalization threshold.
const TOP: u32 = 1 << 24;

/// Range encoder writing to an owned buffer.
#[derive(Debug)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Creates a fresh encoder.
    pub fn new() -> Self {
        RangeEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    #[inline]
    fn shift_low(&mut self) {
        if (self.low as u32) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            let mut byte = self.cache;
            loop {
                self.out.push(byte.wrapping_add(carry));
                byte = 0xFF;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        // Keep only the low 24 bits before shifting: the top byte was just
        // captured in `cache` (C does this implicitly via `(UInt32)low << 8`
        // in 32-bit arithmetic).
        self.low = (self.low & 0x00FF_FFFF) << 8;
    }

    /// Encodes one bit under the adaptive probability `prob`.
    #[inline]
    pub fn encode_bit(&mut self, prob: &mut u16, bit: u32) {
        let bound = (self.range >> PROB_BITS) * (*prob as u32);
        if bit == 0 {
            self.range = bound;
            *prob += ((1 << PROB_BITS) - *prob) >> MOVE_BITS;
        } else {
            self.low += bound as u64;
            self.range -= bound;
            *prob -= *prob >> MOVE_BITS;
        }
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encodes `n` equiprobable bits of `value`, most significant first.
    #[inline]
    pub fn encode_direct(&mut self, value: u32, n: u32) {
        for i in (0..n).rev() {
            self.range >>= 1;
            if (value >> i) & 1 != 0 {
                self.low += self.range as u64;
            }
            while self.range < TOP {
                self.range <<= 8;
                self.shift_low();
            }
        }
    }

    /// Flushes pending state and returns the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }

    /// Bytes emitted so far (excluding pending carries).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True if nothing has been flushed yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// Range decoder over a byte slice.
///
/// Reads past the end of input are treated as zero bytes; the caller bounds
/// decoding by the declared output length and validates results, so corrupt
/// input can only produce wrong bytes or a reported error — never a panic or
/// an unbounded loop.
#[derive(Debug)]
pub struct RangeDecoder<'a> {
    data: &'a [u8],
    pos: usize,
    range: u32,
    code: u32,
}

impl<'a> RangeDecoder<'a> {
    /// Initializes the decoder (consumes the 5 priming bytes).
    pub fn new(data: &'a [u8]) -> Self {
        let mut d = RangeDecoder {
            data,
            pos: 1, // first byte is always zero padding from the encoder
            range: u32::MAX,
            code: 0,
        };
        for _ in 0..4 {
            d.code = (d.code << 8) | d.next_byte() as u32;
        }
        d
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    #[inline]
    fn normalize(&mut self) {
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next_byte() as u32;
        }
    }

    /// Decodes one bit under the adaptive probability `prob`.
    #[inline]
    pub fn decode_bit(&mut self, prob: &mut u16) -> u32 {
        let bound = (self.range >> PROB_BITS) * (*prob as u32);
        let bit = if self.code < bound {
            self.range = bound;
            *prob += ((1 << PROB_BITS) - *prob) >> MOVE_BITS;
            0
        } else {
            self.code -= bound;
            self.range -= bound;
            *prob -= *prob >> MOVE_BITS;
            1
        };
        self.normalize();
        bit
    }

    /// Decodes `n` equiprobable bits, most significant first.
    #[inline]
    pub fn decode_direct(&mut self, n: u32) -> u32 {
        let mut result = 0u32;
        for _ in 0..n {
            self.range >>= 1;
            self.code = self.code.wrapping_sub(self.range);
            let t = 0u32.wrapping_sub(self.code >> 31);
            self.code = self.code.wrapping_add(self.range & t);
            result = (result << 1) | t.wrapping_add(1);
            self.normalize();
        }
        result
    }

    /// Bytes consumed from the input so far.
    pub fn bytes_consumed(&self) -> usize {
        self.pos.min(self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_adaptive_bits_roundtrip() {
        let bits: Vec<u32> = (0..2000).map(|i| ((i * 7) % 3 == 0) as u32).collect();
        let mut enc = RangeEncoder::new();
        let mut p = PROB_INIT;
        for &b in &bits {
            enc.encode_bit(&mut p, b);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut p = PROB_INIT;
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut p), b);
        }
    }

    #[test]
    fn skewed_bits_compress_below_one_bit_each() {
        // 1 in 64 ones: adaptive coding must get well under n/8 bytes.
        let n = 64 * 1024;
        let mut enc = RangeEncoder::new();
        let mut p = PROB_INIT;
        for i in 0..n {
            enc.encode_bit(&mut p, (i % 64 == 63) as u32);
        }
        let bytes = enc.finish();
        assert!(bytes.len() < n / 8 / 4, "got {} bytes", bytes.len());
        let mut dec = RangeDecoder::new(&bytes);
        let mut p = PROB_INIT;
        for i in 0..n {
            assert_eq!(dec.decode_bit(&mut p), (i % 64 == 63) as u32);
        }
    }

    #[test]
    fn direct_bits_roundtrip() {
        let values: Vec<(u32, u32)> = vec![
            (0, 1),
            (1, 1),
            (0xFFFF_FFFF, 32),
            (0x1234_5678, 32),
            (5, 3),
            (1023, 10),
        ];
        let mut enc = RangeEncoder::new();
        for &(v, n) in &values {
            enc.encode_direct(v, n);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(dec.decode_direct(n), v, "{v} over {n} bits");
        }
    }

    #[test]
    fn mixed_adaptive_and_direct() {
        let mut enc = RangeEncoder::new();
        let mut p1 = PROB_INIT;
        let mut p2 = PROB_INIT;
        for i in 0..500u32 {
            enc.encode_bit(&mut p1, i & 1);
            enc.encode_direct(i % 16, 4);
            enc.encode_bit(&mut p2, (i % 5 == 0) as u32);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut p1 = PROB_INIT;
        let mut p2 = PROB_INIT;
        for i in 0..500u32 {
            assert_eq!(dec.decode_bit(&mut p1), i & 1);
            assert_eq!(dec.decode_direct(4), i % 16);
            assert_eq!(dec.decode_bit(&mut p2), (i % 5 == 0) as u32);
        }
    }

    #[test]
    fn decoder_survives_truncated_input() {
        let mut enc = RangeEncoder::new();
        let mut p = PROB_INIT;
        for i in 0..1000u32 {
            enc.encode_bit(&mut p, i & 1);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes[..4]);
        let mut p = PROB_INIT;
        for _ in 0..1000 {
            let b = dec.decode_bit(&mut p);
            assert!(b <= 1);
        }
    }
}
