//! `lzlite` — an LZMA-class general-purpose compressor.
//!
//! The workspace's stand-in for the lzma SDK used by the paper's strongest
//! baseline. Pipeline, like LZMA:
//!
//! * LZ parsing over an **unbounded window** (the entire input buffer) with
//!   hash-chain match finding ([`matchfinder`]) and a repeat-distance
//!   shortcut (`rep0`),
//! * adaptive **binary range coding** of every bit ([`rangecoder`]),
//! * LZMA's context structure: literal trees conditioned on the previous
//!   byte, a three-range length coder, logarithmic distance slots with
//!   model-coded footers and align bits ([`model`]).
//!
//! Relative to `rlz-zlite`, this codec compresses markedly better on
//! redundant text (large window + arithmetic coding) and decodes markedly
//! slower (several adaptive bit decodes per output byte) — precisely the
//! trade the paper's Tables 6, 7 and 9 measure.
//!
//! # Example
//!
//! ```
//! let data = b"boilerplate boilerplate boilerplate".repeat(20);
//! let c = rlz_lzlite::compress(&data, rlz_lzlite::Level::Default);
//! assert!(c.len() < data.len() / 4);
//! assert_eq!(rlz_lzlite::decompress(&c).unwrap(), data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matchfinder;
pub mod model;
pub mod rangecoder;

pub use matchfinder::Level;

use matchfinder::{common_prefix, MatchFinder};
use model::{DistCoder, LenCoder, LitCoder, MAX_LEN, MIN_LEN};
use rangecoder::{RangeDecoder, RangeEncoder, PROB_INIT};

use std::fmt;

/// Error type for [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The stream header could not be parsed.
    BadHeader,
    /// A decoded match reaches before the start of the output.
    BadDistance,
    /// The stream decodes to a different length than declared.
    LengthMismatch,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadHeader => write!(f, "lzlite: malformed header"),
            Error::BadDistance => write!(f, "lzlite: match distance exceeds output"),
            Error::LengthMismatch => write!(f, "lzlite: declared length mismatch"),
        }
    }
}

impl std::error::Error for Error {}

/// Probability state shared by the compressor and decompressor.
struct Model {
    lit: LitCoder,
    len: LenCoder,
    rep_len: LenCoder,
    dist: DistCoder,
    /// P(match | state): indexed by the 2-bit history of literal/match bits.
    is_match: [u16; 4],
    /// P(repeat distance | match, state).
    is_rep: [u16; 4],
}

impl Model {
    fn new() -> Self {
        Model {
            lit: LitCoder::default(),
            len: LenCoder::default(),
            rep_len: LenCoder::default(),
            dist: DistCoder::default(),
            is_match: [PROB_INIT; 4],
            is_rep: [PROB_INIT; 4],
        }
    }
}

#[inline]
fn next_state(state: usize, was_match: bool) -> usize {
    ((state << 1) | was_match as usize) & 3
}

/// Minimum length for a fresh (non-repeat) match to pay for its distance.
const MIN_NEW_MATCH: usize = 3;

/// Compresses `data` at the given effort level.
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    write_vbyte_u64(data.len() as u64, &mut out);
    if data.is_empty() {
        return out;
    }
    let mut rc = RangeEncoder::new();
    let mut model = Model::new();
    let mut mf = MatchFinder::new(data.len(), level);
    let mut state = 0usize;
    let mut rep0: usize = 1; // last match distance (1-based)
    let mut i = 0usize;
    let n = data.len();
    while i < n {
        // Candidate: repeat the previous distance.
        let rep_len = if rep0 <= i {
            common_prefix(data, i - rep0, i, MAX_LEN.min(n - i))
        } else {
            0
        };
        // Candidate: fresh match from the finder.
        let fresh = mf.best_match(data, i);

        let use_rep = rep_len >= MIN_LEN
            && match fresh {
                // A rep match within one byte of the best fresh match is
                // cheaper to code than a new distance.
                Some((len, _)) => rep_len + 1 >= len,
                None => true,
            };
        if use_rep {
            rc.encode_bit(&mut model.is_match[state], 1);
            rc.encode_bit(&mut model.is_rep[state], 1);
            let len = rep_len;
            model.rep_len.encode(&mut rc, len);
            for k in i..i + len {
                mf.insert(data, k);
            }
            i += len;
            state = next_state(state, true);
            continue;
        }
        if let Some((len, dist)) = fresh {
            if len >= MIN_NEW_MATCH {
                rc.encode_bit(&mut model.is_match[state], 1);
                rc.encode_bit(&mut model.is_rep[state], 0);
                model.len.encode(&mut rc, len);
                model.dist.encode(&mut rc, len, (dist - 1) as u32);
                rep0 = dist;
                for k in i..i + len {
                    mf.insert(data, k);
                }
                i += len;
                state = next_state(state, true);
                continue;
            }
        }
        // Literal.
        rc.encode_bit(&mut model.is_match[state], 0);
        let prev = if i > 0 { data[i - 1] } else { 0 };
        model.lit.encode(&mut rc, prev, data[i]);
        mf.insert(data, i);
        i += 1;
        state = next_state(state, false);
    }
    out.extend_from_slice(&rc.finish());
    out
}

/// Decompresses a buffer produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, Error> {
    let mut out = Vec::new();
    decompress_into(data, &mut out)?;
    Ok(out)
}

/// Decompresses a buffer produced by [`compress`] into `out`, **replacing**
/// its contents while reusing its capacity (the hot-path variant for
/// callers that inflate many blocks in a loop). On error `out` may hold a
/// partial prefix.
pub fn decompress_into(data: &[u8], out: &mut Vec<u8>) -> Result<(), Error> {
    out.clear();
    let mut pos = 0usize;
    let raw_len = read_vbyte_u64(data, &mut pos).ok_or(Error::BadHeader)? as usize;
    out.reserve(raw_len.min(1 << 20));
    if raw_len == 0 {
        return Ok(());
    }
    let mut rc = RangeDecoder::new(&data[pos..]);
    let mut model = Model::new();
    let mut state = 0usize;
    let mut rep0: usize = 1;
    while out.len() < raw_len {
        if rc.decode_bit(&mut model.is_match[state]) == 0 {
            let prev = out.last().copied().unwrap_or(0);
            let byte = model.lit.decode(&mut rc, prev);
            out.push(byte);
            state = next_state(state, false);
            continue;
        }
        let (len, dist) = if rc.decode_bit(&mut model.is_rep[state]) == 1 {
            (model.rep_len.decode(&mut rc), rep0)
        } else {
            let len = model.len.decode(&mut rc);
            let dist = model.dist.decode(&mut rc, len) as usize + 1;
            rep0 = dist;
            (len, dist)
        };
        if dist > out.len() {
            return Err(Error::BadDistance);
        }
        if out.len() + len > raw_len {
            return Err(Error::LengthMismatch);
        }
        let start = out.len() - dist;
        for k in 0..len {
            let b = out[start + k];
            out.push(b);
        }
        state = next_state(state, true);
    }
    Ok(())
}

fn write_vbyte_u64(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_vbyte_u64(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = data.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], level: Level) -> usize {
        let c = compress(data, level);
        assert_eq!(decompress(&c).as_deref(), Ok(data), "level {level:?}");
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        for data in [&b""[..], b"a", b"ab", b"aba", b"\x00", b"\xFF\xFF"] {
            for level in [Level::Fast, Level::Default, Level::Best] {
                roundtrip(data, level);
            }
        }
    }

    #[test]
    fn boilerplate_compresses_far_below_10_percent() {
        let page = b"<html><head><meta charset='utf-8'><title>entry</title></head>\
                     <body><div class='nav'>home | about | contact</div>";
        let data: Vec<u8> = page.iter().cycle().take(200_000).copied().collect();
        let n = roundtrip(&data, Level::Default);
        assert!(n < data.len() / 50, "got {} of {}", n, data.len());
    }

    #[test]
    fn long_range_redundancy_is_captured() {
        // Two copies of a 100 KB segment: lzlite must compress the pair to
        // little more than one copy (zlib's 32 KB window could not).
        let mut seg = Vec::new();
        let mut statev = 0x12345678u64;
        for i in 0..100_000u64 {
            statev ^= statev << 13;
            statev ^= statev >> 7;
            statev ^= statev << 17;
            seg.push(if i % 3 == 0 {
                b'a' + (statev % 26) as u8
            } else {
                b' '
            });
        }
        let mut data = seg.clone();
        data.extend_from_slice(&seg);
        let single = compress(&seg, Level::Default).len();
        let double = compress(&data, Level::Default).len();
        assert!(
            double < single + single / 5,
            "double {} vs single {}",
            double,
            single
        );
        roundtrip(&data, Level::Default);
    }

    #[test]
    fn beats_zlite_on_cross_window_redundancy() {
        // Repetitions spaced ~60 KB apart: invisible to a 32 KB window.
        let mut data = Vec::new();
        let unique: Vec<Vec<u8>> = (0..8)
            .map(|i| {
                (0..60_000u32)
                    .map(|j| ((j.wrapping_mul(2654435761).wrapping_add(i * 977)) % 251) as u8)
                    .collect()
            })
            .collect();
        for round in 0..3 {
            for u in &unique {
                data.extend_from_slice(u);
                data.extend_from_slice(format!("round {round}").as_bytes());
            }
        }
        let lz = compress(&data, Level::Default).len();
        let z = rlz_zlite_compress_len(&data);
        assert!(lz < z / 2, "lzlite {} vs zlite-equivalent {}", lz, z);
        roundtrip(&data, Level::Default);
    }

    /// Rough zlite-equivalent: only matches within 32 KB windows are usable,
    /// so simulate by compressing each 60 KB unique segment independently.
    /// (A direct dependency on rlz-zlite would create a dev-dependency
    /// cycle; the cross-codec comparison test lives in the workspace-level
    /// integration tests.)
    fn rlz_zlite_compress_len(data: &[u8]) -> usize {
        // A conservative stand-in: raw length / 2 — the real comparison with
        // rlz-zlite is asserted in `tests/compressors.rs` at workspace root.
        data.len() / 2
    }

    #[test]
    fn incompressible_data_roundtrips_with_bounded_blowup() {
        let mut state = 0xDEADBEEFCAFEBABEu64;
        let data: Vec<u8> = (0..80_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        let n = roundtrip(&data, Level::Default);
        // Adaptive literal coding keeps noise near 1.02x.
        assert!(n < data.len() + data.len() / 10 + 64, "blowup {n}");
    }

    #[test]
    fn rep_distance_exploited_on_strided_data() {
        // Records of fixed stride: after the first match, rep0 should cover
        // the rest cheaply.
        let mut data = Vec::new();
        for i in 0..4000u32 {
            data.extend_from_slice(b"record=");
            data.extend_from_slice(&(i % 7).to_le_bytes());
            data.extend_from_slice(b";pad________;");
        }
        let n = roundtrip(&data, Level::Default);
        assert!(n < data.len() / 20);
    }

    #[test]
    fn truncated_and_corrupt_streams_do_not_panic() {
        let data = b"compressible compressible compressible".repeat(30);
        let c = compress(&data, Level::Default);
        for cut in [0usize, 1, 2, c.len() / 2] {
            let _ = decompress(&c[..cut]);
        }
        let mut bad = c.clone();
        for i in (0..bad.len()).step_by(7) {
            bad[i] ^= 0x55;
        }
        let _ = decompress(&bad);
    }

    #[test]
    fn levels_affect_effort_not_correctness() {
        let data: Vec<u8> = (0..50_000u32)
            .flat_map(|i| format!("line {} of text\n", i % 700).into_bytes())
            .collect();
        let fast = roundtrip(&data, Level::Fast);
        let best = roundtrip(&data, Level::Best);
        assert!(best <= fast + fast / 20, "best {best} fast {fast}");
    }
}
