//! LZMA-style context models: bit trees, the match-length coder and the
//! distance slot/footer coder.

use crate::rangecoder::{RangeDecoder, RangeEncoder, PROB_INIT};

/// A bit tree coding `bits`-wide values MSB-first with one adaptive
/// probability per internal node.
#[derive(Debug, Clone)]
pub struct BitTree {
    probs: Vec<u16>,
    bits: u32,
}

impl BitTree {
    /// Creates a tree for values `0..2^bits`.
    pub fn new(bits: u32) -> Self {
        BitTree {
            probs: vec![PROB_INIT; 1 << bits],
            bits,
        }
    }

    /// Encodes `value` (< 2^bits).
    pub fn encode(&mut self, rc: &mut RangeEncoder, value: u32) {
        debug_assert!(value < (1 << self.bits));
        let mut ctx = 1usize;
        for i in (0..self.bits).rev() {
            let bit = (value >> i) & 1;
            rc.encode_bit(&mut self.probs[ctx], bit);
            ctx = (ctx << 1) | bit as usize;
        }
    }

    /// Decodes one value.
    pub fn decode(&mut self, rc: &mut RangeDecoder<'_>) -> u32 {
        let mut ctx = 1usize;
        for _ in 0..self.bits {
            let bit = rc.decode_bit(&mut self.probs[ctx]);
            ctx = (ctx << 1) | bit as usize;
        }
        ctx as u32 - (1 << self.bits)
    }

    /// Encodes `value` bit-reversed (LSB first), as LZMA does for distance
    /// footers and align bits.
    pub fn encode_reverse(&mut self, rc: &mut RangeEncoder, value: u32) {
        debug_assert!(value < (1 << self.bits));
        let mut ctx = 1usize;
        let mut v = value;
        for _ in 0..self.bits {
            let bit = v & 1;
            v >>= 1;
            rc.encode_bit(&mut self.probs[ctx], bit);
            ctx = (ctx << 1) | bit as usize;
        }
    }

    /// Decodes a bit-reversed value.
    pub fn decode_reverse(&mut self, rc: &mut RangeDecoder<'_>) -> u32 {
        let mut ctx = 1usize;
        let mut value = 0u32;
        for i in 0..self.bits {
            let bit = rc.decode_bit(&mut self.probs[ctx]);
            ctx = (ctx << 1) | bit as usize;
            value |= bit << i;
        }
        value
    }
}

/// Smallest codable match length.
pub const MIN_LEN: usize = 2;
/// Largest codable match length: 2 + 8 + 8 + 256.
pub const MAX_LEN: usize = MIN_LEN + 8 + 8 + 255;

/// LZMA's three-range length coder: lengths 2..=9 in a 3-bit tree,
/// 10..=17 in another, 18..=273 in an 8-bit tree.
#[derive(Debug)]
pub struct LenCoder {
    choice: u16,
    choice2: u16,
    low: BitTree,
    mid: BitTree,
    high: BitTree,
}

impl Default for LenCoder {
    fn default() -> Self {
        LenCoder {
            choice: PROB_INIT,
            choice2: PROB_INIT,
            low: BitTree::new(3),
            mid: BitTree::new(3),
            high: BitTree::new(8),
        }
    }
}

impl LenCoder {
    /// Encodes a match length in `MIN_LEN..=MAX_LEN`.
    pub fn encode(&mut self, rc: &mut RangeEncoder, len: usize) {
        debug_assert!((MIN_LEN..=MAX_LEN).contains(&len));
        let v = (len - MIN_LEN) as u32;
        if v < 8 {
            rc.encode_bit(&mut self.choice, 0);
            self.low.encode(rc, v);
        } else if v < 16 {
            rc.encode_bit(&mut self.choice, 1);
            rc.encode_bit(&mut self.choice2, 0);
            self.mid.encode(rc, v - 8);
        } else {
            rc.encode_bit(&mut self.choice, 1);
            rc.encode_bit(&mut self.choice2, 1);
            self.high.encode(rc, v - 16);
        }
    }

    /// Decodes a match length.
    pub fn decode(&mut self, rc: &mut RangeDecoder<'_>) -> usize {
        if rc.decode_bit(&mut self.choice) == 0 {
            MIN_LEN + self.low.decode(rc) as usize
        } else if rc.decode_bit(&mut self.choice2) == 0 {
            MIN_LEN + 8 + self.mid.decode(rc) as usize
        } else {
            MIN_LEN + 16 + self.high.decode(rc) as usize
        }
    }
}

/// Number of length-dependent distance-slot contexts.
const LEN_TO_DIST_STATES: usize = 4;
/// Slots 0..=3 encode the distance directly.
const FIRST_FOOTER_SLOT: u32 = 4;
/// Slots with model-coded footers (below this) vs direct + align bits.
const MODEL_FOOTER_END: u32 = 14;
/// Align bits coded with a reverse tree for large distances.
const ALIGN_BITS: u32 = 4;

/// Distance coder: 6-bit slot (context = capped length), then footer bits.
#[derive(Debug)]
pub struct DistCoder {
    slots: Vec<BitTree>,
    /// One reverse tree per model-coded slot (4..14).
    footers: Vec<BitTree>,
    align: BitTree,
}

impl Default for DistCoder {
    fn default() -> Self {
        DistCoder {
            slots: (0..LEN_TO_DIST_STATES).map(|_| BitTree::new(6)).collect(),
            footers: (FIRST_FOOTER_SLOT..MODEL_FOOTER_END)
                .map(|slot| BitTree::new((slot >> 1) - 1))
                .collect(),
            align: BitTree::new(ALIGN_BITS),
        }
    }
}

#[inline]
fn dist_state(len: usize) -> usize {
    (len - MIN_LEN).min(LEN_TO_DIST_STATES - 1)
}

/// Slot of a distance value: 0..=3 identity, then logarithmic.
#[inline]
fn dist_slot(dist: u32) -> u32 {
    if dist < FIRST_FOOTER_SLOT {
        return dist;
    }
    let bits = 31 - dist.leading_zeros();
    (bits << 1) | ((dist >> (bits - 1)) & 1)
}

impl DistCoder {
    /// Encodes `dist` (0-based: the actual distance minus one) for a match
    /// of length `len`.
    pub fn encode(&mut self, rc: &mut RangeEncoder, len: usize, dist: u32) {
        let slot = dist_slot(dist);
        self.slots[dist_state(len)].encode(rc, slot);
        if slot < FIRST_FOOTER_SLOT {
            return;
        }
        let footer_bits = (slot >> 1) - 1;
        let base = (2 | (slot & 1)) << footer_bits;
        let rest = dist - base;
        if slot < MODEL_FOOTER_END {
            self.footers[(slot - FIRST_FOOTER_SLOT) as usize].encode_reverse(rc, rest);
        } else {
            rc.encode_direct(rest >> ALIGN_BITS, footer_bits - ALIGN_BITS);
            self.align
                .encode_reverse(rc, rest & ((1 << ALIGN_BITS) - 1));
        }
    }

    /// Decodes a 0-based distance for a match of length `len`.
    pub fn decode(&mut self, rc: &mut RangeDecoder<'_>, len: usize) -> u32 {
        let slot = self.slots[dist_state(len)].decode(rc);
        if slot < FIRST_FOOTER_SLOT {
            return slot;
        }
        let footer_bits = (slot >> 1) - 1;
        let base = (2 | (slot & 1)) << footer_bits;
        if slot < MODEL_FOOTER_END {
            base + self.footers[(slot - FIRST_FOOTER_SLOT) as usize].decode_reverse(rc)
        } else {
            let high = rc.decode_direct(footer_bits - ALIGN_BITS);
            base + (high << ALIGN_BITS) + self.align.decode_reverse(rc)
        }
    }
}

/// Adaptive literal coder with the previous byte's top `LC` bits as context.
#[derive(Debug)]
pub struct LitCoder {
    /// `1 << LC` contexts × 256-leaf trees (stored as 0x100 probs each).
    probs: Vec<u16>,
}

/// Number of literal context bits (LZMA's default `lc=3`).
const LC: u32 = 3;

impl Default for LitCoder {
    fn default() -> Self {
        LitCoder {
            probs: vec![PROB_INIT; (1usize << LC) * 0x100],
        }
    }
}

impl LitCoder {
    #[inline]
    fn ctx_base(prev_byte: u8) -> usize {
        ((prev_byte >> (8 - LC)) as usize) << 8
    }

    /// Encodes `byte` given the preceding byte.
    pub fn encode(&mut self, rc: &mut RangeEncoder, prev_byte: u8, byte: u8) {
        let base = Self::ctx_base(prev_byte);
        let mut ctx = 1usize;
        for i in (0..8).rev() {
            let bit = ((byte >> i) & 1) as u32;
            rc.encode_bit(&mut self.probs[base + ctx], bit);
            ctx = (ctx << 1) | bit as usize;
        }
    }

    /// Decodes one literal byte.
    pub fn decode(&mut self, rc: &mut RangeDecoder<'_>, prev_byte: u8) -> u8 {
        let base = Self::ctx_base(prev_byte);
        let mut ctx = 1usize;
        for _ in 0..8 {
            let bit = rc.decode_bit(&mut self.probs[base + ctx]);
            ctx = (ctx << 1) | bit as usize;
        }
        (ctx & 0xFF) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_tree_roundtrip() {
        let mut enc_tree = BitTree::new(6);
        let mut rc = RangeEncoder::new();
        let values: Vec<u32> = (0..64).chain([0, 63, 31, 32]).collect();
        for &v in &values {
            enc_tree.encode(&mut rc, v);
        }
        let bytes = rc.finish();
        let mut dec_tree = BitTree::new(6);
        let mut rd = RangeDecoder::new(&bytes);
        for &v in &values {
            assert_eq!(dec_tree.decode(&mut rd), v);
        }
    }

    #[test]
    fn reverse_bit_tree_roundtrip() {
        let mut enc_tree = BitTree::new(4);
        let mut rc = RangeEncoder::new();
        for v in 0..16 {
            enc_tree.encode_reverse(&mut rc, v);
        }
        let bytes = rc.finish();
        let mut dec_tree = BitTree::new(4);
        let mut rd = RangeDecoder::new(&bytes);
        for v in 0..16 {
            assert_eq!(dec_tree.decode_reverse(&mut rd), v);
        }
    }

    #[test]
    fn len_coder_full_range() {
        let mut enc = LenCoder::default();
        let mut rc = RangeEncoder::new();
        let lens: Vec<usize> = (MIN_LEN..=MAX_LEN).collect();
        for &l in &lens {
            enc.encode(&mut rc, l);
        }
        let bytes = rc.finish();
        let mut dec = LenCoder::default();
        let mut rd = RangeDecoder::new(&bytes);
        for &l in &lens {
            assert_eq!(dec.decode(&mut rd), l);
        }
    }

    #[test]
    fn dist_slot_is_monotone_and_invertible() {
        for dist in 0u32..100_000 {
            let slot = dist_slot(dist);
            if slot >= FIRST_FOOTER_SLOT {
                let footer_bits = (slot >> 1) - 1;
                let base = (2 | (slot & 1)) << footer_bits;
                assert!(
                    base <= dist && dist - base < (1 << footer_bits),
                    "dist {dist}"
                );
            } else {
                assert_eq!(slot, dist);
            }
        }
    }

    #[test]
    fn dist_coder_roundtrip_wide_range() {
        let dists: Vec<u32> = vec![
            0,
            1,
            2,
            3,
            4,
            5,
            100,
            1 << 10,
            (1 << 16) - 1,
            1 << 20,
            (1 << 26) + 12345,
            u32::MAX / 2,
        ];
        let mut enc = DistCoder::default();
        let mut rc = RangeEncoder::new();
        for (i, &d) in dists.iter().enumerate() {
            enc.encode(&mut rc, MIN_LEN + i % 10, d);
        }
        let bytes = rc.finish();
        let mut dec = DistCoder::default();
        let mut rd = RangeDecoder::new(&bytes);
        for (i, &d) in dists.iter().enumerate() {
            assert_eq!(dec.decode(&mut rd, MIN_LEN + i % 10), d, "dist {d}");
        }
    }

    #[test]
    fn literal_coder_roundtrip_with_context() {
        let text = b"context-sensitive literal coding adapts to byte bigrams";
        let mut enc = LitCoder::default();
        let mut rc = RangeEncoder::new();
        let mut prev = 0u8;
        for &b in text.iter() {
            enc.encode(&mut rc, prev, b);
            prev = b;
        }
        let bytes = rc.finish();
        let mut dec = LitCoder::default();
        let mut rd = RangeDecoder::new(&bytes);
        let mut prev = 0u8;
        for &b in text.iter() {
            let got = dec.decode(&mut rd, prev);
            assert_eq!(got, b);
            prev = got;
        }
    }
}
