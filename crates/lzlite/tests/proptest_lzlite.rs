//! Property tests: lzlite round-trips arbitrary inputs and survives
//! corruption without panicking.

use proptest::prelude::*;
use rlz_lzlite::{compress, decompress, Level};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..3000)) {
        for level in [Level::Fast, Level::Default, Level::Best] {
            let c = compress(&data, level);
            let d = decompress(&c);
            prop_assert_eq!(d.as_deref(), Ok(&data[..]), "{:?}", level);
        }
    }

    #[test]
    fn roundtrip_low_entropy(data in proptest::collection::vec(0u8..3, 0..5000)) {
        let c = compress(&data, Level::Default);
        let d = decompress(&c);
        prop_assert_eq!(d.as_deref(), Ok(&data[..]));
    }

    #[test]
    fn roundtrip_repeated_chunks(
        chunk in proptest::collection::vec(any::<u8>(), 1..80),
        reps in 1usize..150,
    ) {
        let data: Vec<u8> = chunk.iter().cycle().take(chunk.len() * reps).copied().collect();
        let c = compress(&data, Level::Default);
        let d = decompress(&c);
        prop_assert_eq!(d.as_deref(), Ok(&data[..]));
    }

    #[test]
    fn garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..1500)) {
        let _ = decompress(&data);
    }

    #[test]
    fn bitflips_never_panic(
        data in proptest::collection::vec(any::<u8>(), 1..1500),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut c = compress(&data, Level::Fast);
        let i = idx.index(c.len());
        c[i] ^= 1 << bit;
        let _ = decompress(&c);
    }
}
