//! Pipelining/segmentation guard: any split of N concatenated valid
//! request frames across arbitrary TCP segment boundaries must yield
//! byte-identical responses, in request order — no matter how the frames
//! land in the server's receive buffer (one read, many reads, cuts in the
//! middle of a length prefix or an id). The ground truth is a local
//! [`Responder`] executing the same frames one at a time; the server's
//! batched pipelined path must be indistinguishable from it on the wire.
//!
//! Runs against real servers on both event backends.

use proptest::prelude::*;
use rlz_core::{Dictionary, PairCoding, SampleStrategy};
use rlz_serve::protocol::{self, parse_request, Parsed};
use rlz_serve::{serve, Backend, Responder, ServeConfig, ServerHandle};
use rlz_store::{RlzStore, RlzStoreBuilder};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;

const NUM_DOCS: usize = 48;

/// A tiny store shared by every case.
fn test_store() -> &'static RlzStore {
    static STORE: OnceLock<RlzStore> = OnceLock::new();
    STORE.get_or_init(|| {
        let docs: Vec<Vec<u8>> = (0..NUM_DOCS)
            .map(|i| format!("<doc {i}>{}</doc>", "shared boilerplate ".repeat(i % 7)).into_bytes())
            .collect();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, 512, 128, SampleStrategy::Evenly);
        let dir = std::env::temp_dir().join(format!("rlz-serve-pipe-{}", std::process::id()));
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, PairCoding::UV)
            .build(&dir, &slices)
            .unwrap();
        let store = RlzStore::open_resident(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        store
    })
}

type ServerSet = (Vec<(Backend, SocketAddr)>, Vec<ServerHandle>);

/// One long-lived server per backend (handles parked for the process
/// lifetime; the sockets close when the test binary exits).
fn servers() -> &'static Vec<(Backend, SocketAddr)> {
    static SERVERS: OnceLock<ServerSet> = OnceLock::new();
    let (addrs, _) = SERVERS.get_or_init(|| {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        let backends = if cfg!(target_os = "linux") {
            vec![Backend::Epoll, Backend::Portable]
        } else {
            vec![Backend::Portable]
        };
        for backend in backends {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let handle = serve(
                std::sync::Arc::new(test_store().clone()),
                listener,
                ServeConfig {
                    threads: 2,
                    batch_threads: 1,
                    allow_shutdown: false,
                    backend,
                    cache_bytes: 0,
                    max_connections: 0,
                    idle_timeout: None,
                    shed_queue_depth: 0,
                    writer: None,
                    metrics: true,
                    metrics_addr: None,
                },
            )
            .unwrap();
            addrs.push((backend, handle.addr()));
            handles.push(handle);
        }
        (addrs, handles)
    });
    addrs
}

/// The byte-exact responses the server must produce for `frames`: a local
/// responder executing each frame in isolation. The pipelined batched
/// path on the wire must be indistinguishable from this.
fn expected_responses(frames: &[u8], backend_tag: u8) -> Vec<u8> {
    let store = test_store();
    let mut responder = Responder::new(1, false).with_backend_tag(backend_tag);
    let mut out = Vec::new();
    let mut at = 0;
    while at < frames.len() {
        match parse_request(&frames[at..]) {
            Parsed::Frame { request, consumed } => {
                let req = request.expect("only well-formed frames are generated");
                responder.respond(store, &req, &mut out);
                at += consumed;
            }
            other => panic!("generated stream must parse: {other:?}"),
        }
    }
    out
}

/// Encodes one generated request into `frames`.
fn encode_frame(frames: &mut Vec<u8>, kind: u8, ids: &[u32]) {
    match kind {
        0 => protocol::write_get(frames, ids.first().copied().unwrap_or(0) % NUM_DOCS as u32),
        1 => {
            let ids: Vec<u32> = ids.iter().map(|&i| i % NUM_DOCS as u32).collect();
            protocol::write_mget(frames, &ids);
        }
        _ => protocol::write_stat(frames),
    }
}

/// Sends `frames` split at `cuts`, reads back exactly the expected number
/// of response bytes, and asserts byte identity.
fn roundtrip_segmented(
    addr: SocketAddr,
    frames: &[u8],
    expected: &[u8],
    cuts: &[usize],
    dally: bool,
) -> Result<(), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut sorted: Vec<usize> = cuts.iter().map(|&c| c % (frames.len() + 1)).collect();
    sorted.sort_unstable();
    sorted.dedup();
    let mut at = 0;
    let reader = {
        let mut stream = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        let want = expected.len();
        std::thread::spawn(move || -> Result<Vec<u8>, String> {
            let mut got = vec![0u8; want];
            stream
                .read_exact(&mut got)
                .map_err(|e| format!("read responses: {e}"))?;
            Ok(got)
        })
    };
    for &cut in sorted.iter().chain([frames.len()].iter()) {
        if cut > at {
            stream
                .write_all(&frames[at..cut])
                .map_err(|e| format!("write segment: {e}"))?;
            at = cut;
            if dally {
                // Give the server time to observe this exact boundary.
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    }
    let got = reader.join().expect("reader thread")?;
    if got != expected {
        return Err(format!(
            "responses diverge: {} bytes vs {} expected",
            got.len(),
            expected.len()
        ));
    }
    Ok(())
}

proptest! {
    #[test]
    fn any_segmentation_of_valid_frames_is_byte_identical(
        kinds in proptest::collection::vec(0u8..3, 1..24),
        raw_ids in proptest::collection::vec(any::<u32>(), 0..64),
        cuts in proptest::collection::vec(any::<u16>(), 0..24),
    ) {
        let mut frames = Vec::new();
        let mut id_at = 0usize;
        for &kind in &kinds {
            let take = match kind { 0 => 1, 1 => id_at % 7, _ => 0 };
            let ids: Vec<u32> = (0..take)
                .map(|k| raw_ids.get((id_at + k) % raw_ids.len().max(1)).copied().unwrap_or(3))
                .collect();
            id_at += take.max(1);
            encode_frame(&mut frames, kind, &ids);
        }
        let cuts: Vec<usize> = cuts.iter().map(|&c| c as usize).collect();
        for &(backend, addr) in servers() {
            let expected = expected_responses(&frames, backend_tag(backend));
            let result = roundtrip_segmented(addr, &frames, &expected, &cuts, false);
            prop_assert!(
                result.is_ok(),
                "{}: {}",
                name_of(backend),
                result.unwrap_err()
            );
        }
    }
}

fn backend_tag(b: Backend) -> u8 {
    match b {
        Backend::Epoll => protocol::BACKEND_EPOLL,
        _ => protocol::BACKEND_PORTABLE,
    }
}

fn name_of(b: Backend) -> &'static str {
    match b {
        Backend::Epoll => "epoll",
        _ => "portable",
    }
}

/// Deterministic worst case: every frame byte arrives in its own TCP
/// segment with a pause after each, so the server sees every possible
/// partial-frame state (mid-length-prefix, mid-opcode, mid-id).
#[test]
fn byte_at_a_time_segments_are_byte_identical() {
    let mut frames = Vec::new();
    protocol::write_get(&mut frames, 5);
    protocol::write_mget(&mut frames, &[1, 5, 5, 9]);
    protocol::write_stat(&mut frames);
    protocol::write_get(&mut frames, 0);
    let cuts: Vec<usize> = (0..frames.len()).collect();
    for &(backend, addr) in servers() {
        let expected = expected_responses(&frames, backend_tag(backend));
        roundtrip_segmented(addr, &frames, &expected, &cuts, true)
            .unwrap_or_else(|e| panic!("{}: {e}", name_of(backend)));
    }
}

/// A large pipelined burst in one write exercises the batched GET-run
/// path (dedup + seek-aware get_batch) end to end.
#[test]
fn single_write_burst_matches_per_frame_responses() {
    let mut frames = Vec::new();
    for i in 0..700u32 {
        protocol::write_get(&mut frames, (i * 13) % NUM_DOCS as u32);
    }
    for &(backend, addr) in servers() {
        let expected = expected_responses(&frames, backend_tag(backend));
        roundtrip_segmented(addr, &frames, &expected, &[], false)
            .unwrap_or_else(|e| panic!("{}: {e}", name_of(backend)));
    }
}
