//! Metrics-subsystem tests: histogram bucket-boundary exactness, the
//! wait-free recording invariants under concurrency, quantile-estimate
//! error bounds against an exact oracle, and end-to-end scrapes of a live
//! server through both surfaces (the METRICS opcode and the HTTP
//! listener).

use rlz_core::{Dictionary, PairCoding, SampleStrategy};
use rlz_serve::metrics::{bucket_index, BOUNDS, BUCKETS};
use rlz_serve::{serve, Client, Histogram, Metrics, Op, ServeConfig};
use rlz_store::{DocStore, RlzStore, RlzStoreBuilder};
use std::io::{Read, Write};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Histogram unit + property tests
// ---------------------------------------------------------------------------

#[test]
fn bucket_bounds_are_exact_and_strictly_increasing() {
    assert_eq!(BOUNDS.len() + 1, BUCKETS);
    for (i, &b) in BOUNDS.iter().enumerate() {
        let e = 10 + (i as u32) / 2;
        if i % 2 == 0 {
            assert_eq!(b, 1u64 << e, "even slot {i} must sit on 2^{e}");
        } else {
            // Odd slots hold ⌊sqrt(2^(2e+1))⌋ exactly: b² ≤ 2^(2e+1) < (b+1)².
            let target = 1u128 << (2 * e + 1);
            assert!((b as u128) * (b as u128) <= target, "slot {i}");
            assert!(((b + 1) as u128) * ((b + 1) as u128) > target, "slot {i}");
        }
        if i > 0 {
            assert!(BOUNDS[i - 1] < b, "bounds must strictly increase at {i}");
        }
    }
    assert_eq!(BOUNDS[0], 1 << 10);
    assert_eq!(*BOUNDS.last().unwrap(), isqrt_oracle(1u128 << 67));
}

fn isqrt_oracle(n: u128) -> u64 {
    let mut r = (n as f64).sqrt() as u128;
    while r * r > n {
        r -= 1;
    }
    while (r + 1) * (r + 1) <= n {
        r += 1;
    }
    r as u64
}

#[test]
fn bucket_index_matches_linear_scan_at_every_boundary() {
    // The O(1) leading-zeros index must agree with the defining linear
    // scan (first bound ≥ value) at each boundary and its neighbours.
    let linear = |ns: u64| BOUNDS.iter().position(|&b| ns <= b).unwrap_or(BOUNDS.len());
    for probe in [0u64, 1, 2, 1023] {
        assert_eq!(bucket_index(probe), 0, "{probe}");
    }
    for (i, &b) in BOUNDS.iter().enumerate() {
        assert_eq!(bucket_index(b), i, "exactly on bound {i}");
        assert_eq!(bucket_index(b), linear(b));
        assert_eq!(bucket_index(b - 1), linear(b - 1), "below bound {i}");
        assert_eq!(bucket_index(b + 1), linear(b + 1), "above bound {i}");
    }
    assert_eq!(bucket_index(*BOUNDS.last().unwrap() + 1), BUCKETS - 1);
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
}

#[test]
fn recorded_samples_land_in_buckets_that_sum_to_count() {
    let h = Histogram::new();
    let mut lcg = 0x2545F4914F6CDD1Du64;
    let mut next = || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lcg >> 30 // ~0 … 2^34 ns, spanning under-range to overflow
    };
    let mut expect_sum = 0u64;
    for _ in 0..10_000 {
        let v = next();
        expect_sum += v;
        h.record(v);
    }
    h.record_n(500, 0); // a zero-count record must be a no-op
    let snap = h.snapshot();
    assert_eq!(snap.count, 10_000);
    assert_eq!(snap.sum, expect_sum);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
}

#[test]
fn concurrent_recording_loses_nothing() {
    let h = Arc::new(Histogram::new());
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            scope.spawn(move || {
                let mut lcg = 0x9E3779B97F4A7C15u64 ^ t;
                for _ in 0..PER_THREAD {
                    lcg = lcg
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    h.record(lcg >> 34);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
}

#[test]
fn quantile_estimates_stay_within_one_bucket_of_the_oracle() {
    let h = Histogram::new();
    let mut samples = Vec::new();
    let mut lcg = 0xDEADBEEFCAFEu64;
    for _ in 0..20_000 {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Log-uniform-ish spread across the bounded range, all ≥ the first
        // bound so the relative error bound below is meaningful.
        // Shifts ≥ 31 keep every sample ≤ 2^33, inside the bounded range.
        let v = 1024 + (lcg >> (31 + (lcg % 32) as u32));
        samples.push(v);
        h.record(v);
    }
    samples.sort_unstable();
    let snap = h.snapshot();
    for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
        let est = snap.quantile(q);
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let exact = samples[rank - 1];
        // The estimate is the upper bound of the exact sample's bucket:
        // never below the sample, and within one √2 bucket above it.
        assert!(est >= exact, "q={q}: est {est} < exact {exact}");
        assert!(
            (est as f64) <= (exact as f64) * std::f64::consts::SQRT_2 + 1.0,
            "q={q}: est {est} overshoots exact {exact}"
        );
    }
    assert_eq!(
        snap.quantile(0.0).min(snap.quantile(1e-9)),
        snap.quantile(0.0)
    );
    assert_eq!(Histogram::new().snapshot().quantile(0.5), 0);
}

#[test]
fn rendered_histogram_cumulative_counts_are_monotone() {
    let m = Metrics::new();
    for (i, ns) in [700u64, 1500, 40_000, 40_000, 2_000_000, u64::MAX]
        .iter()
        .enumerate()
    {
        m.note_response(Op::Get, *ns, 100 + i as u64, 0);
    }
    let text = rlz_serve::metrics::render_prometheus(&m, None, None, None);
    let mut prev = 0u64;
    let mut bucket_lines = 0;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("rlz_request_duration_seconds_bucket{op=\"get\",") {
            let count: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= prev, "cumulative counts must be monotone: {line}");
            prev = count;
            bucket_lines += 1;
        }
    }
    assert_eq!(bucket_lines, BUCKETS, "48 bounded `le` lines plus +Inf");
    assert_eq!(prev, 6, "+Inf bucket must equal the sample count");
    assert!(text.contains("rlz_request_duration_seconds_count{op=\"get\"} 6"));
}

// ---------------------------------------------------------------------------
// End-to-end: a live server scraped through both surfaces
// ---------------------------------------------------------------------------

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "rlz-metrics-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn build_store(dir: &std::path::Path) -> RlzStore {
    let docs: Vec<Vec<u8>> = (0..32)
        .map(|i| format!("<doc>{i} shared boilerplate text {}</doc>", i * 7).into_bytes())
        .collect();
    let all: Vec<u8> = docs.concat();
    let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
    let dict = Dictionary::sample(&all, 1024, 128, SampleStrategy::Evenly);
    RlzStoreBuilder::new(dict, PairCoding::ZV)
        .build(dir, &slices)
        .unwrap();
    RlzStore::open(dir).unwrap()
}

/// Extracts the value of an exact sample line (`name{labels}` or bare
/// `name`) from exposition text.
fn sample(text: &str, series: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.strip_prefix(series).is_some_and(|r| r.starts_with(' ')))
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
}

#[test]
fn metrics_opcode_reports_exact_request_counts() {
    let dir = TempDir::new("opcode");
    let store = build_store(&dir.0);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve(
        Arc::new(store),
        listener,
        ServeConfig {
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    for id in 0..5u32 {
        client.get(id).unwrap();
    }
    client.mget(&[1, 2, 3]).unwrap();
    client.stat().unwrap();
    assert!(client.get(999).is_err(), "out-of-range GET must error");
    assert!(client.put(b"doc").is_err(), "read-only PUT must error");

    let text = client.metrics().unwrap();
    assert_eq!(sample(&text, "rlz_requests_total{op=\"get\"}"), Some(6.0));
    assert_eq!(
        sample(&text, "rlz_request_errors_total{op=\"get\"}"),
        Some(1.0)
    );
    assert_eq!(sample(&text, "rlz_requests_total{op=\"mget\"}"), Some(1.0));
    assert_eq!(sample(&text, "rlz_requests_total{op=\"put\"}"), Some(1.0));
    assert_eq!(
        sample(&text, "rlz_request_errors_total{op=\"put\"}"),
        Some(1.0)
    );
    assert_eq!(sample(&text, "rlz_requests_total{op=\"stat\"}"), Some(1.0));
    assert_eq!(
        sample(&text, "rlz_request_duration_seconds_count{op=\"get\"}"),
        Some(6.0)
    );
    assert_eq!(sample(&text, "rlz_store_docs"), Some(32.0));
    assert_eq!(sample(&text, "rlz_active_connections"), Some(1.0));
    assert_eq!(sample(&text, "rlz_connections_total"), Some(1.0));
    assert_eq!(sample(&text, "rlz_scrapes_total"), Some(1.0));
    // Latency sums are rendered in seconds and must be positive once
    // requests flowed.
    assert!(sample(&text, "rlz_request_duration_seconds_sum{op=\"get\"}").unwrap() > 0.0);

    client.shutdown_server().unwrap();
    handle.join();
}

#[test]
fn metrics_disabled_server_rejects_the_opcode() {
    let dir = TempDir::new("disabled");
    let store = build_store(&dir.0);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve(
        Arc::new(store),
        listener,
        ServeConfig {
            threads: 1,
            metrics: false,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(handle.metrics_addr(), None);
    let mut client = Client::connect(handle.addr()).unwrap();
    client.get(0).unwrap(); // serving still works
    let err = client.metrics().expect_err("METRICS must be rejected");
    assert!(err.to_string().contains("disabled"), "{err}");
    client.shutdown_server().unwrap();
    handle.join();
}

#[test]
fn metrics_addr_without_metrics_is_an_error() {
    let dir = TempDir::new("conflict");
    let store = build_store(&dir.0);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let err = serve(
        Arc::new(store),
        listener,
        ServeConfig {
            threads: 1,
            metrics: false,
            metrics_addr: Some("127.0.0.1:0".parse().unwrap()),
            ..Default::default()
        },
    )
    .expect_err("metrics_addr with metrics disabled must refuse to start");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    (head.to_string(), body.to_string())
}

#[test]
fn http_listener_serves_prometheus_text() {
    let dir = TempDir::new("http");
    let store = build_store(&dir.0);
    let num_docs = DocStore::num_docs(&store) as u32;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve(
        Arc::new(store),
        listener,
        ServeConfig {
            threads: 1,
            metrics_addr: Some("127.0.0.1:0".parse().unwrap()),
            ..Default::default()
        },
    )
    .unwrap();
    let metrics_addr = handle
        .metrics_addr()
        .expect("port 0 must be bound and reported");
    assert_ne!(metrics_addr.port(), 0);

    let mut client = Client::connect(handle.addr()).unwrap();
    for id in 0..num_docs.min(4) {
        client.get(id).unwrap();
    }

    let (head, body) = http_get(metrics_addr, "/metrics");
    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "exposition content type: {head}"
    );
    assert_eq!(sample(&body, "rlz_requests_total{op=\"get\"}"), Some(4.0));
    assert_eq!(sample(&body, "rlz_store_docs"), Some(num_docs as f64));

    let (head, _) = http_get(metrics_addr, "/other");
    assert!(head.starts_with("HTTP/1.0 404"), "{head}");

    // The second render sees itself and the first (the 404 renders
    // nothing).
    let (_, body2) = http_get(metrics_addr, "/metrics?x=1");
    assert_eq!(sample(&body2, "rlz_scrapes_total"), Some(2.0));

    client.shutdown_server().unwrap();
    handle.join();
}
