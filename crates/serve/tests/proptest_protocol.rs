//! Fuzz-ish property tests for the server's frame parser and request
//! execution: truncated, oversized and garbage frames must come back as
//! `Incomplete`/`Malformed`/error frames — never a panic, and never an
//! allocation driven by an untrusted length field (the parser rejects
//! oversized prefixes before any buffer could grow; mirrors the PR 3
//! header-hardening bounds on the decode path).

use proptest::prelude::*;
use rlz_core::{Dictionary, PairCoding, SampleStrategy};
use rlz_serve::protocol::{
    self, parse_request, Parsed, Request, MAX_REQUEST_LEN, STATUS_OK, STATUS_OUT_OF_RANGE,
};
use rlz_serve::Responder;
use rlz_store::{DocStore, RlzStore, RlzStoreBuilder};

/// A tiny store every execution test can hammer.
fn test_store() -> &'static RlzStore {
    use std::sync::OnceLock;
    static STORE: OnceLock<RlzStore> = OnceLock::new();
    STORE.get_or_init(|| {
        let docs: Vec<Vec<u8>> = (0..32)
            .map(|i| format!("<doc {i}>{}</doc>", "shared boilerplate ".repeat(i % 7)).into_bytes())
            .collect();
        let all: Vec<u8> = docs.concat();
        let dict = Dictionary::sample(&all, 512, 128, SampleStrategy::Evenly);
        let dir = std::env::temp_dir().join(format!("rlz-serve-prop-{}", std::process::id()));
        let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
        RlzStoreBuilder::new(dict, PairCoding::UV)
            .build(&dir, &slices)
            .unwrap();
        let store = RlzStore::open_resident(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        store
    })
}

proptest! {
    #[test]
    fn parser_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Whatever the bytes, parsing terminates with one of the three
        // outcomes and a consumed count inside the buffer.
        match parse_request(&data) {
            Parsed::Incomplete | Parsed::Malformed(_) => {}
            Parsed::Frame { consumed, .. } => {
                prop_assert!(consumed <= data.len());
                prop_assert!(consumed >= 5);
            }
        }
    }

    #[test]
    fn oversized_lengths_are_rejected_before_buffering(extra in 1u32..u32::MAX - MAX_REQUEST_LEN) {
        // Any length field above the cap must be malformed with only the
        // 4-byte prefix present: the server will never wait for (or
        // allocate room for) the claimed payload.
        let len = MAX_REQUEST_LEN + extra;
        prop_assert!(matches!(
            parse_request(&len.to_le_bytes()),
            Parsed::Malformed(_)
        ));
    }

    #[test]
    fn every_strict_prefix_is_incomplete_or_the_same_frame(
        ids in proptest::collection::vec(any::<u32>(), 0..40),
        cut_seed in any::<u16>(),
    ) {
        let mut frame = Vec::new();
        protocol::write_mget(&mut frame, &ids);
        let cut = cut_seed as usize % frame.len();
        prop_assert_eq!(parse_request(&frame[..cut]), Parsed::Incomplete, "cut {}", cut);
        match parse_request(&frame) {
            Parsed::Frame { request: Ok(Request::MGet(got)), consumed } => {
                prop_assert_eq!(consumed, frame.len());
                prop_assert_eq!(got.iter().collect::<Vec<_>>(), ids);
            }
            other => prop_assert!(false, "full frame failed to parse: {:?}", other),
        }
    }

    #[test]
    fn garbage_after_header_yields_error_frame_not_panic(
        opcode in any::<u8>(),
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // A well-delimited frame with arbitrary content either decodes or
        // produces a protocol error status; executing the decoded request
        // against a real store answers exactly one frame and never panics.
        let mut buf = ((1 + body.len()) as u32).to_le_bytes().to_vec();
        buf.push(opcode);
        buf.extend_from_slice(&body);
        let Parsed::Frame { request, consumed } = parse_request(&buf) else {
            panic!("complete frame must parse");
        };
        prop_assert_eq!(consumed, buf.len());
        match request {
            Ok(req) => {
                let store = test_store();
                let mut out = Vec::new();
                let mut responder = Responder::new(1, true);
                responder.respond(store, &req, &mut out);
                prop_assert!(out.len() >= 5, "every request gets a frame back");
                let len = u32::from_le_bytes(out[..4].try_into().unwrap()) as usize;
                prop_assert_eq!(len, out.len() - 4, "response frame length is exact");
            }
            Err((status, msg)) => {
                assert_ne!(status, STATUS_OK);
                prop_assert!(!msg.is_empty());
            }
        }
    }

    #[test]
    fn out_of_range_ids_answer_error_frames(
        id in 32u32..10_000,
        in_range in proptest::collection::vec(0u32..32, 0..8),
    ) {
        let store = test_store();
        let mut responder = Responder::new(1, true);
        // Single GET out of range.
        let mut out = Vec::new();
        responder.respond(store, &Request::Get(id), &mut out);
        prop_assert_eq!(out[4], STATUS_OUT_OF_RANGE);
        // An MGET with one bad id anywhere fails the whole batch with an
        // error frame (matching DocStore::get_batch semantics).
        let mut ids = in_range.clone();
        ids.push(id);
        let mut frame = Vec::new();
        protocol::write_mget(&mut frame, &ids);
        let Parsed::Frame { request: Ok(req), .. } = parse_request(&frame) else {
            panic!("mget frame must parse");
        };
        out.clear();
        responder.respond(store, &req, &mut out);
        prop_assert_eq!(out[4], STATUS_OUT_OF_RANGE);
    }

    #[test]
    fn valid_requests_roundtrip_through_responder(
        ids in proptest::collection::vec(0u32..32, 0..20),
    ) {
        // MGET answered by the responder matches direct store gets, doc
        // for doc, byte for byte — the invariant the CI smoke step also
        // asserts over a real socket.
        let store = test_store();
        let mut frame = Vec::new();
        protocol::write_mget(&mut frame, &ids);
        let Parsed::Frame { request: Ok(req), .. } = parse_request(&frame) else {
            panic!("mget frame must parse");
        };
        let mut out = Vec::new();
        let mut responder = Responder::new(1, true);
        responder.respond(store, &req, &mut out);
        prop_assert_eq!(out[4], STATUS_OK);
        let mut at = 9usize; // 4 len + 1 status + skip count below
        let count = u32::from_le_bytes(out[5..9].try_into().unwrap()) as usize;
        prop_assert_eq!(count, ids.len());
        for &id in &ids {
            let len = u32::from_le_bytes(out[at..at + 4].try_into().unwrap()) as usize;
            at += 4;
            let doc = &out[at..at + len];
            at += len;
            prop_assert_eq!(doc, &store.get(id as usize).unwrap()[..], "doc {}", id);
        }
        prop_assert_eq!(at, out.len());
    }
}
