//! Asserts the acceptance criterion that the *serving* hot path keeps the
//! store layer's zero-allocation property: once a connection's buffers and
//! the worker thread's decode scratch are warm, handling a single-GET
//! request frame — parse, decode-into-output, patch header — performs
//! **zero** heap allocations. This covers everything the server does per
//! request after connection setup; the remaining work is socket syscalls,
//! which do not allocate in userspace.
//!
//! Mirrors `crates/store/tests/alloc_counting.rs` (one `#[test]` per
//! binary so no other test's allocations leak into the window).

use rlz_core::{Dictionary, PairCoding, SampleStrategy};
use rlz_serve::protocol::{self, parse_request, Parsed, STATUS_OK};
use rlz_serve::{Metrics, Responder};
use rlz_store::{RlzStore, RlzStoreBuilder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Counts every allocation and reallocation; frees are not counted (a hot
/// path that frees must have allocated first, so allocs alone suffice).
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates every operation unchanged to `System`; the counter is a
// relaxed atomic increment with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_single_get_request_performs_zero_allocations() {
    let docs: Vec<Vec<u8>> = (0..64)
        .map(|i| {
            format!(
                "<html><nav>home about contact</nav><p>page {i} body {} novel-{}</p></html>",
                "common phrase ".repeat(i % 17),
                i * 31
            )
            .into_bytes()
        })
        .collect();
    let all: Vec<u8> = docs.concat();
    let dict = Dictionary::sample(&all, 2048, 256, SampleStrategy::Evenly);
    let dir = std::env::temp_dir().join(format!("rlz-serve-alloc-{}", std::process::id()));
    let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
    RlzStoreBuilder::new(dict, PairCoding::UV)
        .build(&dir, &slices)
        .unwrap();
    let store = RlzStore::open_resident(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // Simulated connection state, exactly what a worker holds per socket:
    // a receive buffer with the encoded request frame and a response
    // buffer the document decodes into. Metrics are attached: the
    // zero-allocation property must hold with instrumentation enabled
    // (the production default), not just in the ablation.
    let metrics = Arc::new(Metrics::new());
    let mut responder = Responder::new(1, true).with_metrics(Arc::clone(&metrics));
    let mut in_buf = Vec::new();
    let mut out_buf = Vec::new();

    let mut serve_one = |id: u32, out_buf: &mut Vec<u8>, in_buf: &mut Vec<u8>| {
        in_buf.clear();
        protocol::write_get(in_buf, id);
        let Parsed::Frame {
            request: Ok(req),
            consumed,
        } = parse_request(in_buf)
        else {
            panic!("GET frame must parse")
        };
        assert_eq!(consumed, in_buf.len());
        out_buf.clear();
        responder.respond(&store, &req, out_buf);
        assert_eq!(out_buf[4], STATUS_OK, "doc {id}");
    };

    // Warm-up: grow the response buffer and this thread's store scratch
    // (encoded-record bytes + factor streams) to every document's
    // high-water mark, and verify the served bytes while at it.
    for round in 0..2 {
        for (i, doc) in docs.iter().enumerate() {
            serve_one(i as u32, &mut out_buf, &mut in_buf);
            assert_eq!(&out_buf[5..], &doc[..], "round {round} doc {i}");
        }
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..docs.len() {
        serve_one(i as u32, &mut out_buf, &mut in_buf);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm GET request handling allocated {} time(s) over {} requests",
        after - before,
        docs.len()
    );
    // The instrumentation actually observed those requests.
    assert_eq!(
        metrics.requests(rlz_serve::Op::Get),
        (3 * docs.len()) as u64
    );
    assert_eq!(
        metrics.latency(rlz_serve::Op::Get).count,
        (3 * docs.len()) as u64
    );
}
