//! Zero-dependency serving metrics: a static-shape registry of lock-free
//! counters and log-bucketed latency histograms, rendered in Prometheus
//! text exposition format.
//!
//! Design constraints (asserted by tests):
//!
//! * **No hashing, no locks, no allocation on the hot path.** Every
//!   counter lives in a fixed enum-indexed array ([`Op`] → slot), so
//!   recording a served request is a handful of relaxed `fetch_add`s —
//!   the warm GET path stays zero-allocation with metrics enabled
//!   (`tests/alloc_counting*.rs`).
//! * **Wait-free across workers.** [`Histogram::record`] is three relaxed
//!   atomic adds; there is no CAS loop, no seqlock, nothing a stalled
//!   thread can block. Snapshots are racy-but-consistent-enough: each
//!   bucket is read once, so a scrape concurrent with recording can be
//!   off by in-flight samples but never torn within one bucket.
//! * **Log-spaced buckets at power-of-√2 boundaries.** 48 bounded buckets
//!   cover 1.024 µs (2¹⁰ ns) … ~12.1 s (⌊2³³·√2⌋ ns) — two buckets per
//!   octave, so a quantile estimated from the cumulative counts is within
//!   a factor of √2 of the exact value — plus one overflow bucket.
//!   Boundaries are computed exactly in const context (integer square
//!   root), and the bucket for a sample is found in O(1) from its leading
//!   zeros plus at most two compares.
//!
//! The registry is exposed two ways by the server: the `METRICS` opcode on
//! the binary protocol ([`crate::protocol::OP_METRICS`]) and an optional
//! plaintext HTTP/1.0 `GET /metrics` listener (`--metrics-addr`), both
//! rendering through [`render_prometheus`]. Point-in-time gauges from
//! subsystems that keep their own counters — the hot-doc cache, the live
//! store's WAL accounting ([`rlz_store::WriteStats`]), quarantine size —
//! are sampled at render time, not mirrored into the registry.

use rlz_store::{DocStore, ShardedLru, WriteStore};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::protocol::{STATUS_CORRUPT, STATUS_OK};

/// Smallest bounded bucket boundary: 2^[`MIN_EXP`] ns = 1.024 µs.
const MIN_EXP: u32 = 10;

/// Bounded (non-overflow) bucket count: two per octave over
/// 2^10 … 2^33 ns.
const BOUNDED: usize = 48;

/// Total bucket count including the overflow bucket.
pub const BUCKETS: usize = BOUNDED + 1;

/// `floor(sqrt(n))` in const context (binary search; no floats, so the
/// boundaries are bit-exact on every target).
const fn isqrt(n: u128) -> u64 {
    // Upper bound chosen for the inputs here (n < 2^68), keeping the
    // midpoint arithmetic overflow-free.
    let mut lo: u64 = 0;
    let mut hi: u64 = 1 << 34;
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if (mid as u128) * (mid as u128) <= n {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

const fn build_bounds() -> [u64; BOUNDED] {
    let mut b = [0u64; BOUNDED];
    let mut i = 0;
    while i < BOUNDED {
        let e = MIN_EXP + (i / 2) as u32;
        // Even slots sit on powers of two; odd slots on ⌊2^e·√2⌋ =
        // ⌊sqrt(2^(2e+1))⌋, computed exactly.
        b[i] = if i % 2 == 0 {
            1u64 << e
        } else {
            isqrt(1u128 << (2 * e + 1))
        };
        i += 1;
    }
    b
}

/// Inclusive upper bounds of the bounded buckets, in nanoseconds,
/// ascending. Bucket `i` counts samples `v` with
/// `BOUNDS[i-1] < v <= BOUNDS[i]` (bucket 0: `v <= BOUNDS[0]`); the
/// overflow bucket `BOUNDED` counts everything past the last bound.
pub const BOUNDS: [u64; BOUNDED] = build_bounds();

/// The bucket a sample belongs to, in O(1): its octave from
/// `leading_zeros`, then at most two boundary compares within the octave.
pub fn bucket_index(ns: u64) -> usize {
    if ns <= BOUNDS[0] {
        return 0;
    }
    if ns > BOUNDS[BOUNDED - 1] {
        return BOUNDED;
    }
    let e = 63 - ns.leading_zeros();
    let base = 2 * (e - MIN_EXP) as usize;
    if ns <= BOUNDS[base] {
        base
    } else if ns <= BOUNDS[base + 1] {
        base + 1
    } else {
        base + 2
    }
}

// `AtomicU64` is not `Copy`; a const item is the array-repeat idiom.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

/// A wait-free log-bucketed latency histogram (nanosecond samples).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample. Three relaxed `fetch_add`s: wait-free, no
    /// allocation.
    pub fn record(&self, ns: u64) {
        self.record_n(ns, 1);
    }

    /// Records `n` samples of the same value (a batched GET run records
    /// the run's service time once per frame it answered).
    pub fn record_n(&self, ns: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(ns)].fetch_add(n, Relaxed);
        self.count.fetch_add(n, Relaxed);
        self.sum.fetch_add(ns.saturating_mul(n), Relaxed);
    }

    /// A point-in-time copy. Concurrent recording can make the parts
    /// mutually stale by in-flight samples, never torn within one field.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (b, src) in buckets.iter_mut().zip(&self.buckets) {
            *b = src.load(Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A point-in-time [`Histogram`] copy, for quantile estimation and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) sample counts; the last slot is the
    /// overflow bucket.
    pub buckets: [u64; BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values, in nanoseconds (saturating).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Estimated `q`-quantile (`0.0..=1.0`) in nanoseconds: the inclusive
    /// upper bound of the bucket containing the `⌈q·count⌉`-th sample.
    /// For samples within the bounded range the estimate is ≥ the exact
    /// value and within a factor of √2 of it; overflow-bucket estimates
    /// return `u64::MAX`. 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < BOUNDED { BOUNDS[i] } else { u64::MAX };
            }
        }
        u64::MAX
    }
}

/// Number of instrumented opcodes.
pub const OP_COUNT: usize = 6;

/// An instrumented opcode — the index into every per-op metric array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Single-document GET (including batched pipelined runs).
    Get = 0,
    /// Multi-document MGET.
    MGet = 1,
    /// PUT (live store write).
    Put = 2,
    /// APPEND (live store write).
    Append = 3,
    /// DELETE (live store write).
    Delete = 4,
    /// STAT.
    Stat = 5,
}

impl Op {
    /// Every instrumented opcode, in label order.
    pub const ALL: [Op; OP_COUNT] = [Op::Get, Op::MGet, Op::Put, Op::Append, Op::Delete, Op::Stat];

    /// The `op` label value.
    pub fn name(self) -> &'static str {
        match self {
            Op::Get => "get",
            Op::MGet => "mget",
            Op::Put => "put",
            Op::Append => "append",
            Op::Delete => "delete",
            Op::Stat => "stat",
        }
    }
}

/// The server's metric registry: fixed-shape, lock-free, shared by every
/// worker thread. All methods are `&self` and wait-free.
pub struct Metrics {
    requests: [AtomicU64; OP_COUNT],
    errors: [AtomicU64; OP_COUNT],
    response_bytes: [AtomicU64; OP_COUNT],
    latency: [Histogram; OP_COUNT],
    active_connections: AtomicU64,
    connections_total: AtomicU64,
    connections_rejected: AtomicU64,
    shed_reads: AtomicU64,
    shed_writes: AtomicU64,
    idle_reaped: AtomicU64,
    corrupt: AtomicU64,
    bad_frames: AtomicU64,
    bad_opcodes: AtomicU64,
    queue_depth_peak: AtomicU64,
    scrapes: AtomicU64,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const HIST: Histogram = Histogram::new();
        Metrics {
            requests: [ZERO; OP_COUNT],
            errors: [ZERO; OP_COUNT],
            response_bytes: [ZERO; OP_COUNT],
            latency: [HIST; OP_COUNT],
            active_connections: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            shed_reads: AtomicU64::new(0),
            shed_writes: AtomicU64::new(0),
            idle_reaped: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            bad_frames: AtomicU64::new(0),
            bad_opcodes: AtomicU64::new(0),
            queue_depth_peak: AtomicU64::new(0),
            scrapes: AtomicU64::new(0),
        }
    }

    /// Records one executed request: its opcode, service time, response
    /// frame size, and the response status byte (non-OK counts as an
    /// error; `ERR_CORRUPT` additionally counts toward the corruption
    /// total). Wait-free, zero-allocation.
    pub fn note_response(&self, op: Op, ns: u64, bytes: u64, status: u8) {
        let i = op as usize;
        self.requests[i].fetch_add(1, Relaxed);
        self.response_bytes[i].fetch_add(bytes, Relaxed);
        self.latency[i].record(ns);
        if status != STATUS_OK {
            self.errors[i].fetch_add(1, Relaxed);
            if status == STATUS_CORRUPT {
                self.corrupt.fetch_add(1, Relaxed);
            }
        }
    }

    /// Records a flushed pipelined-GET run from the response bytes it
    /// appended (`frames` = `[len u32le][status][body]`…): one request per
    /// frame, each at the run's total service time `ns` (the latency the
    /// last-written response actually experienced), per-frame error and
    /// corruption statuses, and the total bytes. Zero-allocation — the
    /// scan is pointer arithmetic over bytes already written.
    pub fn note_get_run(&self, frames: &[u8], ns: u64) {
        let i = Op::Get as usize;
        let mut n = 0u64;
        let mut errors = 0u64;
        let mut corrupt = 0u64;
        let mut p = 0usize;
        while p + 5 <= frames.len() {
            let len = u32::from_le_bytes([frames[p], frames[p + 1], frames[p + 2], frames[p + 3]])
                as usize;
            let status = frames[p + 4];
            if status != STATUS_OK {
                errors += 1;
                if status == STATUS_CORRUPT {
                    corrupt += 1;
                }
            }
            n += 1;
            p += 4 + len;
        }
        self.requests[i].fetch_add(n, Relaxed);
        self.response_bytes[i].fetch_add(frames.len() as u64, Relaxed);
        self.latency[i].record_n(ns, n);
        if errors > 0 {
            self.errors[i].fetch_add(errors, Relaxed);
        }
        if corrupt > 0 {
            self.corrupt.fetch_add(corrupt, Relaxed);
        }
    }

    /// A GET/MGET answered `ERR_BUSY` by queue-depth shedding, without
    /// touching the store: counted as a request and an error for its op
    /// (no latency sample — nothing executed) plus the shed-reads total.
    pub fn note_shed_read(&self, op: Op) {
        self.requests[op as usize].fetch_add(1, Relaxed);
        self.errors[op as usize].fetch_add(1, Relaxed);
        self.shed_reads.fetch_add(1, Relaxed);
    }

    /// A write answered `ERR_BUSY` because the WAL backlog passed its soft
    /// bound (the request/error accounting is covered by
    /// [`Self::note_response`]; this only feeds the dedicated total).
    pub fn note_shed_write(&self) {
        self.shed_writes.fetch_add(1, Relaxed);
    }

    /// A corrupt document surfaced inside an otherwise-OK MGET response
    /// (per-entry containment).
    pub fn note_corrupt_entry(&self) {
        self.corrupt.fetch_add(1, Relaxed);
    }

    /// A connection was accepted and registered.
    pub fn note_conn_opened(&self) {
        self.connections_total.fetch_add(1, Relaxed);
        self.active_connections.fetch_add(1, Relaxed);
    }

    /// A registered connection was dropped (any reason).
    pub fn note_conn_closed(&self) {
        self.active_connections.fetch_sub(1, Relaxed);
    }

    /// A connection was rejected at the connection cap.
    pub fn note_conn_rejected(&self) {
        self.connections_rejected.fetch_add(1, Relaxed);
    }

    /// A connection was reaped by the idle-timeout sweep (also closes it;
    /// callers must not additionally call [`Self::note_conn_closed`]).
    pub fn note_idle_reaped(&self) {
        self.idle_reaped.fetch_add(1, Relaxed);
        self.active_connections.fetch_sub(1, Relaxed);
    }

    /// A malformed frame was answered `ERR_BAD_FRAME`.
    pub fn note_bad_frame(&self) {
        self.bad_frames.fetch_add(1, Relaxed);
    }

    /// An unknown opcode was answered `ERR_BAD_OPCODE`.
    pub fn note_bad_opcode(&self) {
        self.bad_opcodes.fetch_add(1, Relaxed);
    }

    /// Folds one observation of a worker's service-queue depth into the
    /// high-water mark.
    pub fn note_queue_depth(&self, depth: u64) {
        self.queue_depth_peak.fetch_max(depth, Relaxed);
    }

    /// Requests served for `op` so far.
    pub fn requests(&self, op: Op) -> u64 {
        self.requests[op as usize].load(Relaxed)
    }

    /// Error responses for `op` so far.
    pub fn errors(&self, op: Op) -> u64 {
        self.errors[op as usize].load(Relaxed)
    }

    /// Response bytes written for `op` so far.
    pub fn response_bytes(&self, op: Op) -> u64 {
        self.response_bytes[op as usize].load(Relaxed)
    }

    /// A copy of `op`'s latency histogram.
    pub fn latency(&self, op: Op) -> HistogramSnapshot {
        self.latency[op as usize].snapshot()
    }

    /// Reads answered `ERR_BUSY` by queue-depth shedding so far.
    pub fn shed_reads(&self) -> u64 {
        self.shed_reads.load(Relaxed)
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// Renders `ns` nanoseconds as a decimal seconds literal with no trailing
/// zeros (`1024` → `"0.000001024"`), the form Prometheus `le` labels and
/// `_sum` values use.
fn fmt_seconds(out: &mut String, ns: u64) {
    let whole = ns / 1_000_000_000;
    let frac = ns % 1_000_000_000;
    if frac == 0 {
        let _ = write!(out, "{whole}");
        return;
    }
    let mut digits = format!("{frac:09}");
    while digits.ends_with('0') {
        digits.pop();
    }
    let _ = write!(out, "{whole}.{digits}");
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

fn per_op_counter(out: &mut String, name: &str, help: &str, value: impl Fn(Op) -> u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for op in Op::ALL {
        let _ = writeln!(out, "{name}{{op=\"{}\"}} {}", op.name(), value(op));
    }
}

/// Renders the whole registry — plus point-in-time gauges sampled from the
/// store, cache, and write path when present — in Prometheus text
/// exposition format. Allocates freely; this is the scrape path, not the
/// serve path.
pub fn render_prometheus(
    m: &Metrics,
    store: Option<&dyn DocStore>,
    cache: Option<&ShardedLru>,
    writer: Option<&dyn WriteStore>,
) -> String {
    m.scrapes.fetch_add(1, Relaxed);
    let mut out = String::with_capacity(16 << 10);
    per_op_counter(
        &mut out,
        "rlz_requests_total",
        "Requests served, by opcode.",
        |op| m.requests(op),
    );
    per_op_counter(
        &mut out,
        "rlz_request_errors_total",
        "Error responses, by opcode (includes shed ERR_BUSY answers).",
        |op| m.errors(op),
    );
    per_op_counter(
        &mut out,
        "rlz_response_bytes_total",
        "Response frame bytes written, by opcode.",
        |op| m.response_bytes(op),
    );

    let name = "rlz_request_duration_seconds";
    let _ = writeln!(
        out,
        "# HELP {name} Request service time (parse to response written), by opcode."
    );
    let _ = writeln!(out, "# TYPE {name} histogram");
    for op in Op::ALL {
        let snap = m.latency(op);
        let mut cumulative = 0u64;
        for (i, &bound) in BOUNDS.iter().enumerate() {
            cumulative += snap.buckets[i];
            let _ = write!(out, "{name}_bucket{{op=\"{}\",le=\"", op.name());
            fmt_seconds(&mut out, bound);
            let _ = writeln!(out, "\"}} {cumulative}");
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{op=\"{}\",le=\"+Inf\"}} {}",
            op.name(),
            snap.count
        );
        let _ = write!(out, "{name}_sum{{op=\"{}\"}} ", op.name());
        fmt_seconds(&mut out, snap.sum);
        out.push('\n');
        let _ = writeln!(out, "{name}_count{{op=\"{}\"}} {}", op.name(), snap.count);
    }

    gauge(
        &mut out,
        "rlz_active_connections",
        "Currently registered client connections.",
        m.active_connections.load(Relaxed),
    );
    counter(
        &mut out,
        "rlz_connections_total",
        "Connections accepted and registered since start.",
        m.connections_total.load(Relaxed),
    );
    counter(
        &mut out,
        "rlz_connections_rejected_total",
        "Connections rejected at the connection cap.",
        m.connections_rejected.load(Relaxed),
    );
    counter(
        &mut out,
        "rlz_shed_reads_total",
        "GET/MGET requests answered ERR_BUSY by queue-depth shedding.",
        m.shed_reads.load(Relaxed),
    );
    counter(
        &mut out,
        "rlz_shed_writes_total",
        "Writes answered ERR_BUSY by WAL soft-bound pressure.",
        m.shed_writes.load(Relaxed),
    );
    counter(
        &mut out,
        "rlz_idle_reaped_total",
        "Connections closed by the idle-timeout sweep.",
        m.idle_reaped.load(Relaxed),
    );
    counter(
        &mut out,
        "rlz_corrupt_total",
        "Corrupt-document responses (ERR_CORRUPT frames and flagged MGET entries).",
        m.corrupt.load(Relaxed),
    );
    counter(
        &mut out,
        "rlz_bad_frames_total",
        "Malformed request frames answered ERR_BAD_FRAME.",
        m.bad_frames.load(Relaxed),
    );
    counter(
        &mut out,
        "rlz_bad_opcodes_total",
        "Unknown opcodes answered ERR_BAD_OPCODE.",
        m.bad_opcodes.load(Relaxed),
    );
    gauge(
        &mut out,
        "rlz_queue_depth_peak",
        "High-water mark of a worker's service-queue depth.",
        m.queue_depth_peak.load(Relaxed),
    );
    counter(
        &mut out,
        "rlz_scrapes_total",
        "Metrics renders served (opcode and HTTP combined), including this one.",
        m.scrapes.load(Relaxed),
    );

    if let Some(store) = store {
        let stats = store.stats();
        gauge(
            &mut out,
            "rlz_store_docs",
            "Documents in the served store.",
            stats.num_docs,
        );
        gauge(
            &mut out,
            "rlz_store_payload_bytes",
            "Stored payload bytes (compressed where the store compresses).",
            stats.payload_bytes,
        );
        gauge(
            &mut out,
            "rlz_quarantined_docs",
            "Doc ids quarantined by rlz-verify.",
            store.quarantined_docs(),
        );
    }
    if let Some(cache) = cache {
        counter(
            &mut out,
            "rlz_cache_hits_total",
            "Hot-document cache hits.",
            cache.hits(),
        );
        counter(
            &mut out,
            "rlz_cache_misses_total",
            "Hot-document cache misses.",
            cache.misses(),
        );
        gauge(
            &mut out,
            "rlz_cache_resident_bytes",
            "Decoded payload bytes resident in the hot-document cache.",
            cache.resident_bytes() as u64,
        );
        gauge(
            &mut out,
            "rlz_cache_byte_budget",
            "Hot-document cache byte budget.",
            cache.byte_budget() as u64,
        );
    }
    if let Some(writer) = writer {
        let w = writer.write_stats();
        gauge(
            &mut out,
            "rlz_wal_bytes",
            "Current WAL backlog in bytes.",
            w.wal_bytes,
        );
        counter(
            &mut out,
            "rlz_wal_frames_total",
            "WAL frames logged since open.",
            w.wal_frames,
        );
        gauge(
            &mut out,
            "rlz_wal_unsynced_frames",
            "WAL frames appended but not yet on stable storage.",
            w.unsynced_frames,
        );
        counter(
            &mut out,
            "rlz_seals_total",
            "Tail seals published since open (manifest generations advanced).",
            w.seals,
        );
        counter(
            &mut out,
            "rlz_seal_failures_total",
            "Post-write opportunistic seals that failed (retried on the next write).",
            w.seal_failures,
        );
        counter(
            &mut out,
            "rlz_pre_seal_failures_total",
            "Pre-write seals that failed and rejected the incoming write.",
            w.pre_seal_failures,
        );
        gauge(
            &mut out,
            "rlz_recovery_replayed_frames",
            "WAL frames replayed by the most recent open.",
            w.recovery_replayed_frames,
        );
        gauge(
            &mut out,
            "rlz_recovery_wal_bytes",
            "WAL bytes read back by the most recent open.",
            w.recovery_wal_bytes,
        );
        gauge(
            &mut out,
            "rlz_recovery_torn_bytes",
            "Torn/corrupt WAL tail bytes truncated by the most recent open.",
            w.recovery_torn_bytes,
        );
        gauge(
            &mut out,
            "rlz_recovery_debris_removed",
            "Seal-debris files deleted by the most recent open.",
            w.recovery_debris_removed,
        );
    }
    out
}
