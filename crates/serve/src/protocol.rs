//! The `rlz-serve` wire protocol: length-prefixed binary frames.
//!
//! Every frame — request or response — is a little-endian `u32` length
//! followed by exactly that many bytes. The length counts everything after
//! itself: the opcode/status byte plus the body.
//!
//! ```text
//! request  := len:u32le  opcode:u8  body:[u8; len-1]
//! response := len:u32le  status:u8  body:[u8; len-1]
//! ```
//!
//! Request opcodes:
//!
//! | opcode | name     | body                               |
//! |-------:|----------|------------------------------------|
//! | `0x01` | GET      | `id:u32le`                         |
//! | `0x02` | MGET     | `count:u32le` then `count` × `id:u32le` |
//! | `0x03` | STAT     | empty                              |
//! | `0x04` | METRICS  | empty                              |
//! | `0x10` | PUT      | the document bytes, verbatim       |
//! | `0x11` | APPEND   | `id:u32le` then the bytes to append |
//! | `0x12` | DELETE   | `id:u32le`                         |
//! | `0x7F` | SHUTDOWN | empty                              |
//!
//! Response statuses:
//!
//! | status | name             | body                                    |
//! |-------:|------------------|-----------------------------------------|
//! | `0x00` | OK               | opcode-specific (below)                  |
//! | `0x01` | ERR_BAD_FRAME    | UTF-8 message; connection closes after   |
//! | `0x02` | ERR_BAD_OPCODE   | UTF-8 message; connection stays open     |
//! | `0x03` | ERR_OUT_OF_RANGE | UTF-8 message; connection stays open     |
//! | `0x04` | ERR_INTERNAL     | UTF-8 message; connection stays open     |
//! | `0x05` | ERR_BUSY         | UTF-8 message; see below                 |
//! | `0x06` | ERR_CORRUPT      | UTF-8 message; connection stays open     |
//! | `0x07` | ERR_READONLY     | UTF-8 message; connection stays open     |
//! | `0x08` | ERR_WAL_FULL     | UTF-8 message; connection stays open     |
//!
//! `ERR_BUSY` is the overload-shedding answer: a server past its queue
//! budget answers GET/MGET with it (connection stays open — back off and
//! retry), a server at its connection cap sends one unsolicited `ERR_BUSY`
//! frame right after accepting, then closes, and a server whose write-
//! ahead-log backlog passed its bound answers *writes* with it while reads
//! keep serving at full speed. `ERR_CORRUPT` reports a document the store
//! detected as corrupt (checksum mismatch, quarantined id) — the document
//! is unreadable but the server, the connection, and every other document
//! are fine. `ERR_READONLY` answers any write sent to a server without a
//! writable store; `ERR_WAL_FULL` means the write-ahead log hit its hard
//! bound *and* the automatic drain-seal could not reclaim space (the
//! normal case seals and accepts the write) — durable, the write did not
//! happen, retry with a longer backoff.
//!
//! Writes are acknowledged only after the store call returns: under the
//! `always` fsync policy an OK to PUT/APPEND/DELETE means the mutation is
//! on stable storage and will survive `kill -9` of the server.
//!
//! OK bodies: GET → the document bytes verbatim; METRICS → the server's
//! metric registry rendered as UTF-8 Prometheus text exposition format
//! (the same text the optional HTTP `GET /metrics` listener serves; a
//! server running without metrics answers `ERR_BAD_OPCODE`); PUT → the
//! assigned `id:u32le`; APPEND / DELETE → empty; MGET → `count:u32le` then
//! `count` entries, in request order; SHUTDOWN → empty. Each MGET entry is
//! `elen:u32le` followed by `elen & 0x7FFF_FFFF` payload bytes. With the
//! top bit of `elen` clear the payload is the document verbatim; with it
//! **set** ([`MGET_ENTRY_ERR`]) this entry failed and the payload is
//! `status:u8` + UTF-8 message instead — per-entry containment, so one
//! corrupt document fails its slot while the rest of the batch is served.
//! (Legal because document lengths are bounded by [`MAX_RESPONSE_LEN`],
//! which never sets bit 31.) STAT → the store statistics followed by
//! serving statistics:
//!
//! ```text
//! num_docs:u64le  payload_bytes:u64le  max_record_len:u64le      (store)
//! cache_budget_bytes:u64le  cache_hits:u64le  cache_misses:u64le
//! cache_resident_bytes:u64le  backend:u8  integrity:u8           (server)
//! ```
//!
//! `cache_budget_bytes` is 0 when the hot-document cache is disabled;
//! `backend` is one of the `BACKEND_*` tags; `integrity` is the store's
//! `rlz_store::Integrity` tag (0 = none, 1 = crc32c). Clients that only
//! care about the store may read the first 24 bytes and ignore the rest.
//!
//! # Hardening
//!
//! The parser never trusts a length field before bounding it:
//! request frames are capped at [`MAX_REQUEST_LEN`] (derived from the MGET
//! cap [`MAX_MGET`]), so a hostile or corrupt length prefix cannot drive a
//! large allocation — the frame is rejected as malformed before any buffer
//! grows, mirroring the header hardening of the store decode path. An MGET
//! whose count field disagrees with its body length is rejected without
//! reading a single id.

/// Fetch one document: body is `id:u32le`.
pub const OP_GET: u8 = 0x01;
/// Fetch a batch: body is `count:u32le` then `count` ids.
pub const OP_MGET: u8 = 0x02;
/// Store statistics: empty body.
pub const OP_STAT: u8 = 0x03;
/// Metrics scrape: empty body. OK body: the registry rendered in
/// Prometheus text exposition format (UTF-8).
pub const OP_METRICS: u8 = 0x04;
/// Store a new document: body is the document bytes. OK body: assigned
/// `id:u32le`.
pub const OP_PUT: u8 = 0x10;
/// Append to a document: body is `id:u32le` + the bytes. OK body: empty.
pub const OP_APPEND: u8 = 0x11;
/// Delete a document: body is `id:u32le`. OK body: empty.
pub const OP_DELETE: u8 = 0x12;
/// Ask the server to exit cleanly (when enabled): empty body.
pub const OP_SHUTDOWN: u8 = 0x7F;

/// Success.
pub const STATUS_OK: u8 = 0x00;
/// Unparseable or oversized frame; the server closes the connection after
/// sending this (the stream can no longer be framed).
pub const STATUS_BAD_FRAME: u8 = 0x01;
/// Well-framed request with an unknown or disabled opcode.
pub const STATUS_BAD_OPCODE: u8 = 0x02;
/// A requested document id is out of range.
pub const STATUS_OUT_OF_RANGE: u8 = 0x03;
/// The store failed to serve a valid request (I/O error).
pub const STATUS_INTERNAL: u8 = 0x04;
/// The server is shedding load (queue budget exceeded) or refusing the
/// connection (connection cap). Back off and retry.
pub const STATUS_BUSY: u8 = 0x05;
/// The requested document is corrupt (checksum mismatch or quarantined):
/// permanently unreadable until the store is repaired, but the connection
/// and every other document are unaffected.
pub const STATUS_CORRUPT: u8 = 0x06;
/// A write opcode reached a server that has no write path (every store
/// family except the live store).
pub const STATUS_READONLY: u8 = 0x07;
/// The write-ahead log hit its hard bound and the store's automatic
/// drain-seal could not reclaim space (normally it seals and the write
/// proceeds, so this signals a sealing problem — e.g. the disk is full).
/// Back off longer than for `ERR_BUSY`.
pub const STATUS_WAL_FULL: u8 = 0x08;

/// STAT backend tag: the portable poll-loop fallback.
pub const BACKEND_PORTABLE: u8 = 0;
/// STAT backend tag: kernel readiness notification (epoll).
pub const BACKEND_EPOLL: u8 = 1;

/// Length of the STAT OK body: 7 × `u64` + the backend tag byte + the
/// store integrity tag byte.
pub const STAT_BODY_LEN: usize = 7 * 8 + 2;

/// Top bit of an MGET entry's `elen` field: set when the entry is an
/// error record (`status:u8` + message) rather than document bytes.
pub const MGET_ENTRY_ERR: u32 = 1 << 31;

/// Maximum ids per MGET request.
pub const MAX_MGET: usize = 1 << 16;

/// Maximum document bytes in one PUT (or appended bytes in one APPEND).
/// Bounds the largest write frame a server must buffer.
pub const MAX_PUT_LEN: usize = 4 << 20;

/// Maximum legal value of a request frame's length field: opcode byte plus
/// the largest body (an MGET id list or an APPEND payload, whichever is
/// larger).
pub const MAX_REQUEST_LEN: u32 = {
    let mget = (1 + 4 + 4 * MAX_MGET) as u32;
    let append = (1 + 4 + MAX_PUT_LEN) as u32;
    if mget > append {
        mget
    } else {
        append
    }
};

/// Maximum response frame length (1 GiB), enforced on both sides: the
/// server answers an error frame instead of a GET/MGET response whose
/// body would exceed it (split the batch), and the client treats a longer
/// length prefix as stream corruption. Shared, so a legal server response
/// can never be rejected by a conforming client — and the length field
/// can never wrap `u32`.
pub const MAX_RESPONSE_LEN: u32 = 1 << 30;

/// The ids of a parsed MGET request, borrowed from the receive buffer
/// (decoded lazily so parsing allocates nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MGetIds<'a> {
    bytes: &'a [u8],
}

impl<'a> MGetIds<'a> {
    /// Number of ids requested.
    pub fn len(&self) -> usize {
        self.bytes.len() / 4
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The requested ids, in request order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + 'a {
        self.bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
    }
}

/// A parsed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request<'a> {
    /// Fetch one document.
    Get(u32),
    /// Fetch a batch of documents.
    MGet(MGetIds<'a>),
    /// Store statistics.
    Stat,
    /// Metrics scrape (Prometheus text rendering of the registry).
    Metrics,
    /// Store a new document (body borrowed from the receive buffer).
    Put(&'a [u8]),
    /// Append bytes to document `id`.
    Append(u32, &'a [u8]),
    /// Delete a document.
    Delete(u32),
    /// Clean server shutdown.
    Shutdown,
}

/// Outcome of [`parse_request`] over a receive buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parsed<'a> {
    /// Not enough bytes buffered for a whole frame yet.
    Incomplete,
    /// The stream cannot be framed (insane length prefix). The server
    /// answers [`STATUS_BAD_FRAME`] and closes the connection.
    Malformed(&'static str),
    /// One complete frame occupying `consumed` buffer bytes. `request` is
    /// `Err((status, message))` when the frame is well-delimited but its
    /// content is invalid — the connection survives those.
    Frame {
        /// The decoded request, or the error frame to answer with.
        request: Result<Request<'a>, (u8, &'static str)>,
        /// Bytes this frame occupies at the head of the buffer.
        consumed: usize,
    },
}

/// Parses the frame at the head of `buf`, if complete. Never allocates and
/// never reads past the frame it delimits.
pub fn parse_request(buf: &[u8]) -> Parsed<'_> {
    let Some(len_bytes) = buf.get(..4) else {
        return Parsed::Incomplete;
    };
    let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes"));
    if len == 0 {
        return Parsed::Malformed("zero-length request frame");
    }
    if len > MAX_REQUEST_LEN {
        return Parsed::Malformed("request frame exceeds protocol maximum");
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Parsed::Incomplete;
    }
    let opcode = buf[4];
    let body = &buf[5..total];
    let request = match opcode {
        OP_GET => match body.try_into() {
            Ok(id) => Ok(Request::Get(u32::from_le_bytes(id))),
            Err(_) => Err((STATUS_BAD_FRAME, "GET body must be exactly 4 bytes")),
        },
        OP_MGET => parse_mget(body),
        OP_PUT if body.len() <= MAX_PUT_LEN => Ok(Request::Put(body)),
        OP_PUT => Err((STATUS_BAD_FRAME, "PUT body exceeds protocol maximum")),
        OP_APPEND => match body.split_first_chunk::<4>() {
            Some((id, bytes)) if bytes.len() <= MAX_PUT_LEN => {
                Ok(Request::Append(u32::from_le_bytes(*id), bytes))
            }
            Some(_) => Err((STATUS_BAD_FRAME, "APPEND body exceeds protocol maximum")),
            None => Err((STATUS_BAD_FRAME, "APPEND body shorter than its id field")),
        },
        OP_DELETE => match body.try_into() {
            Ok(id) => Ok(Request::Delete(u32::from_le_bytes(id))),
            Err(_) => Err((STATUS_BAD_FRAME, "DELETE body must be exactly 4 bytes")),
        },
        OP_STAT if body.is_empty() => Ok(Request::Stat),
        OP_STAT => Err((STATUS_BAD_FRAME, "STAT carries no body")),
        OP_METRICS if body.is_empty() => Ok(Request::Metrics),
        OP_METRICS => Err((STATUS_BAD_FRAME, "METRICS carries no body")),
        OP_SHUTDOWN if body.is_empty() => Ok(Request::Shutdown),
        OP_SHUTDOWN => Err((STATUS_BAD_FRAME, "SHUTDOWN carries no body")),
        _ => Err((STATUS_BAD_OPCODE, "unknown opcode")),
    };
    Parsed::Frame {
        request,
        consumed: total,
    }
}

fn parse_mget(body: &[u8]) -> Result<Request<'_>, (u8, &'static str)> {
    let Some(count_bytes) = body.get(..4) else {
        return Err((STATUS_BAD_FRAME, "MGET body shorter than its count field"));
    };
    let count = u32::from_le_bytes(count_bytes.try_into().expect("4 bytes")) as usize;
    if count > MAX_MGET {
        return Err((STATUS_BAD_FRAME, "MGET count exceeds protocol maximum"));
    }
    if body.len() - 4 != 4 * count {
        return Err((STATUS_BAD_FRAME, "MGET count disagrees with body length"));
    }
    Ok(Request::MGet(MGetIds { bytes: &body[4..] }))
}

/// Appends a GET request frame.
pub fn write_get(out: &mut Vec<u8>, id: u32) {
    out.extend_from_slice(&5u32.to_le_bytes());
    out.push(OP_GET);
    out.extend_from_slice(&id.to_le_bytes());
}

/// Appends an MGET request frame. Panics if `ids.len() > MAX_MGET` (the
/// frame would be rejected by any conforming server).
pub fn write_mget(out: &mut Vec<u8>, ids: &[u32]) {
    assert!(ids.len() <= MAX_MGET, "MGET of {} ids", ids.len());
    let len = (1 + 4 + 4 * ids.len()) as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.push(OP_MGET);
    out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for &id in ids {
        out.extend_from_slice(&id.to_le_bytes());
    }
}

/// Appends a PUT request frame. Panics if the document exceeds
/// [`MAX_PUT_LEN`] (any conforming server would reject the frame).
pub fn write_put(out: &mut Vec<u8>, doc: &[u8]) {
    assert!(doc.len() <= MAX_PUT_LEN, "PUT of {} bytes", doc.len());
    out.extend_from_slice(&((1 + doc.len()) as u32).to_le_bytes());
    out.push(OP_PUT);
    out.extend_from_slice(doc);
}

/// Appends an APPEND request frame. Panics if the appended bytes exceed
/// [`MAX_PUT_LEN`].
pub fn write_append(out: &mut Vec<u8>, id: u32, bytes: &[u8]) {
    assert!(
        bytes.len() <= MAX_PUT_LEN,
        "APPEND of {} bytes",
        bytes.len()
    );
    out.extend_from_slice(&((1 + 4 + bytes.len()) as u32).to_le_bytes());
    out.push(OP_APPEND);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Appends a DELETE request frame.
pub fn write_delete(out: &mut Vec<u8>, id: u32) {
    out.extend_from_slice(&5u32.to_le_bytes());
    out.push(OP_DELETE);
    out.extend_from_slice(&id.to_le_bytes());
}

/// Appends a STAT request frame.
pub fn write_stat(out: &mut Vec<u8>) {
    out.extend_from_slice(&1u32.to_le_bytes());
    out.push(OP_STAT);
}

/// Appends a METRICS request frame.
pub fn write_metrics(out: &mut Vec<u8>) {
    out.extend_from_slice(&1u32.to_le_bytes());
    out.push(OP_METRICS);
}

/// Appends a SHUTDOWN request frame.
pub fn write_shutdown(out: &mut Vec<u8>) {
    out.extend_from_slice(&1u32.to_le_bytes());
    out.push(OP_SHUTDOWN);
}

/// Reserves a response header at the end of `out` and returns the frame's
/// start offset; append the body, then call [`finish_response`]. This
/// two-step dance lets the server decode a document *directly* into the
/// output buffer and patch the length afterwards — the warm GET path stays
/// allocation-free.
pub fn begin_response(out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0u8; 5]);
    start
}

/// Patches the header of the response begun at `start` with the final
/// length and `status`. Callers must keep bodies within
/// [`MAX_RESPONSE_LEN`] (the server enforces this per opcode); the
/// assertion makes a violation a loud failure instead of a silently
/// wrapped length field.
pub fn finish_response(out: &mut [u8], start: usize, status: u8) {
    assert!(
        out.len() - start - 4 <= MAX_RESPONSE_LEN as usize,
        "response frame exceeds MAX_RESPONSE_LEN"
    );
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    out[start + 4] = status;
}

/// Appends a complete error response frame.
pub fn write_error(out: &mut Vec<u8>, status: u8, message: &str) {
    debug_assert_ne!(status, STATUS_OK);
    let start = begin_response(out);
    out.extend_from_slice(message.as_bytes());
    finish_response(out, start, status);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_roundtrip() {
        let mut buf = Vec::new();
        write_get(&mut buf, 42);
        match parse_request(&buf) {
            Parsed::Frame {
                request: Ok(Request::Get(42)),
                consumed,
            } => assert_eq!(consumed, buf.len()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mget_roundtrip_and_pipelining() {
        let ids = [7u32, 7, 0, 999_999];
        let mut buf = Vec::new();
        write_mget(&mut buf, &ids);
        write_stat(&mut buf);
        let Parsed::Frame {
            request: Ok(Request::MGet(got)),
            consumed,
        } = parse_request(&buf)
        else {
            panic!("expected MGET frame")
        };
        assert_eq!(got.len(), 4);
        assert!(!got.is_empty());
        assert_eq!(got.iter().collect::<Vec<_>>(), ids);
        // The second pipelined frame parses from the remainder.
        match parse_request(&buf[consumed..]) {
            Parsed::Frame {
                request: Ok(Request::Stat),
                consumed: c2,
            } => assert_eq!(consumed + c2, buf.len()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_mget_is_valid() {
        let mut buf = Vec::new();
        write_mget(&mut buf, &[]);
        let Parsed::Frame {
            request: Ok(Request::MGet(ids)),
            ..
        } = parse_request(&buf)
        else {
            panic!("empty MGET must parse")
        };
        assert!(ids.is_empty());
    }

    #[test]
    fn truncated_frames_are_incomplete() {
        let mut buf = Vec::new();
        write_mget(&mut buf, &[1, 2, 3]);
        for cut in 0..buf.len() {
            assert_eq!(
                parse_request(&buf[..cut]),
                Parsed::Incomplete,
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn oversized_and_zero_lengths_are_malformed() {
        assert!(matches!(
            parse_request(&u32::MAX.to_le_bytes()),
            Parsed::Malformed(_)
        ));
        assert!(matches!(
            parse_request(&(MAX_REQUEST_LEN + 1).to_le_bytes()),
            Parsed::Malformed(_)
        ));
        assert!(matches!(
            parse_request(&0u32.to_le_bytes()),
            Parsed::Malformed(_)
        ));
        // The cap itself is not malformed, merely incomplete.
        assert_eq!(
            parse_request(&MAX_REQUEST_LEN.to_le_bytes()),
            Parsed::Incomplete
        );
    }

    #[test]
    fn invalid_content_keeps_the_frame_boundary() {
        // Unknown opcode: 2-byte frame, opcode 0x6E + 1 body byte.
        let mut buf = 2u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0x6E, 0xFF]);
        write_get(&mut buf, 3); // pipelined valid frame after it
        let Parsed::Frame {
            request: Err((status, _)),
            consumed,
        } = parse_request(&buf)
        else {
            panic!("expected content error")
        };
        assert_eq!(status, STATUS_BAD_OPCODE);
        assert!(matches!(
            parse_request(&buf[consumed..]),
            Parsed::Frame {
                request: Ok(Request::Get(3)),
                ..
            }
        ));
    }

    #[test]
    fn mget_count_must_match_body() {
        // Frame says 3 ids but carries 2.
        let body_len = 1 + 4 + 8;
        let mut buf = (body_len as u32).to_le_bytes().to_vec();
        buf.push(OP_MGET);
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&[0; 8]);
        let Parsed::Frame {
            request: Err((STATUS_BAD_FRAME, msg)),
            ..
        } = parse_request(&buf)
        else {
            panic!("count mismatch must be rejected")
        };
        assert!(msg.contains("count"));
        // A count field claiming the maximum plus one is rejected even
        // though the enclosing frame length is legal-looking.
        let mut buf = MAX_REQUEST_LEN.to_le_bytes().to_vec();
        buf.push(OP_MGET);
        buf.extend_from_slice(&((MAX_MGET + 1) as u32).to_le_bytes());
        buf.resize(4 + MAX_REQUEST_LEN as usize, 0);
        assert!(matches!(
            parse_request(&buf),
            Parsed::Frame {
                request: Err((STATUS_BAD_FRAME, _)),
                ..
            }
        ));
    }

    #[test]
    fn write_opcodes_roundtrip() {
        let mut buf = Vec::new();
        write_put(&mut buf, b"new document bytes");
        write_append(&mut buf, 7, b" more");
        write_delete(&mut buf, 9);
        let Parsed::Frame {
            request: Ok(Request::Put(doc)),
            consumed,
        } = parse_request(&buf)
        else {
            panic!("PUT must parse")
        };
        assert_eq!(doc, b"new document bytes");
        let Parsed::Frame {
            request: Ok(Request::Append(7, bytes)),
            consumed: c2,
        } = parse_request(&buf[consumed..])
        else {
            panic!("APPEND must parse")
        };
        assert_eq!(bytes, b" more");
        match parse_request(&buf[consumed + c2..]) {
            Parsed::Frame {
                request: Ok(Request::Delete(9)),
                consumed: c3,
            } => assert_eq!(consumed + c2 + c3, buf.len()),
            other => panic!("{other:?}"),
        }
        // Empty PUT bodies and APPEND payloads are legal frames.
        let mut buf = Vec::new();
        write_put(&mut buf, b"");
        assert!(matches!(
            parse_request(&buf),
            Parsed::Frame {
                request: Ok(Request::Put(b"")),
                ..
            }
        ));
        // APPEND shorter than its id field is a content error that keeps
        // the frame boundary.
        let mut buf = 3u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&[OP_APPEND, 0, 0]);
        assert!(matches!(
            parse_request(&buf),
            Parsed::Frame {
                request: Err((STATUS_BAD_FRAME, _)),
                ..
            }
        ));
    }

    #[test]
    fn response_header_patching() {
        let mut out = b"prefix".to_vec();
        let start = begin_response(&mut out);
        out.extend_from_slice(b"abc");
        finish_response(&mut out, start, STATUS_OK);
        assert_eq!(&out[..6], b"prefix");
        assert_eq!(u32::from_le_bytes(out[6..10].try_into().unwrap()), 4);
        assert_eq!(out[10], STATUS_OK);
        assert_eq!(&out[11..], b"abc");
    }

    #[test]
    fn error_frames_carry_their_message() {
        let mut out = Vec::new();
        write_error(&mut out, STATUS_OUT_OF_RANGE, "doc 9 out of range");
        let len = u32::from_le_bytes(out[..4].try_into().unwrap()) as usize;
        assert_eq!(len, out.len() - 4);
        assert_eq!(out[4], STATUS_OUT_OF_RANGE);
        assert_eq!(&out[5..], b"doc 9 out of range");
    }
}
