//! The serving engine: a thread-per-core accept loop over a nonblocking
//! listener, with no external async runtime.
//!
//! Every worker thread holds a try-cloned handle of the same nonblocking
//! `TcpListener` and runs a small event loop: accept whatever is pending,
//! then tick every connection it owns — flush queued output, read available
//! input, parse complete frames, append responses. The kernel's own accept
//! queue balances connections across workers; a worker with nothing to do
//! parks briefly instead of spinning.
//!
//! The hot path preserves the store layer's zero-allocation property end to
//! end: frames are parsed in place from the connection's receive buffer
//! (no copy, no allocation), and a GET decodes **directly into the
//! connection's output buffer** through `DocStore::get_into` — once a
//! connection's buffers and the worker thread's decode scratch are warm, a
//! GET request performs zero heap allocations (asserted by the
//! counting-allocator test in `tests/alloc_counting.rs`).

use crate::protocol::{
    self, Parsed, Request, STATUS_BAD_FRAME, STATUS_BAD_OPCODE, STATUS_INTERNAL, STATUS_OK,
    STATUS_OUT_OF_RANGE,
};
use rlz_store::{DocStore, StoreError};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Stop reading from a connection while this much output is queued
/// (backpressure against clients that pipeline faster than they drain).
const OUT_HIGH_WATER: usize = 8 << 20;

/// Read chunk size per `read()` call.
const READ_CHUNK: usize = 64 << 10;

/// How long an idle worker parks between polls.
const IDLE_PARK: Duration = Duration::from_micros(250);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (each runs an accept + connection loop). Defaults to
    /// the machine's available parallelism.
    pub threads: usize,
    /// Threads handed to `DocStore::get_batch` per MGET request. 1 keeps
    /// MGET seek-aware and block-coalesced without spawning; raise it only
    /// for stores on high-latency static storage.
    pub batch_threads: usize,
    /// Whether the SHUTDOWN opcode is honoured (on for the benchmark and
    /// CI smoke flows; a production deployment would disable it and use
    /// process signals).
    pub allow_shutdown: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            batch_threads: 1,
            allow_shutdown: true,
        }
    }
}

/// A running server: join or stop it through this handle.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once the server has stopped (SHUTDOWN opcode or [`stop`]).
    ///
    /// [`stop`]: ServerHandle::stop
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Signals every worker to exit after its current tick.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Blocks until every worker has exited (a SHUTDOWN frame, or a prior
    /// [`stop`](ServerHandle::stop) call, triggers that).
    pub fn join(self) {
        for w in self.workers {
            w.join().expect("serve worker panicked");
        }
    }

    /// Signals shutdown and waits for the workers.
    pub fn shutdown(self) {
        self.stop();
        self.join();
    }
}

/// Starts serving `store` on `listener` with `cfg.threads` workers.
///
/// The listener is switched to nonblocking mode and try-cloned into every
/// worker. Returns immediately; use the handle to join or stop.
pub fn serve(
    store: Arc<dyn DocStore>,
    listener: TcpListener,
    cfg: ServeConfig,
) -> io::Result<ServerHandle> {
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let threads = cfg.threads.max(1);
    let mut workers = Vec::with_capacity(threads);
    for w in 0..threads {
        let listener = listener.try_clone()?;
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let cfg = cfg.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("rlz-serve-{w}"))
                .spawn(move || worker_loop(listener, store, stop, cfg))?,
        );
    }
    Ok(ServerHandle {
        addr,
        stop,
        workers,
    })
}

/// Per-request execution state shared by a worker's connections: the MGET
/// id scratch lives here so decoding a batch request allocates at most once
/// per worker lifetime, not once per frame.
pub struct Responder {
    batch_threads: usize,
    allow_shutdown: bool,
    ids: Vec<u32>,
}

/// What the connection should do after a response was appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep serving this connection.
    Continue,
    /// Flush what is queued, then close the connection.
    Close,
    /// Flush, close, and stop the whole server.
    Shutdown,
}

impl Responder {
    /// A responder for the given per-MGET thread count and shutdown policy.
    pub fn new(batch_threads: usize, allow_shutdown: bool) -> Self {
        Responder {
            batch_threads: batch_threads.max(1),
            allow_shutdown,
            ids: Vec::new(),
        }
    }

    /// Executes one well-formed request against `store`, appending exactly
    /// one response frame to `out`. This is the whole per-request hot path:
    /// for a GET it performs zero heap allocations once buffers are warm.
    pub fn respond(
        &mut self,
        store: &dyn DocStore,
        req: &Request<'_>,
        out: &mut Vec<u8>,
    ) -> Action {
        // Largest legal response *body*: the length field counts the status
        // byte plus the body and must stay within the cap the client also
        // enforces.
        const MAX_BODY: usize = protocol::MAX_RESPONSE_LEN as usize - 1;
        match req {
            Request::Get(id) => {
                let start = protocol::begin_response(out);
                match store.get_into(*id as usize, out) {
                    Ok(()) if out.len() - start - 5 > MAX_BODY => {
                        out.truncate(start);
                        protocol::write_error(
                            out,
                            STATUS_INTERNAL,
                            "document exceeds the response size cap",
                        );
                    }
                    Ok(()) => protocol::finish_response(out, start, STATUS_OK),
                    Err(e) => {
                        out.truncate(start);
                        write_store_error(out, &e);
                    }
                }
                Action::Continue
            }
            Request::MGet(ids) => {
                self.ids.clear();
                self.ids.extend(ids.iter());
                match store.get_batch(&self.ids, self.batch_threads) {
                    Ok(docs) => {
                        let body: usize = 4 + docs.iter().map(|d| 4 + d.len()).sum::<usize>();
                        if body > MAX_BODY {
                            protocol::write_error(
                                out,
                                STATUS_INTERNAL,
                                "MGET response exceeds the size cap; split the batch",
                            );
                        } else {
                            let start = protocol::begin_response(out);
                            out.extend_from_slice(&(docs.len() as u32).to_le_bytes());
                            for doc in &docs {
                                out.extend_from_slice(&(doc.len() as u32).to_le_bytes());
                                out.extend_from_slice(doc);
                            }
                            protocol::finish_response(out, start, STATUS_OK);
                        }
                    }
                    Err(e) => write_store_error(out, &e),
                }
                Action::Continue
            }
            Request::Stat => {
                let stats = store.stats();
                let start = protocol::begin_response(out);
                out.extend_from_slice(&stats.num_docs.to_le_bytes());
                out.extend_from_slice(&stats.payload_bytes.to_le_bytes());
                out.extend_from_slice(&stats.max_record_len.to_le_bytes());
                protocol::finish_response(out, start, STATUS_OK);
                Action::Continue
            }
            Request::Shutdown => {
                if self.allow_shutdown {
                    let start = protocol::begin_response(out);
                    protocol::finish_response(out, start, STATUS_OK);
                    Action::Shutdown
                } else {
                    protocol::write_error(
                        out,
                        STATUS_BAD_OPCODE,
                        "SHUTDOWN is disabled on this server",
                    );
                    Action::Continue
                }
            }
        }
    }
}

/// Maps a store failure onto a protocol error frame. Only the error path
/// formats (and therefore allocates) a message.
fn write_store_error(out: &mut Vec<u8>, e: &StoreError) {
    let status = match e {
        StoreError::DocOutOfRange(_) => STATUS_OUT_OF_RANGE,
        _ => STATUS_INTERNAL,
    };
    protocol::write_error(out, status, &e.to_string());
}

/// One client connection owned by a worker.
struct Conn {
    stream: TcpStream,
    /// Received-but-unparsed bytes; `in_start..` is the live region.
    in_buf: Vec<u8>,
    in_start: usize,
    /// Queued-but-unsent response bytes; `out_start..` is the live region.
    out_buf: Vec<u8>,
    out_start: usize,
    /// No more requests will be processed; close once `out_buf` drains.
    closing: bool,
    /// The peer half-closed its send side (read returned 0).
    peer_eof: bool,
}

enum TickOutcome {
    /// Made progress (accepted bytes either way).
    Busy,
    /// Nothing to do right now.
    Idle,
    /// Connection finished or failed; drop it.
    Drop,
    /// A SHUTDOWN request was honoured.
    Shutdown,
}

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            in_buf: Vec::new(),
            in_start: 0,
            out_buf: Vec::new(),
            out_start: 0,
            closing: false,
            peer_eof: false,
        })
    }

    /// Writes queued output until done or the socket refuses more.
    /// Returns false when the connection is dead.
    fn flush(&mut self, busy: &mut bool) -> bool {
        while self.out_start < self.out_buf.len() {
            match self.stream.write(&self.out_buf[self.out_start..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.out_start += n;
                    *busy = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.out_start == self.out_buf.len() {
            self.out_buf.clear();
            self.out_start = 0;
        }
        true
    }

    /// Reads whatever is available, bounded by backpressure limits.
    /// Returns false when the connection is dead.
    fn fill(&mut self, chunk: &mut [u8], busy: &mut bool) -> bool {
        // Bound buffered input: one maximal frame plus one read chunk is
        // enough to make progress; beyond that the client is flooding.
        let in_cap = protocol::MAX_REQUEST_LEN as usize + chunk.len();
        loop {
            if self.out_buf.len() - self.out_start >= OUT_HIGH_WATER
                || self.in_buf.len() - self.in_start >= in_cap
            {
                return true;
            }
            match self.stream.read(chunk) {
                Ok(0) => {
                    self.peer_eof = true;
                    return true;
                }
                Ok(n) => {
                    self.in_buf.extend_from_slice(&chunk[..n]);
                    *busy = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Parses and executes every complete frame currently buffered.
    fn drain_frames(&mut self, store: &dyn DocStore, responder: &mut Responder) -> Action {
        let mut action = Action::Continue;
        while !self.closing {
            // Backpressure on the output side too: a burst of pipelined
            // requests must not materialize unbounded responses in one
            // turn. Unhandled frames stay buffered and drain after the
            // queued output flushes.
            if self.out_buf.len() - self.out_start >= OUT_HIGH_WATER {
                break;
            }
            match protocol::parse_request(&self.in_buf[self.in_start..]) {
                Parsed::Incomplete => break,
                Parsed::Malformed(msg) => {
                    protocol::write_error(&mut self.out_buf, STATUS_BAD_FRAME, msg);
                    self.closing = true;
                }
                Parsed::Frame { request, consumed } => {
                    match request {
                        Ok(req) => match responder.respond(store, &req, &mut self.out_buf) {
                            Action::Continue => {}
                            done => {
                                self.closing = true;
                                action = done;
                            }
                        },
                        Err((status, msg)) => {
                            protocol::write_error(&mut self.out_buf, status, msg);
                            if status == STATUS_BAD_FRAME {
                                // Content desync (e.g. an MGET whose count
                                // lies): the boundary held this time, but
                                // trust is gone.
                                self.closing = true;
                            }
                        }
                    }
                    self.in_start += consumed;
                }
            }
        }
        // Compact the receive buffer without reallocating.
        if self.in_start > 0 {
            let len = self.in_buf.len();
            self.in_buf.copy_within(self.in_start..len, 0);
            self.in_buf.truncate(len - self.in_start);
            self.in_start = 0;
        }
        action
    }

    /// One event-loop turn over this connection.
    fn tick(
        &mut self,
        store: &dyn DocStore,
        responder: &mut Responder,
        chunk: &mut [u8],
    ) -> TickOutcome {
        let mut busy = false;
        if !self.flush(&mut busy) {
            return TickOutcome::Drop;
        }
        if self.closing {
            return if self.out_buf.is_empty() {
                TickOutcome::Drop
            } else if busy {
                TickOutcome::Busy
            } else {
                TickOutcome::Idle
            };
        }
        if !self.fill(chunk, &mut busy) {
            return TickOutcome::Drop;
        }
        let action = self.drain_frames(store, responder);
        // After EOF no further bytes can arrive, so once every complete
        // frame is drained the connection is done — any leftover partial
        // frame can never complete and must not keep the socket alive.
        if self.peer_eof && !self.closing && self.out_buf.len() - self.out_start < OUT_HIGH_WATER {
            self.closing = true;
        }
        // Push out whatever the frames produced before yielding the slot.
        if !self.flush(&mut busy) {
            return TickOutcome::Drop;
        }
        if action == Action::Shutdown {
            return TickOutcome::Shutdown;
        }
        if self.closing && self.out_buf.is_empty() {
            return TickOutcome::Drop;
        }
        if busy {
            TickOutcome::Busy
        } else {
            TickOutcome::Idle
        }
    }

    /// Best-effort blocking drain of queued output, used when the server is
    /// stopping so a final response (e.g. the SHUTDOWN ack) reaches the
    /// peer.
    fn final_flush(&mut self) {
        if self.out_start >= self.out_buf.len() {
            return;
        }
        let _ = self.stream.set_nonblocking(false);
        let _ = self
            .stream
            .set_write_timeout(Some(Duration::from_millis(250)));
        let _ = self.stream.write_all(&self.out_buf[self.out_start..]);
        let _ = self.stream.flush();
    }
}

fn worker_loop(
    listener: TcpListener,
    store: Arc<dyn DocStore>,
    stop: Arc<AtomicBool>,
    cfg: ServeConfig,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut responder = Responder::new(cfg.batch_threads, cfg.allow_shutdown);
    while !stop.load(Ordering::Acquire) {
        let mut busy = false;
        // Accept everything pending; the listener is shared, so whichever
        // worker polls first takes the connection.
        loop {
            match listener.accept() {
                Ok((stream, _)) => match Conn::new(stream) {
                    Ok(conn) => {
                        conns.push(conn);
                        busy = true;
                    }
                    Err(_) => continue,
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (EMFILE, aborted handshakes):
                // yield and retry next turn.
                Err(_) => break,
            }
        }
        let mut i = 0;
        while i < conns.len() {
            match conns[i].tick(store.as_ref(), &mut responder, &mut chunk) {
                TickOutcome::Busy => {
                    busy = true;
                    i += 1;
                }
                TickOutcome::Idle => i += 1,
                TickOutcome::Drop => {
                    conns.swap_remove(i);
                }
                TickOutcome::Shutdown => {
                    conns[i].final_flush();
                    conns.swap_remove(i);
                    stop.store(true, Ordering::Release);
                    busy = true;
                }
            }
            if stop.load(Ordering::Acquire) {
                break;
            }
        }
        if !busy {
            std::thread::park_timeout(IDLE_PARK);
        }
    }
    // Stopping: give every connection one last chance to receive queued
    // responses before the sockets drop.
    for conn in &mut conns {
        conn.final_flush();
    }
}
