//! The serving engine: readiness-driven workers over a shared nonblocking
//! listener, with no external async runtime.
//!
//! Two interchangeable backends drive the same connection state machine:
//!
//! * **epoll** (Linux, the default) — each worker owns an epoll instance;
//!   the shared listener is registered `EPOLLEXCLUSIVE` (one readiness
//!   event wakes one worker, no thundering herd) and every connection is
//!   registered edge-triggered. Idle workers block **in the kernel** with
//!   an infinite timeout — zero busy-wait, ~0% idle CPU — and wake in
//!   microseconds when a socket turns readable. Write interest is armed
//!   only while a connection's output is backed up, and a shared
//!   `eventfd` wakes every worker immediately on shutdown.
//! * **portable fallback** — the original poll-everything loop, kept for
//!   non-Linux targets and as an ablation (`RLZ_SERVE_BACKEND=portable`).
//!   Its idle park now uses a decaying backoff: any progress resets the
//!   park interval to `PARK_MIN`, so a request landing on a
//!   recently-active worker is picked up within microseconds instead of a
//!   full fixed park interval, while a long-idle worker backs off to
//!   `PARK_MAX` between polls.
//!
//! The connection state machine is **pipelining-aware**: every complete
//! frame buffered on a readable socket is drained in one pass, and runs of
//! pipelined GET frames are batched through the store's seek-aware
//! [`DocStore::get_batch`] (duplicate ids decoded once) before any
//! response bytes are written. MGET requests deduplicate repeated ids the
//! same way — query-log batches repeat hot documents — scattering the
//! single decode back to every request position.
//!
//! An optional **hot-document cache** (a byte-budgeted
//! [`rlz_store::ShardedLru`] shared by all workers, keyed by doc id)
//! serves decoded payload bytes straight from memory; hit/miss/resident
//! counters are surfaced through the STAT opcode.
//!
//! The hot path preserves the store layer's zero-allocation property end
//! to end: frames are parsed in place from the connection's receive buffer
//! (no copy, no allocation), and a GET decodes **directly into the
//! connection's output buffer** through `DocStore::get_into` — once a
//! connection's buffers and the worker thread's decode scratch are warm, a
//! GET request performs zero heap allocations, with or without a cache hit
//! (asserted by the counting-allocator tests in `tests/`).

use crate::metrics::{self, Metrics, Op};
use crate::protocol::{
    self, Parsed, Request, BACKEND_EPOLL, BACKEND_PORTABLE, STATUS_BAD_FRAME, STATUS_BAD_OPCODE,
    STATUS_BUSY, STATUS_CORRUPT, STATUS_INTERNAL, STATUS_OK, STATUS_OUT_OF_RANGE, STATUS_READONLY,
    STATUS_WAL_FULL,
};
use rlz_store::{DocStore, ShardedLru, StoreError, WriteStore};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(target_os = "linux")]
use crate::event::{interest, Epoll, WakeFd};
#[cfg(target_os = "linux")]
use std::os::unix::io::AsRawFd;

/// Stop reading from a connection while this much output is queued
/// (backpressure against clients that pipeline faster than they drain).
const OUT_HIGH_WATER: usize = 8 << 20;

/// Read chunk size per `read()` call.
const READ_CHUNK: usize = 64 << 10;

/// Fallback backend: shortest idle park (the interval immediately after
/// any progress, so a fresh request is noticed quickly).
const PARK_MIN: Duration = Duration::from_micros(20);

/// Fallback backend: longest idle park (the decayed interval a long-idle
/// worker settles at, bounding idle CPU).
const PARK_MAX: Duration = Duration::from_millis(2);

/// Pipelined GET frames batched per `get_batch` call before responses are
/// written (bounds how much output one drain turn can materialize).
const GET_RUN_MAX: usize = 512;

/// Which event backend drives the workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// `RLZ_SERVE_BACKEND` env override if set, else epoll on Linux and
    /// the portable fallback elsewhere.
    #[default]
    Auto,
    /// OS readiness notification (Linux only; an error elsewhere).
    Epoll,
    /// The portable poll loop with decaying idle backoff.
    Portable,
}

impl Backend {
    /// Parses a CLI/env name.
    pub fn parse(name: &str) -> Option<Backend> {
        match name {
            "auto" => Some(Backend::Auto),
            "epoll" => Some(Backend::Epoll),
            "portable" | "poll" => Some(Backend::Portable),
            _ => None,
        }
    }

    fn resolve(self) -> io::Result<ResolvedBackend> {
        match self {
            Backend::Portable => Ok(ResolvedBackend::Portable),
            Backend::Epoll => {
                #[cfg(target_os = "linux")]
                {
                    Ok(ResolvedBackend::Epoll)
                }
                #[cfg(not(target_os = "linux"))]
                {
                    Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "the epoll backend requires Linux; use Backend::Portable",
                    ))
                }
            }
            Backend::Auto => match std::env::var("RLZ_SERVE_BACKEND") {
                Ok(name) => match Backend::parse(&name) {
                    Some(Backend::Auto) | None => Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("RLZ_SERVE_BACKEND={name:?} (expected \"epoll\" or \"portable\")"),
                    )),
                    Some(chosen) => chosen.resolve(),
                },
                Err(_) => {
                    if cfg!(target_os = "linux") {
                        Backend::Epoll.resolve()
                    } else {
                        Ok(ResolvedBackend::Portable)
                    }
                }
            },
        }
    }
}

/// The backend a running server actually uses (after [`Backend::Auto`]
/// resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedBackend {
    /// Kernel readiness notification.
    Epoll,
    /// Poll loop with decaying backoff.
    Portable,
}

impl ResolvedBackend {
    /// Human-readable name (matches the bench artifact labels).
    pub fn name(self) -> &'static str {
        match self {
            ResolvedBackend::Epoll => "epoll",
            ResolvedBackend::Portable => "portable",
        }
    }

    /// The wire tag reported in the extended STAT response.
    pub fn tag(self) -> u8 {
        match self {
            ResolvedBackend::Epoll => BACKEND_EPOLL,
            ResolvedBackend::Portable => BACKEND_PORTABLE,
        }
    }
}

/// Server configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads (each runs an accept + connection loop). Defaults to
    /// the machine's available parallelism.
    pub threads: usize,
    /// Threads handed to `DocStore::get_batch` per MGET request. 1 keeps
    /// MGET seek-aware and block-coalesced without spawning; raise it only
    /// for stores on high-latency static storage.
    pub batch_threads: usize,
    /// Whether the SHUTDOWN opcode is honoured (on for the benchmark and
    /// CI smoke flows; a production deployment would disable it and use
    /// process signals).
    pub allow_shutdown: bool,
    /// Event backend selection (see [`Backend`]).
    pub backend: Backend,
    /// Hot-document cache budget in bytes; 0 disables the cache. The cache
    /// holds decoded payloads keyed by doc id, shared by all workers, and
    /// reports hits/misses/resident bytes through STAT.
    pub cache_bytes: usize,
    /// Server-wide connection cap; 0 = unlimited. Above the cap an
    /// accepted connection is answered with one `ERR_BUSY` frame and
    /// closed immediately, so a flood of connections degrades into fast
    /// typed rejections instead of unbounded per-connection state. (The
    /// cap is checked without cross-worker locking, so a simultaneous
    /// accept burst can briefly overshoot it by at most the worker count.)
    pub max_connections: usize,
    /// Close a connection that has made no progress for this long; `None`
    /// disables the sweep. Bounds how long abandoned or wedged peers can
    /// pin per-connection buffers (and slots under the connection cap).
    pub idle_timeout: Option<Duration>,
    /// Queue-depth load-shedding budget; 0 disables shedding. When more
    /// than this many connections are waiting for service on a worker,
    /// GET/MGET requests are answered with `ERR_BUSY` (the connection
    /// stays open; clients back off and retry) while STAT and SHUTDOWN
    /// still pass — bounded tail latency under overload instead of a
    /// collapsing queue.
    pub shed_queue_depth: usize,
    /// Write path for the PUT/APPEND/DELETE opcodes. `None` (every
    /// read-only store family) answers writes with `ERR_READONLY`. When
    /// set, writes past the store's WAL-backlog bound are shed with
    /// `ERR_BUSY` while reads keep serving at full speed.
    pub writer: Option<Arc<dyn WriteStore>>,
    /// Whether the metric registry is collected and the METRICS opcode
    /// answered (on by default; the off switch exists as a benchmark
    /// ablation — recording is wait-free and allocation-free, so the tax
    /// is a few atomic adds and two clock reads per request).
    pub metrics: bool,
    /// Bind a plaintext HTTP/1.0 `GET /metrics` listener here (Prometheus
    /// text exposition format; port 0 picks a free port, reported by
    /// [`ServerHandle::metrics_addr`]). `None` disables the listener; the
    /// METRICS opcode on the main port works either way.
    pub metrics_addr: Option<SocketAddr>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("threads", &self.threads)
            .field("batch_threads", &self.batch_threads)
            .field("allow_shutdown", &self.allow_shutdown)
            .field("backend", &self.backend)
            .field("cache_bytes", &self.cache_bytes)
            .field("max_connections", &self.max_connections)
            .field("idle_timeout", &self.idle_timeout)
            .field("shed_queue_depth", &self.shed_queue_depth)
            .field(
                "writer",
                &self.writer.as_ref().map(|_| "Arc<dyn WriteStore>"),
            )
            .field("metrics", &self.metrics)
            .field("metrics_addr", &self.metrics_addr)
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            batch_threads: 1,
            allow_shutdown: true,
            backend: Backend::Auto,
            cache_bytes: 0,
            max_connections: 0,
            idle_timeout: None,
            shed_queue_depth: 0,
            writer: None,
            metrics: true,
            metrics_addr: None,
        }
    }
}

/// The overload-containment knobs a worker enforces, plus the shared
/// connection counter they act on.
#[derive(Debug, Clone)]
struct Overload {
    /// Live accepted connections across all workers.
    conn_count: Arc<AtomicUsize>,
    max_connections: usize,
    idle_timeout: Option<Duration>,
    shed_queue_depth: usize,
}

impl Overload {
    fn from_config(cfg: &ServeConfig) -> Self {
        Overload {
            conn_count: Arc::new(AtomicUsize::new(0)),
            max_connections: cfg.max_connections,
            idle_timeout: cfg.idle_timeout,
            shed_queue_depth: cfg.shed_queue_depth,
        }
    }

    /// True when accepting one more connection would exceed the cap.
    fn at_capacity(&self) -> bool {
        self.max_connections > 0 && self.conn_count.load(Ordering::Acquire) >= self.max_connections
    }
}

/// Answers a connection the cap rejected with one `ERR_BUSY` frame, then
/// drops it. Best-effort and bounded: the peer may already be gone, and a
/// peer that refuses to read must not wedge the accept loop.
fn reject_busy(stream: TcpStream, metrics: Option<&Metrics>) {
    if let Some(m) = metrics {
        m.note_conn_rejected();
    }
    let mut stream = stream;
    let mut frame = Vec::with_capacity(64);
    protocol::write_error(
        &mut frame,
        STATUS_BUSY,
        "connection limit reached; retry later",
    );
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = stream.write_all(&frame);
}

/// A running server: join or stop it through this handle.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    backend: ResolvedBackend,
    stop: Arc<AtomicBool>,
    #[cfg(target_os = "linux")]
    wake: Option<WakeFd>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound address of the HTTP `GET /metrics` listener, when
    /// [`ServeConfig::metrics_addr`] requested one (useful with port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The event backend the workers run on.
    pub fn backend(&self) -> ResolvedBackend {
        self.backend
    }

    /// True once the server has stopped (SHUTDOWN opcode or [`stop`]).
    ///
    /// [`stop`]: ServerHandle::stop
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Signals every worker to exit after its current tick. Workers parked
    /// in the kernel are woken immediately.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        #[cfg(target_os = "linux")]
        if let Some(wake) = &self.wake {
            wake.wake();
        }
    }

    /// Blocks until every worker has exited (a SHUTDOWN frame, or a prior
    /// [`stop`](ServerHandle::stop) call, triggers that).
    pub fn join(self) {
        for w in self.workers {
            w.join().expect("serve worker panicked");
        }
    }

    /// Signals shutdown and waits for the workers.
    pub fn shutdown(self) {
        self.stop();
        self.join();
    }
}

/// Starts serving `store` on `listener` with `cfg.threads` workers.
///
/// The listener is switched to nonblocking mode and try-cloned into every
/// worker. Returns immediately; use the handle to join or stop.
pub fn serve(
    store: Arc<dyn DocStore>,
    listener: TcpListener,
    cfg: ServeConfig,
) -> io::Result<ServerHandle> {
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let backend = cfg.backend.resolve()?;
    let stop = Arc::new(AtomicBool::new(false));
    let overload = Overload::from_config(&cfg);
    let cache: Option<Arc<ShardedLru>> =
        (cfg.cache_bytes > 0).then(|| Arc::new(ShardedLru::with_byte_budget(cfg.cache_bytes)));
    let metrics: Option<Arc<Metrics>> = cfg.metrics.then(|| Arc::new(Metrics::new()));
    let threads = cfg.threads.max(1);
    let mut workers = Vec::with_capacity(threads + 1);
    #[cfg(target_os = "linux")]
    let wake = match backend {
        ResolvedBackend::Epoll => Some(WakeFd::new()?),
        ResolvedBackend::Portable => None,
    };
    for w in 0..threads {
        let listener = listener.try_clone()?;
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let mut responder =
            Responder::new(cfg.batch_threads, cfg.allow_shutdown).with_backend_tag(backend.tag());
        if let Some(cache) = &cache {
            responder = responder.with_cache(Arc::clone(cache));
        }
        if let Some(writer) = &cfg.writer {
            responder = responder.with_writer(Arc::clone(writer));
        }
        if let Some(metrics) = &metrics {
            responder = responder.with_metrics(Arc::clone(metrics));
        }
        let builder = std::thread::Builder::new().name(format!("rlz-serve-{w}"));
        let overload = overload.clone();
        let handle = match backend {
            #[cfg(target_os = "linux")]
            ResolvedBackend::Epoll => {
                let ep = Epoll::new()?;
                let wake = wake.clone().expect("epoll backend always has a wake fd");
                builder.spawn(move || {
                    epoll_worker_loop(ep, listener, store, stop, responder, wake, overload)
                })?
            }
            #[cfg(not(target_os = "linux"))]
            ResolvedBackend::Epoll => unreachable!("epoll backend never resolves off Linux"),
            ResolvedBackend::Portable => builder
                .spawn(move || portable_worker_loop(listener, store, stop, responder, overload))?,
        };
        workers.push(handle);
    }
    let metrics_addr = match (cfg.metrics_addr, &metrics) {
        (Some(bind_addr), Some(metrics)) => {
            let http = TcpListener::bind(bind_addr)?;
            http.set_nonblocking(true)?;
            let bound = http.local_addr()?;
            let metrics = Arc::clone(metrics);
            let store = Arc::clone(&store);
            let cache = cache.clone();
            let writer = cfg.writer.clone();
            let stop = Arc::clone(&stop);
            let handle = std::thread::Builder::new()
                .name("rlz-metrics-http".into())
                .spawn(move || metrics_http_loop(http, metrics, store, cache, writer, stop))?;
            workers.push(handle);
            Some(bound)
        }
        (Some(_), None) => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "metrics_addr requires ServeConfig::metrics",
            ))
        }
        (None, _) => None,
    };
    Ok(ServerHandle {
        addr,
        metrics_addr,
        backend,
        stop,
        #[cfg(target_os = "linux")]
        wake,
        workers,
    })
}

/// The metrics HTTP listener: one thread, one request per connection,
/// HTTP/1.0 with `Connection: close`. Deliberately minimal — a scrape
/// path, not a web server: bounded header read with timeouts, `GET
/// /metrics` answers the rendered registry, anything else 404s. Polls the
/// stop flag between accepts so [`ServerHandle::join`] returns promptly.
fn metrics_http_loop(
    listener: TcpListener,
    metrics: Arc<Metrics>,
    store: Arc<dyn DocStore>,
    cache: Option<Arc<ShardedLru>>,
    writer: Option<Arc<dyn WriteStore>>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = serve_metrics_http(
                    stream,
                    &metrics,
                    store.as_ref(),
                    cache.as_deref(),
                    writer.as_deref(),
                );
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // WouldBlock (idle) and transient accept failures alike: park
            // briefly, re-check the stop flag.
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn serve_metrics_http(
    mut stream: TcpStream,
    metrics: &Metrics,
    store: &dyn DocStore,
    cache: Option<&ShardedLru>,
    writer: Option<&dyn WriteStore>,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read the request head, bounded: a scraper's GET fits in one page.
    let mut buf = [0u8; 4096];
    let mut n = 0;
    while n < buf.len() && !buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(r) => n += r,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf[..n]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method == "GET" && (path == "/metrics" || path.starts_with("/metrics?"))
    {
        (
            "200 OK",
            metrics::render_prometheus(metrics, Some(store), cache, writer),
        )
    } else {
        ("404 Not Found", "not found; scrape /metrics\n".to_string())
    };
    let header = format!(
        "HTTP/1.0 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// Per-request execution state shared by a worker's connections: every
/// scratch buffer the batching/dedup machinery needs lives here, so
/// serving a request allocates at most once per high-water mark over the
/// worker's lifetime, not once per frame.
pub struct Responder {
    batch_threads: usize,
    allow_shutdown: bool,
    backend_tag: u8,
    /// Shared hot-document cache (decoded payloads keyed by doc id).
    cache: Option<Arc<ShardedLru>>,
    /// MGET/GET-run request ids, in request order.
    ids: Vec<u32>,
    /// `(id, position)` sort scratch for deduplication.
    order: Vec<(u32, u32)>,
    /// Request position -> index into `uniq`.
    slots: Vec<u32>,
    /// Unique requested ids.
    uniq: Vec<u32>,
    /// Unique ids that missed the cache and need a store fetch.
    fetch: Vec<u32>,
    /// `fetch[i]`'s index into `uniq`/`docs`.
    fetch_slots: Vec<u32>,
    /// Per-unique-id payload (None until fetched; stays None for
    /// out-of-range ids on the per-GET path and for ids whose fetch
    /// failed, whose error lands in `errs`).
    docs: Vec<Option<Arc<Vec<u8>>>>,
    /// Per-unique-id fetch failure (a corrupt block, an I/O error) —
    /// per-entry containment for the batched paths.
    errs: Vec<Option<StoreError>>,
    /// Pipelined GET run buffered during a drain pass.
    run: Vec<u32>,
    /// Write path for PUT/APPEND/DELETE; `None` answers `ERR_READONLY`.
    writer: Option<Arc<dyn WriteStore>>,
    /// Shared metrics registry; `None` disables all instrumentation (a
    /// benchmark ablation) and makes the METRICS opcode answer
    /// `ERR_BAD_OPCODE`.
    metrics: Option<Arc<Metrics>>,
}

/// What the connection should do after a response was appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep serving this connection.
    Continue,
    /// Flush what is queued, then close the connection.
    Close,
    /// Flush, close, and stop the whole server.
    Shutdown,
}

impl Responder {
    /// A responder for the given per-MGET thread count and shutdown policy.
    pub fn new(batch_threads: usize, allow_shutdown: bool) -> Self {
        Responder {
            batch_threads: batch_threads.max(1),
            allow_shutdown,
            backend_tag: BACKEND_PORTABLE,
            cache: None,
            ids: Vec::new(),
            order: Vec::new(),
            slots: Vec::new(),
            uniq: Vec::new(),
            fetch: Vec::new(),
            fetch_slots: Vec::new(),
            docs: Vec::new(),
            errs: Vec::new(),
            run: Vec::new(),
            writer: None,
            metrics: None,
        }
    }

    /// Attaches a shared hot-document cache.
    pub fn with_cache(mut self, cache: Arc<ShardedLru>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the backend tag reported through STAT.
    pub fn with_backend_tag(mut self, tag: u8) -> Self {
        self.backend_tag = tag;
        self
    }

    /// Attaches a write path for the PUT/APPEND/DELETE opcodes.
    pub fn with_writer(mut self, writer: Arc<dyn WriteStore>) -> Self {
        self.writer = Some(writer);
        self
    }

    /// Attaches a shared metrics registry; enables the METRICS opcode and
    /// per-request instrumentation on every path this responder serves.
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Executes one well-formed request against `store`, appending exactly
    /// one response frame to `out`. This is the whole per-request hot path:
    /// for a GET it performs zero heap allocations once buffers are warm
    /// (cache hit or miss-free store decode alike).
    pub fn respond(
        &mut self,
        store: &dyn DocStore,
        req: &Request<'_>,
        out: &mut Vec<u8>,
    ) -> Action {
        // GETs — including direct callers like the tests — go through the
        // buffered-run path so that single and pipelined GETs take the one
        // (identically instrumented) code path.
        if let Request::Get(id) = req {
            self.push_get(*id);
            self.flush_gets(store, out);
            return Action::Continue;
        }
        let op = match req {
            Request::Get(_) => Some(Op::Get),
            Request::MGet(_) => Some(Op::MGet),
            Request::Put(_) => Some(Op::Put),
            Request::Append(..) => Some(Op::Append),
            Request::Delete(_) => Some(Op::Delete),
            Request::Stat => Some(Op::Stat),
            Request::Metrics | Request::Shutdown => None,
        };
        let timer = match (&self.metrics, op) {
            (Some(_), Some(_)) => Some((Instant::now(), out.len())),
            _ => None,
        };
        let action = self.respond_inner(store, req, out);
        if let (Some((t0, start)), Some(op), Some(m)) = (timer, op, &self.metrics) {
            // Every request appends exactly one frame; its status byte sits
            // right after the 4-byte length prefix.
            let status = out.get(start + 4).copied().unwrap_or(STATUS_INTERNAL);
            m.note_response(
                op,
                t0.elapsed().as_nanos() as u64,
                (out.len() - start) as u64,
                status,
            );
        }
        action
    }

    fn respond_inner(
        &mut self,
        store: &dyn DocStore,
        req: &Request<'_>,
        out: &mut Vec<u8>,
    ) -> Action {
        match req {
            Request::Get(id) => {
                self.respond_get(store, *id, out);
                Action::Continue
            }
            Request::MGet(ids) => {
                self.ids.clear();
                self.ids.extend(ids.iter());
                self.respond_mget(store, out);
                Action::Continue
            }
            Request::Stat => {
                let stats = store.stats();
                let start = protocol::begin_response(out);
                out.extend_from_slice(&stats.num_docs.to_le_bytes());
                out.extend_from_slice(&stats.payload_bytes.to_le_bytes());
                out.extend_from_slice(&stats.max_record_len.to_le_bytes());
                let (budget, hits, misses, resident) = match &self.cache {
                    Some(c) => (
                        c.byte_budget() as u64,
                        c.hits(),
                        c.misses(),
                        c.resident_bytes() as u64,
                    ),
                    None => (0, 0, 0, 0),
                };
                out.extend_from_slice(&budget.to_le_bytes());
                out.extend_from_slice(&hits.to_le_bytes());
                out.extend_from_slice(&misses.to_le_bytes());
                out.extend_from_slice(&resident.to_le_bytes());
                out.push(self.backend_tag);
                out.push(stats.integrity.tag());
                protocol::finish_response(out, start, STATUS_OK);
                Action::Continue
            }
            Request::Put(doc) => {
                self.respond_write(out, |w| w.put(doc).map(Some));
                Action::Continue
            }
            Request::Append(id, bytes) => {
                self.respond_write(out, |w| w.append(*id, bytes).map(|()| None));
                Action::Continue
            }
            Request::Delete(id) => {
                self.respond_write(out, |w| w.delete(*id).map(|()| None));
                Action::Continue
            }
            Request::Metrics => {
                match &self.metrics {
                    Some(m) => {
                        let text = metrics::render_prometheus(
                            m,
                            Some(store),
                            self.cache.as_deref(),
                            self.writer.as_deref(),
                        );
                        let start = protocol::begin_response(out);
                        out.extend_from_slice(text.as_bytes());
                        protocol::finish_response(out, start, STATUS_OK);
                    }
                    None => protocol::write_error(
                        out,
                        STATUS_BAD_OPCODE,
                        "metrics are disabled on this server",
                    ),
                }
                Action::Continue
            }
            Request::Shutdown => {
                if self.allow_shutdown {
                    let start = protocol::begin_response(out);
                    protocol::finish_response(out, start, STATUS_OK);
                    Action::Shutdown
                } else {
                    protocol::write_error(
                        out,
                        STATUS_BAD_OPCODE,
                        "SHUTDOWN is disabled on this server",
                    );
                    Action::Continue
                }
            }
        }
    }

    /// Executes one write through the attached write path, appending the
    /// response frame. No writer → `ERR_READONLY`; a WAL backlog past its
    /// soft bound sheds the write with `ERR_BUSY` *before* it touches the
    /// store (reads are never shed by write pressure). An acked write —
    /// the OK frame — is durable per the store's fsync policy.
    fn respond_write(
        &mut self,
        out: &mut Vec<u8>,
        op: impl FnOnce(&dyn WriteStore) -> Result<Option<u32>, StoreError>,
    ) {
        let Some(writer) = &self.writer else {
            protocol::write_error(
                out,
                STATUS_READONLY,
                "server has no write path; store is read-only",
            );
            return;
        };
        if writer.write_pressure() {
            if let Some(m) = &self.metrics {
                m.note_shed_write();
            }
            protocol::write_error(
                out,
                STATUS_BUSY,
                "write backlog past bound; back off and retry",
            );
            return;
        }
        match op(writer.as_ref()) {
            Ok(id) => {
                let start = protocol::begin_response(out);
                if let Some(id) = id {
                    out.extend_from_slice(&id.to_le_bytes());
                }
                protocol::finish_response(out, start, STATUS_OK);
            }
            Err(e) => write_store_error(out, &e),
        }
    }

    /// Buffers a pipelined GET; the caller flushes the run via
    /// [`flush_gets`](Responder::flush_gets) before any other response is
    /// written.
    pub fn push_get(&mut self, id: u32) {
        self.run.push(id);
    }

    /// True when the buffered GET run must be flushed before more frames
    /// are parsed.
    pub fn get_run_full(&self) -> bool {
        self.run.len() >= GET_RUN_MAX
    }

    /// Serves every buffered pipelined GET, in order. A single GET goes
    /// down the zero-allocation direct path; longer runs deduplicate ids
    /// and batch the store fetch through the seek-aware `get_batch` before
    /// writing any response bytes. Out-of-range ids answer individual
    /// error frames (per-GET semantics), exactly as if served one by one.
    pub fn flush_gets(&mut self, store: &dyn DocStore, out: &mut Vec<u8>) {
        if self.run.is_empty() {
            return;
        }
        // One timestamp pair per *run*, not per GET: a batched run's
        // members all record the run's total duration — the latency the
        // last-written response actually experienced.
        let timer = self.metrics.as_ref().map(|_| (Instant::now(), out.len()));
        match self.run.len() {
            0 => {}
            1 => {
                let id = self.run[0];
                self.run.clear();
                self.respond_get(store, id, out);
            }
            _ => {
                let run = std::mem::take(&mut self.run);
                self.ids.clear();
                self.ids.extend_from_slice(&run);
                self.fetch_unique(store, true);
                const MAX_BODY: usize = protocol::MAX_RESPONSE_LEN as usize - 1;
                for pos in 0..self.ids.len() {
                    let slot = self.slots[pos] as usize;
                    match (&self.docs[slot], &self.errs[slot]) {
                        (Some(doc), _) if doc.len() > MAX_BODY => protocol::write_error(
                            out,
                            STATUS_INTERNAL,
                            "document exceeds the response size cap",
                        ),
                        (Some(doc), _) => {
                            let start = protocol::begin_response(out);
                            out.extend_from_slice(doc);
                            protocol::finish_response(out, start, STATUS_OK);
                        }
                        // A per-id store failure (corrupt block, I/O
                        // error) answers its own error frame, exactly as
                        // if the GET had been served alone.
                        (None, Some(e)) => write_store_error(out, e),
                        (None, None) => write_store_error(
                            out,
                            &StoreError::DocOutOfRange(self.ids[pos] as usize),
                        ),
                    }
                }
                // Release the fetched payload Arcs now that the responses
                // are written: scratch *capacity* is worth keeping across
                // requests, decoded *documents* are not — an idle worker
                // must not pin a whole batch of payloads.
                self.docs.clear();
                self.errs.clear();
                self.run = run;
                self.run.clear();
            }
        }
        if let (Some((t0, start)), Some(m)) = (timer, &self.metrics) {
            m.note_get_run(&out[start..], t0.elapsed().as_nanos() as u64);
        }
    }

    /// One GET: cache hit copies straight from the cached payload; a miss
    /// decodes directly into `out` (and populates the cache).
    fn respond_get(&mut self, store: &dyn DocStore, id: u32, out: &mut Vec<u8>) {
        // Largest legal response *body*: the length field counts the status
        // byte plus the body and must stay within the cap the client also
        // enforces.
        const MAX_BODY: usize = protocol::MAX_RESPONSE_LEN as usize - 1;
        if let Some(cache) = &self.cache {
            if let Some(doc) = cache.get(id as usize) {
                if doc.len() > MAX_BODY {
                    protocol::write_error(
                        out,
                        STATUS_INTERNAL,
                        "document exceeds the response size cap",
                    );
                } else {
                    let start = protocol::begin_response(out);
                    out.extend_from_slice(&doc);
                    protocol::finish_response(out, start, STATUS_OK);
                }
                return;
            }
        }
        let start = protocol::begin_response(out);
        match store.get_into(id as usize, out) {
            Ok(()) if out.len() - start - 5 > MAX_BODY => {
                out.truncate(start);
                protocol::write_error(
                    out,
                    STATUS_INTERNAL,
                    "document exceeds the response size cap",
                );
            }
            Ok(()) => {
                protocol::finish_response(out, start, STATUS_OK);
                if let Some(cache) = &self.cache {
                    cache.insert(id as usize, Arc::new(out[start + 5..].to_vec()));
                }
            }
            Err(e) => {
                out.truncate(start);
                write_store_error(out, &e);
            }
        }
    }

    /// One MGET over `self.ids`: repeated ids are deduplicated before the
    /// seek-aware batched fetch, the single decode scattered back to every
    /// request position. Any out-of-range id fails the whole batch (the
    /// request itself is wrong); a document the *store* fails to produce —
    /// a corrupt block, an I/O error — fails only its own entries, encoded
    /// with the [`protocol::MGET_ENTRY_ERR`] length bit, while the rest of
    /// the batch is served normally.
    fn respond_mget(&mut self, store: &dyn DocStore, out: &mut Vec<u8>) {
        const MAX_BODY: usize = protocol::MAX_RESPONSE_LEN as usize - 1;
        if let Some(&bad) = self.ids.iter().find(|&&id| id as usize >= store.num_docs()) {
            write_store_error(out, &StoreError::DocOutOfRange(bad as usize));
            return;
        }
        self.fetch_unique(store, false);
        // Failed entries carry `status + message` payloads; render the
        // messages once per unique failure (the error path may allocate).
        let body: usize = 4 + self
            .slots
            .iter()
            .map(|&s| {
                4 + match (&self.docs[s as usize], &self.errs[s as usize]) {
                    (Some(doc), _) => doc.len(),
                    (None, Some(e)) => 1 + e.to_string().len(),
                    (None, None) => unreachable!("in-range id neither fetched nor failed"),
                }
            })
            .sum::<usize>();
        if body > MAX_BODY {
            protocol::write_error(
                out,
                STATUS_INTERNAL,
                "MGET response exceeds the size cap; split the batch",
            );
            // The payloads were fetched before the cap check; drop them.
            self.docs.clear();
            self.errs.clear();
            return;
        }
        let start = protocol::begin_response(out);
        out.extend_from_slice(&(self.ids.len() as u32).to_le_bytes());
        for &slot in &self.slots {
            match (&self.docs[slot as usize], &self.errs[slot as usize]) {
                (Some(doc), _) => {
                    out.extend_from_slice(&(doc.len() as u32).to_le_bytes());
                    out.extend_from_slice(doc);
                }
                (None, Some(e)) => {
                    let status = store_error_status(e);
                    if status == STATUS_CORRUPT {
                        if let Some(m) = &self.metrics {
                            m.note_corrupt_entry();
                        }
                    }
                    let message = e.to_string();
                    let elen = (1 + message.len()) as u32 | protocol::MGET_ENTRY_ERR;
                    out.extend_from_slice(&elen.to_le_bytes());
                    out.push(status);
                    out.extend_from_slice(message.as_bytes());
                }
                (None, None) => unreachable!("in-range id neither fetched nor failed"),
            }
        }
        protocol::finish_response(out, start, STATUS_OK);
        // Release the payload Arcs: an idle worker must not pin the last
        // batch's decoded documents (they can total far more than the
        // response cap, since the fetch precedes the cap check).
        self.docs.clear();
        self.errs.clear();
    }

    /// Deduplicates `self.ids` into `self.uniq` + `self.slots`, then fills
    /// `self.docs` for every unique id — from the hot cache where
    /// possible, the rest through one seek-aware `get_batch_results` call
    /// with **per-id containment**: an id the store cannot produce (a
    /// corrupt block, an I/O error) records its error in `self.errs`
    /// instead of failing the whole fetch. With `skip_out_of_range`, ids
    /// beyond the store are left as `None` in `self.docs` (per-GET error
    /// semantics).
    fn fetch_unique(&mut self, store: &dyn DocStore, skip_out_of_range: bool) {
        self.order.clear();
        self.order
            .extend(self.ids.iter().enumerate().map(|(p, &id)| (id, p as u32)));
        self.order.sort_unstable();
        self.uniq.clear();
        self.slots.clear();
        self.slots.resize(self.ids.len(), 0);
        for &(id, pos) in &self.order {
            if self.uniq.last() != Some(&id) {
                self.uniq.push(id);
            }
            self.slots[pos as usize] = (self.uniq.len() - 1) as u32;
        }
        self.docs.clear();
        self.docs.resize(self.uniq.len(), None);
        self.errs.clear();
        self.errs.resize_with(self.uniq.len(), || None);
        self.fetch.clear();
        self.fetch_slots.clear();
        let num_docs = store.num_docs();
        for (u, &id) in self.uniq.iter().enumerate() {
            if skip_out_of_range && id as usize >= num_docs {
                continue;
            }
            if let Some(cache) = &self.cache {
                if let Some(doc) = cache.get(id as usize) {
                    self.docs[u] = Some(doc);
                    continue;
                }
            }
            self.fetch.push(id);
            self.fetch_slots.push(u as u32);
        }
        if !self.fetch.is_empty() {
            let got = store.get_batch_results(&self.fetch, self.batch_threads);
            for (result, &u) in got.into_iter().zip(&self.fetch_slots) {
                match result {
                    Ok(doc) => {
                        let doc = Arc::new(doc);
                        if let Some(cache) = &self.cache {
                            cache.insert(self.uniq[u as usize] as usize, Arc::clone(&doc));
                        }
                        self.docs[u as usize] = Some(doc);
                    }
                    Err(e) => self.errs[u as usize] = Some(e),
                }
            }
        }
    }
}

/// The protocol status a store failure maps to: detected corruption gets
/// its own typed status (the document is permanently unreadable until the
/// store is repaired; the server is fine) rather than the generic
/// internal-error bucket.
fn store_error_status(e: &StoreError) -> u8 {
    match e {
        StoreError::DocOutOfRange(_) => STATUS_OUT_OF_RANGE,
        StoreError::Corrupt { .. } => STATUS_CORRUPT,
        StoreError::ReadOnly => STATUS_READONLY,
        StoreError::WalFull => STATUS_WAL_FULL,
        _ => STATUS_INTERNAL,
    }
}

/// Maps a store failure onto a protocol error frame. Only the error path
/// formats (and therefore allocates) a message.
fn write_store_error(out: &mut Vec<u8>, e: &StoreError) {
    protocol::write_error(out, store_error_status(e), &e.to_string());
}

/// One client connection owned by a worker.
struct Conn {
    stream: TcpStream,
    /// Received-but-unparsed bytes; `in_start..` is the live region.
    in_buf: Vec<u8>,
    in_start: usize,
    /// Queued-but-unsent response bytes; `out_start..` is the live region.
    out_buf: Vec<u8>,
    out_start: usize,
    /// No more requests will be processed; close once `out_buf` drains.
    closing: bool,
    /// The peer half-closed its send side (read returned 0).
    peer_eof: bool,
    /// Write interest is currently armed in the epoll set.
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    want_write: bool,
    /// Currently in the epoll worker's ready queue.
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    queued: bool,
    /// Last instant this connection made any progress (bytes either way);
    /// the idle-timeout sweep closes connections stuck past the limit.
    idle_since: Instant,
}

enum TickOutcome {
    /// Made progress (accepted bytes either way).
    Busy,
    /// Nothing to do right now.
    Idle,
    /// Connection finished or failed; drop it.
    Drop,
    /// A SHUTDOWN request was honoured.
    Shutdown,
}

/// Server-side send buffer for accepted connections: large enough that a
/// typical multi-document response hands off to the kernel in one write
/// (fewer write-readiness round trips; see
/// [`event::set_socket_buffers`](crate::event::set_socket_buffers) for the
/// TCP persist-stall rationale).
#[cfg(target_os = "linux")]
const CONN_SNDBUF: usize = 1 << 20;

/// Server-side receive buffer: comfortably holds the largest request
/// frame (a maximal MGET is ~256 KiB).
#[cfg(target_os = "linux")]
const CONN_RCVBUF: usize = 512 << 10;

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        #[cfg(target_os = "linux")]
        crate::event::set_socket_buffers(stream.as_raw_fd(), CONN_SNDBUF, CONN_RCVBUF);
        Ok(Conn {
            stream,
            in_buf: Vec::new(),
            in_start: 0,
            out_buf: Vec::new(),
            out_start: 0,
            closing: false,
            peer_eof: false,
            want_write: false,
            queued: false,
            idle_since: Instant::now(),
        })
    }

    /// True when the connection has made no progress for longer than
    /// `timeout`.
    fn idle_expired(&self, timeout: Duration) -> bool {
        self.idle_since.elapsed() > timeout
    }

    /// Bytes queued but not yet written to the socket.
    fn out_pending(&self) -> bool {
        self.out_start < self.out_buf.len()
    }

    /// Writes queued output until done or the socket refuses more.
    /// Returns false when the connection is dead.
    fn flush(&mut self, busy: &mut bool) -> bool {
        while self.out_start < self.out_buf.len() {
            match self.stream.write(&self.out_buf[self.out_start..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.out_start += n;
                    *busy = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.out_start == self.out_buf.len() {
            self.out_buf.clear();
            self.out_start = 0;
        }
        true
    }

    /// Reads whatever is available, bounded by backpressure limits.
    /// Returns false when the connection is dead.
    fn fill(&mut self, chunk: &mut [u8], busy: &mut bool) -> bool {
        // Bound buffered input: one maximal frame plus one read chunk is
        // enough to make progress; beyond that the client is flooding.
        let in_cap = protocol::MAX_REQUEST_LEN as usize + chunk.len();
        loop {
            if self.out_buf.len() - self.out_start >= OUT_HIGH_WATER
                || self.in_buf.len() - self.in_start >= in_cap
            {
                return true;
            }
            match self.stream.read(chunk) {
                Ok(0) => {
                    self.peer_eof = true;
                    return true;
                }
                Ok(n) => {
                    self.in_buf.extend_from_slice(&chunk[..n]);
                    *busy = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Parses and executes every complete frame currently buffered, in one
    /// pass. Consecutive pipelined GET frames are buffered into a run and
    /// flushed through the batched path before any non-GET response (or
    /// the end of the pass), preserving response order. With `shed`, the
    /// worker is past its queue budget: GET/MGET answer `ERR_BUSY`
    /// without touching the store (the connection stays open), while
    /// STAT and SHUTDOWN still pass.
    fn drain_frames(
        &mut self,
        store: &dyn DocStore,
        responder: &mut Responder,
        shed: bool,
    ) -> Action {
        let mut action = Action::Continue;
        while !self.closing {
            // Backpressure on the output side too: a burst of pipelined
            // requests must not materialize unbounded responses in one
            // turn. Unhandled frames stay buffered and drain after the
            // queued output flushes.
            if self.out_buf.len() - self.out_start >= OUT_HIGH_WATER {
                break;
            }
            match protocol::parse_request(&self.in_buf[self.in_start..]) {
                Parsed::Incomplete => break,
                Parsed::Malformed(msg) => {
                    responder.flush_gets(store, &mut self.out_buf);
                    if let Some(m) = &responder.metrics {
                        m.note_bad_frame();
                    }
                    protocol::write_error(&mut self.out_buf, STATUS_BAD_FRAME, msg);
                    self.closing = true;
                }
                Parsed::Frame { request, consumed } => {
                    match request {
                        Ok(req @ (Request::Get(_) | Request::MGet(_))) if shed => {
                            responder.flush_gets(store, &mut self.out_buf);
                            if let Some(m) = &responder.metrics {
                                m.note_shed_read(if matches!(req, Request::Get(_)) {
                                    Op::Get
                                } else {
                                    Op::MGet
                                });
                            }
                            protocol::write_error(
                                &mut self.out_buf,
                                STATUS_BUSY,
                                "server overloaded; retry with backoff",
                            );
                        }
                        Ok(Request::Get(id)) => {
                            responder.push_get(id);
                            if responder.get_run_full() {
                                responder.flush_gets(store, &mut self.out_buf);
                            }
                        }
                        Ok(req) => {
                            responder.flush_gets(store, &mut self.out_buf);
                            match responder.respond(store, &req, &mut self.out_buf) {
                                Action::Continue => {}
                                done => {
                                    self.closing = true;
                                    action = done;
                                }
                            }
                        }
                        Err((status, msg)) => {
                            responder.flush_gets(store, &mut self.out_buf);
                            if let Some(m) = &responder.metrics {
                                if status == STATUS_BAD_OPCODE {
                                    m.note_bad_opcode();
                                } else {
                                    m.note_bad_frame();
                                }
                            }
                            protocol::write_error(&mut self.out_buf, status, msg);
                            if status == STATUS_BAD_FRAME {
                                // Content desync (e.g. an MGET whose count
                                // lies): the boundary held this time, but
                                // trust is gone.
                                self.closing = true;
                            }
                        }
                    }
                    self.in_start += consumed;
                }
            }
        }
        responder.flush_gets(store, &mut self.out_buf);
        // Compact the receive buffer without reallocating.
        if self.in_start > 0 {
            let len = self.in_buf.len();
            self.in_buf.copy_within(self.in_start..len, 0);
            self.in_buf.truncate(len - self.in_start);
            self.in_start = 0;
        }
        action
    }

    /// One event-loop turn over this connection. The second return value
    /// reports **input progress** (new bytes read or frames consumed) as
    /// opposed to mere write progress: an event-driven caller must re-tick
    /// only on input progress — re-ticking while a large response drains
    /// would pin the worker to this one connection for the client's whole
    /// read (starving every other socket), when arming write interest and
    /// letting the kernel signal writability costs nothing.
    fn tick(
        &mut self,
        store: &dyn DocStore,
        responder: &mut Responder,
        chunk: &mut [u8],
        shed: bool,
    ) -> (TickOutcome, bool) {
        let mut busy = false;
        if !self.flush(&mut busy) {
            return (TickOutcome::Drop, false);
        }
        if self.closing {
            let outcome = if self.out_buf.is_empty() {
                TickOutcome::Drop
            } else if busy {
                TickOutcome::Busy
            } else {
                TickOutcome::Idle
            };
            return (outcome, false);
        }
        let filled_before = self.in_buf.len();
        if !self.fill(chunk, &mut busy) {
            return (TickOutcome::Drop, false);
        }
        let mut input = self.in_buf.len() != filled_before;
        let in_before = self.in_buf.len() - self.in_start;
        let action = self.drain_frames(store, responder, shed);
        input |= self.in_buf.len() - self.in_start != in_before;
        busy |= input;
        // After EOF no further bytes can arrive, so once every complete
        // frame is drained the connection is done — any leftover partial
        // frame can never complete and must not keep the socket alive.
        if self.peer_eof && !self.closing && self.out_buf.len() - self.out_start < OUT_HIGH_WATER {
            self.closing = true;
        }
        // Push out whatever the frames produced before yielding the slot.
        if !self.flush(&mut busy) {
            return (TickOutcome::Drop, false);
        }
        if busy {
            self.idle_since = Instant::now();
        }
        if action == Action::Shutdown {
            return (TickOutcome::Shutdown, input);
        }
        if self.closing && self.out_buf.is_empty() {
            return (TickOutcome::Drop, input);
        }
        let outcome = if busy {
            TickOutcome::Busy
        } else {
            TickOutcome::Idle
        };
        (outcome, input)
    }

    /// Best-effort blocking drain of queued output, used when the server is
    /// stopping so a final response (e.g. the SHUTDOWN ack) reaches the
    /// peer.
    fn final_flush(&mut self) {
        if self.out_start >= self.out_buf.len() {
            return;
        }
        let _ = self.stream.set_nonblocking(false);
        let _ = self
            .stream
            .set_write_timeout(Some(Duration::from_millis(250)));
        let _ = self.stream.write_all(&self.out_buf[self.out_start..]);
        let _ = self.stream.flush();
    }
}

/// The portable fallback: sweep accept + every connection, park briefly
/// when a whole sweep makes no progress. The park interval decays: any
/// progress resets it to `PARK_MIN` (a follow-up request is noticed in
/// microseconds), consecutive idle sweeps double it up to `PARK_MAX`
/// (bounding idle CPU without a fixed first-request latency tax).
fn portable_worker_loop(
    listener: TcpListener,
    store: Arc<dyn DocStore>,
    stop: Arc<AtomicBool>,
    mut responder: Responder,
    ov: Overload,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut park = PARK_MIN;
    // The fallback's queue-depth proxy: how many connections were actively
    // progressing in the previous sweep (the epoll backend reads its ready
    // queue directly).
    let mut busy_prev = 0usize;
    while !stop.load(Ordering::Acquire) {
        let mut busy = false;
        // Accept everything pending; the listener is shared, so whichever
        // worker polls first takes the connection.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if ov.at_capacity() {
                        reject_busy(stream, responder.metrics.as_deref());
                        busy = true;
                        continue;
                    }
                    match Conn::new(stream) {
                        Ok(conn) => {
                            ov.conn_count.fetch_add(1, Ordering::AcqRel);
                            if let Some(m) = &responder.metrics {
                                m.note_conn_opened();
                            }
                            conns.push(conn);
                            busy = true;
                        }
                        Err(_) => continue,
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (EMFILE, aborted handshakes):
                // yield and retry next turn.
                Err(_) => break,
            }
        }
        let mut busy_now = 0usize;
        let mut i = 0;
        while i < conns.len() {
            // Queue-depth proxy: connections progressing in the previous
            // sweep, or already progressed in this one — whichever is
            // larger. The in-sweep count matters for a cold burst: six
            // connections arriving at once must start shedding mid-sweep,
            // not one lagged sweep later when their input is already
            // drained.
            let shed = ov.shed_queue_depth > 0 && busy_prev.max(busy_now) > ov.shed_queue_depth;
            match conns[i]
                .tick(store.as_ref(), &mut responder, &mut chunk, shed)
                .0
            {
                TickOutcome::Busy => {
                    busy = true;
                    busy_now += 1;
                    i += 1;
                }
                TickOutcome::Idle => i += 1,
                TickOutcome::Drop => {
                    ov.conn_count.fetch_sub(1, Ordering::AcqRel);
                    if let Some(m) = &responder.metrics {
                        m.note_conn_closed();
                    }
                    conns.swap_remove(i);
                }
                TickOutcome::Shutdown => {
                    conns[i].final_flush();
                    ov.conn_count.fetch_sub(1, Ordering::AcqRel);
                    if let Some(m) = &responder.metrics {
                        m.note_conn_closed();
                    }
                    conns.swap_remove(i);
                    stop.store(true, Ordering::Release);
                    busy = true;
                }
            }
            if stop.load(Ordering::Acquire) {
                break;
            }
        }
        busy_prev = busy_now;
        if let Some(m) = &responder.metrics {
            m.note_queue_depth(busy_now as u64);
        }
        if let Some(timeout) = ov.idle_timeout {
            conns.retain(|conn| {
                let keep = !conn.idle_expired(timeout);
                if !keep {
                    ov.conn_count.fetch_sub(1, Ordering::AcqRel);
                    if let Some(m) = &responder.metrics {
                        m.note_idle_reaped();
                    }
                }
                keep
            });
        }
        if busy {
            park = PARK_MIN;
        } else {
            std::thread::park_timeout(park);
            park = (park * 2).min(PARK_MAX);
        }
    }
    // Stopping: give every connection one last chance to receive queued
    // responses before the sockets drop.
    for conn in &mut conns {
        conn.final_flush();
    }
}

/// The epoll backend: block in the kernel until a registered fd is ready,
/// then serve exactly the connections with work, round-robin. Connections
/// are edge-triggered (the tick logic drains until `WouldBlock`); write
/// interest is armed only while a connection has queued output the socket
/// refused.
///
/// Fairness is load-bearing, not cosmetic: a connection is served **one
/// tick per turn** through a ready queue, and re-enters at the tail while
/// its input keeps progressing. Driving a connection until it went idle
/// instead would let one closed-loop client capture the worker — each
/// response it receives prompts its next request, which can land before
/// the server's next read probe, extending the "progress" loop
/// indefinitely while every other socket starves (observed as 100 ms+
/// tail stalls before this queue existed).
#[cfg(target_os = "linux")]
fn epoll_worker_loop(
    ep: Epoll,
    listener: TcpListener,
    store: Arc<dyn DocStore>,
    stop: Arc<AtomicBool>,
    mut responder: Responder,
    wake: WakeFd,
    ov: Overload,
) {
    const TOKEN_LISTENER: u64 = u64::MAX;
    const TOKEN_WAKE: u64 = u64::MAX - 1;
    if ep
        .add(listener.as_raw_fd(), interest::LISTENER, TOKEN_LISTENER)
        .is_err()
        || ep.add(wake.fd(), interest::WAKE, TOKEN_WAKE).is_err()
    {
        // Registration failing at startup leaves this worker unable to
        // serve; the remaining workers still own the listener.
        return;
    }
    // Connection slab: token = slot index (always < TOKEN_WAKE).
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events: Vec<crate::event::Event> = Vec::new();
    let mut ready: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    // With an idle timeout, the kernel wait is bounded so the sweep runs
    // even on a silent socket set; without one, park indefinitely.
    let idle_wait: i32 = match ov.idle_timeout {
        Some(t) => (t.as_millis() as i64 / 2).clamp(10, 1000) as i32,
        None => -1,
    };
    let mut last_idle_scan = Instant::now();
    while !stop.load(Ordering::Acquire) {
        // With queued work pending, poll for new events without sleeping;
        // with none, block in the kernel until readiness or the shutdown
        // eventfd — an idle worker costs ~0% CPU and wakes in
        // microseconds.
        let timeout = if ready.is_empty() { idle_wait } else { 0 };
        if ep.wait(&mut events, timeout).is_err() {
            break;
        }
        if let Some(timeout) = ov.idle_timeout {
            // Sweep at most every half-timeout: O(slab) but amortized.
            if last_idle_scan.elapsed() * 2 >= timeout {
                last_idle_scan = Instant::now();
                for (slot, entry) in conns.iter_mut().enumerate() {
                    let expired = entry.as_ref().is_some_and(|c| c.idle_expired(timeout));
                    if expired {
                        let conn = entry.take().expect("checked Some above");
                        ep.delete(conn.stream.as_raw_fd());
                        free.push(slot);
                        ov.conn_count.fetch_sub(1, Ordering::AcqRel);
                        if let Some(m) = &responder.metrics {
                            m.note_idle_reaped();
                        }
                    }
                }
            }
        }
        for ev in events.iter().copied() {
            match ev.token {
                TOKEN_WAKE => {} // stop flag re-checked at the loop top
                TOKEN_LISTENER => loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if ov.at_capacity() {
                                reject_busy(stream, responder.metrics.as_deref());
                                continue;
                            }
                            let Ok(conn) = Conn::new(stream) else {
                                continue;
                            };
                            let slot = free.pop().unwrap_or_else(|| {
                                conns.push(None);
                                conns.len() - 1
                            });
                            if ep
                                .add(conn.stream.as_raw_fd(), interest::CONN_READ, slot as u64)
                                .is_err()
                            {
                                free.push(slot);
                                continue;
                            }
                            conns[slot] = Some(conn);
                            ov.conn_count.fetch_add(1, Ordering::AcqRel);
                            if let Some(m) = &responder.metrics {
                                m.note_conn_opened();
                            }
                            // Data may already be buffered (or the
                            // handshake raced the registration): queue the
                            // connection for a first serve turn.
                            enqueue(&mut ready, &mut conns, slot);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        // Persistent accept failures (EMFILE, aborted
                        // handshakes): the level-triggered listener stays
                        // readable while the connection waits in the
                        // queue, so bail out WITH a short sleep — breaking
                        // alone would turn `epoll_wait` + failing
                        // `accept` into a 100% CPU spin until an fd frees
                        // up.
                        Err(_) => {
                            std::thread::sleep(Duration::from_millis(2));
                            break;
                        }
                    }
                },
                token => enqueue(&mut ready, &mut conns, token as usize),
            }
        }
        // One serve turn per queued connection, round-robin: a connection
        // whose input is still flowing goes back to the tail instead of
        // monopolizing the worker.
        if let Some(m) = &responder.metrics {
            m.note_queue_depth(ready.len() as u64);
        }
        for _ in 0..ready.len() {
            let Some(slot) = ready.pop_front() else { break };
            if let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) {
                conn.queued = false;
            }
            // The shed signal IS the ready-queue depth: with more than
            // the budget still waiting behind this turn, answer BUSY
            // instead of queueing more decode work.
            let shed = ov.shed_queue_depth > 0 && ready.len() > ov.shed_queue_depth;
            match serve_turn(
                &ep,
                &mut conns,
                &mut free,
                slot,
                store.as_ref(),
                &mut responder,
                &mut chunk,
                shed,
                &ov,
            ) {
                Turn::Again => enqueue(&mut ready, &mut conns, slot),
                Turn::Parked => {}
                Turn::Shutdown => {
                    stop.store(true, Ordering::Release);
                    wake.wake();
                }
            }
            if stop.load(Ordering::Acquire) {
                break;
            }
        }
    }
    for conn in conns.iter_mut().flatten() {
        conn.final_flush();
    }
}

/// Queues `slot` for a serve turn unless it is already queued (one queue
/// entry per connection keeps turns fair and the queue bounded).
#[cfg(target_os = "linux")]
fn enqueue(ready: &mut std::collections::VecDeque<usize>, conns: &mut [Option<Conn>], slot: usize) {
    if let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) {
        if !conn.queued {
            conn.queued = true;
            ready.push_back(slot);
        }
    }
}

/// What a serve turn decided about the connection's future.
#[cfg(target_os = "linux")]
enum Turn {
    /// Input is still flowing: give it another turn (at the queue tail).
    Again,
    /// Nothing more to do now; readiness events resume it.
    Parked,
    /// The SHUTDOWN opcode was honoured.
    Shutdown,
}

/// One bounded serve turn: a single tick (flush + read-to-`WouldBlock` +
/// drain every buffered frame + flush), then re-arm write interest to
/// match whether output is backed up. Edge-triggered registration is safe
/// because a turn that still saw input progress is re-queued by the
/// caller until a tick finds nothing new.
#[cfg(target_os = "linux")]
#[allow(clippy::too_many_arguments)]
fn serve_turn(
    ep: &Epoll,
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    slot: usize,
    store: &dyn DocStore,
    responder: &mut Responder,
    chunk: &mut [u8],
    shed: bool,
    ov: &Overload,
) -> Turn {
    let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
        return Turn::Parked; // stale event for an already-dropped connection
    };
    let (outcome, input) = conn.tick(store, responder, chunk, shed);
    match outcome {
        TickOutcome::Busy | TickOutcome::Idle => {
            let want = conn.out_pending();
            if want != conn.want_write {
                let interest = if want {
                    interest::CONN_READ_WRITE
                } else {
                    interest::CONN_READ
                };
                if ep
                    .modify(conn.stream.as_raw_fd(), interest, slot as u64)
                    .is_ok()
                {
                    conn.want_write = want;
                }
            }
            if input {
                Turn::Again
            } else {
                Turn::Parked
            }
        }
        TickOutcome::Drop => {
            let fd = conn.stream.as_raw_fd();
            ep.delete(fd);
            conns[slot] = None;
            free.push(slot);
            ov.conn_count.fetch_sub(1, Ordering::AcqRel);
            if let Some(m) = &responder.metrics {
                m.note_conn_closed();
            }
            Turn::Parked
        }
        TickOutcome::Shutdown => {
            conn.final_flush();
            let fd = conn.stream.as_raw_fd();
            ep.delete(fd);
            conns[slot] = None;
            free.push(slot);
            ov.conn_count.fetch_sub(1, Ordering::AcqRel);
            if let Some(m) = &responder.metrics {
                m.note_conn_closed();
            }
            Turn::Shutdown
        }
    }
}
